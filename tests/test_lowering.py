"""Lowering tests: plan-node -> operator mapping and name resolution."""

import pytest

from repro import Database, OptimizerConfig
from repro.storage.schema import DataType
from repro.errors import PlanError
from repro.executor.lowering import lower
from repro.executor.operators import (
    AggregateOp,
    BlockNLJoinOp,
    DistinctOp,
    FilterJoinOp,
    HashJoinOp,
    IndexNLJoinOp,
    IndexScanOp,
    LimitOp,
    MergeJoinOp,
    NestedIterationOp,
    ProjectOp,
    SeqScanOp,
    ShipOp,
    SortOp,
)
from repro.executor.runtime import RuntimeContext


def ops_in(op):
    """All operators in a lowered tree."""
    out = []
    stack = [op]
    while stack:
        node = stack.pop()
        out.append(node)
        for attr in ("child", "outer", "inner", "template"):
            sub = getattr(node, attr, None)
            if sub is not None:
                stack.append(sub)
    return out


@pytest.fixture()
def db():
    database = Database()
    database.create_table("R", [("a", DataType.INT), ("b", DataType.INT)])
    database.create_table("S", [("a", DataType.INT), ("c", DataType.INT)])
    database.insert("R", [(i % 8, i) for i in range(100)])
    database.insert("S", [(i % 8, i) for i in range(50)])
    database.create_index("S", "a")
    database.analyze()
    return database


def lowered(db, sql, config=None):
    plan, _ = db.plan(sql, config)
    return lower(plan, RuntimeContext())


class TestLoweringShapes:
    def test_scan_project(self, db):
        op = lowered(db, "SELECT a FROM R")
        kinds = {type(o) for o in ops_in(op)}
        assert ProjectOp in kinds and SeqScanOp in kinds

    def test_index_scan(self, db):
        # a table big enough that probing beats a sequential scan
        db.create_table("Big", [("a", DataType.INT),
                                ("b", DataType.INT)])
        db.insert("Big", [(i % 500, i) for i in range(5000)])
        db.create_index("Big", "a")
        db.analyze("Big")
        op = lowered(db, "SELECT b FROM Big WHERE a = 3")
        assert any(isinstance(o, IndexScanOp) for o in ops_in(op))

    def test_hash_join(self, db):
        config = OptimizerConfig(
            enable_merge_join=False, enable_nested_loops=False,
            enable_index_nested_loops=False, enable_filter_join=False,
            enable_bloom_filter=False,
        )
        op = lowered(db, "SELECT R.b FROM R, S WHERE R.a = S.a", config)
        assert any(isinstance(o, HashJoinOp) for o in ops_in(op))

    def test_merge_join_with_sorts(self, db):
        config = OptimizerConfig(
            enable_hash_join=False, enable_nested_loops=False,
            enable_index_nested_loops=False, enable_filter_join=False,
            enable_bloom_filter=False,
        )
        op = lowered(db, "SELECT R.b FROM R, S WHERE R.a = S.a", config)
        kinds = [type(o) for o in ops_in(op)]
        assert MergeJoinOp in kinds

    def test_inl_join(self, db):
        config = OptimizerConfig(forced_stored_join="inl")
        op = lowered(db, "SELECT R.b FROM R, S WHERE R.a = S.a", config)
        assert any(isinstance(o, IndexNLJoinOp) for o in ops_in(op))

    def test_nlj_for_cross_product(self, db):
        op = lowered(db, "SELECT R.b FROM R, S")
        assert any(isinstance(o, BlockNLJoinOp) for o in ops_in(op))

    def test_aggregate_sort_limit_distinct(self, db):
        op = lowered(
            db,
            "SELECT DISTINCT b FROM R ORDER BY b LIMIT 3",
        )
        kinds = {type(o) for o in ops_in(op)}
        assert {DistinctOp, SortOp, LimitOp} <= kinds

    def test_grouped_query(self, db):
        op = lowered(db, "SELECT a, COUNT(*) AS n FROM R GROUP BY a")
        assert any(isinstance(o, AggregateOp) for o in ops_in(op))


class TestLoweringSemantics:
    def test_lowered_tree_executes_same_as_database(self, db):
        sql = "SELECT R.a, S.c FROM R, S WHERE R.a = S.a AND R.b > 50"
        plan, _ = db.plan(sql)
        op = lower(plan, RuntimeContext())
        direct = sorted(op.rows())
        via_db = sorted(db.sql(sql).rows)
        assert direct == via_db

    def test_relowering_same_plan_is_reusable(self, db):
        plan, _ = db.plan("SELECT a FROM R WHERE b < 10")
        first = sorted(lower(plan, RuntimeContext()).rows())
        second = sorted(lower(plan, RuntimeContext()).rows())
        assert first == second

    def test_unknown_node_rejected(self):
        from repro.optimizer.plans import PlanNode
        from repro.storage.schema import Schema

        class WeirdNode(PlanNode):
            pass

        with pytest.raises(PlanError):
            lower(WeirdNode(Schema(())), RuntimeContext())


class TestViewLowering:
    def test_filter_join_tree(self, db):
        db.create_view("SAgg",
                       "SELECT S.a, COUNT(*) AS n FROM S GROUP BY S.a")
        config = OptimizerConfig(forced_view_join="filter_join")
        op = lowered(
            db, "SELECT R.b, V.n FROM R, SAgg V WHERE R.a = V.a",
            config,
        )
        assert any(isinstance(o, FilterJoinOp) for o in ops_in(op))

    def test_nested_iteration_tree(self, db):
        db.create_view("SAgg2",
                       "SELECT S.a, COUNT(*) AS n FROM S GROUP BY S.a")
        config = OptimizerConfig(forced_view_join="nested_iteration")
        op = lowered(
            db, "SELECT R.b, V.n FROM R, SAgg2 V WHERE R.a = V.a",
            config,
        )
        assert any(isinstance(o, NestedIterationOp) for o in ops_in(op))


class TestDistributedLowering:
    def test_ship_op_present(self):
        from repro.distributed import DistributedDatabase
        db = DistributedDatabase()
        db.create_table("T", [("x", DataType.INT)], site="far")
        db.insert("T", [(1,), (2,)])
        db.analyze()
        plan, _ = db.plan("SELECT x FROM T")
        op = lower(plan, RuntimeContext())
        assert any(isinstance(o, ShipOp) for o in ops_in(op))


class TestTracedLowering:
    def test_tracers_count_rows(self, db):
        from repro.executor.lowering import lower_traced

        plan, _ = db.plan("SELECT a FROM R WHERE b < 4")
        ctx = RuntimeContext()
        root, tracers = lower_traced(plan, ctx)
        rows = list(root.rows())
        root_tracer = tracers[id(plan)]
        assert root_tracer.rows_out == len(rows)
        assert root_tracer.executions == 1
        # every executed node in the tree has a tracer
        assert len(tracers) >= 2

    def test_tracing_does_not_change_results(self, db):
        from repro.executor.lowering import lower_traced

        sql = "SELECT R.a, S.c FROM R, S WHERE R.a = S.a"
        plan, _ = db.plan(sql)
        plain = sorted(lower(plan, RuntimeContext()).rows())
        traced_root, _tracers = lower_traced(plan, RuntimeContext())
        assert sorted(traced_root.rows()) == plain

    def test_explain_analyze_shows_actuals(self, db):
        text = db.explain_analyze("SELECT a FROM R WHERE b < 4")
        assert "actual rows=" in text
        assert "est rows=" in text
