"""Error-taxonomy property: only ``ReproError`` subclasses escape the
public API.

A fuzzer throws malformed SQL, bad parameter vectors, and bad API
arguments at every public ``Database`` entry point and asserts that
nothing but a typed :class:`ReproError` (or a plain ``TypeError`` /
``ValueError`` for non-SQL argument-contract violations) ever escapes —
no ``KeyError``, ``AttributeError``, ``IndexError``, or other internal
exceptions leaking implementation details to callers.
"""

import random
import string

import pytest

from repro import Database, DataType, ProtocolError, ReproError
from repro.distributed import DistributedDatabase, FaultPlan

# Internal exception types that must NEVER escape a public entry point.
_LEAKY = (KeyError, AttributeError, IndexError, UnboundLocalError,
          RecursionError, ZeroDivisionError, StopIteration)

# Argument-contract violations (wrong Python types passed to a Python
# API) may surface as TypeError/ValueError — that is normal Python
# behavior, not a leak.
_ACCEPTABLE = (ReproError, TypeError, ValueError)


def make_db():
    db = Database()
    db.create_table("Emp", [("name", DataType.STR),
                            ("dept", DataType.INT),
                            ("sal", DataType.INT)])
    db.create_table("Dept", [("dno", DataType.INT),
                             ("dname", DataType.STR)])
    db.insert("Emp", [("e%d" % i, i % 4, 100 * i) for i in range(40)])
    db.insert("Dept", [(i, "d%d" % i) for i in range(4)])
    db.create_index("Emp", "dept")
    db.analyze()
    return db


def mutate_sql(rng):
    """One malformed-ish SQL string: a valid statement with random
    corruption, or pure garbage."""
    seeds = [
        "SELECT name FROM Emp WHERE dept = 2",
        "SELECT E.name, D.dname FROM Emp E, Dept D WHERE E.dept = D.dno",
        "SELECT dept, COUNT(*) FROM Emp GROUP BY dept",
        "INSERT INTO Emp VALUES ('x', 1, 2)",
        "CREATE TABLE Zed (a INT)",
        "SELECT name FROM Emp ORDER BY sal",
        "SELECT name FROM Emp WHERE sal > ? AND dept = ?",
        "BEGIN",
        "COMMIT",
        "ROLLBACK",
        "SAVEPOINT sp1",
        "ROLLBACK TO SAVEPOINT sp1",
        "RELEASE SAVEPOINT sp1",
    ]
    text = rng.choice(seeds)
    op = rng.randrange(6)
    if op == 0:      # delete a random slice
        i = rng.randrange(len(text))
        text = text[:i] + text[i + rng.randrange(1, 8):]
    elif op == 1:    # insert random junk
        i = rng.randrange(len(text))
        junk = "".join(rng.choice(string.printable)
                       for _ in range(rng.randrange(1, 6)))
        text = text[:i] + junk + text[i:]
    elif op == 2:    # swap two tokens
        words = text.split()
        if len(words) > 2:
            a, b = rng.randrange(len(words)), rng.randrange(len(words))
            words[a], words[b] = words[b], words[a]
        text = " ".join(words)
    elif op == 3:    # truncate
        text = text[:rng.randrange(len(text))]
    elif op == 4:    # pure garbage
        text = "".join(rng.choice(string.printable)
                       for _ in range(rng.randrange(0, 40)))
    # op == 5: leave the statement intact (valid input must not raise
    # anything non-typed either)
    return text


@pytest.mark.parametrize("seed", range(120))
def test_sql_entry_points_raise_only_typed_errors(seed):
    rng = random.Random(seed)
    db = make_db()
    text = mutate_sql(rng)
    entry_points = [
        lambda: db.sql(text),
        lambda: db.sql(text, use_cache=True),
        lambda: db.explain(text),
        lambda: db.explain_analyze(text),
        lambda: db.prepare(text),
        lambda: db.bind(text),
        lambda: db.plan(text),
        lambda: list(db.execute_script(text + ";" + text)),
    ]
    for call in entry_points:
        try:
            call()
        except ReproError:
            pass
        except _LEAKY as exc:  # pragma: no cover - the bug we hunt
            pytest.fail("raw %s leaked for %r: %s"
                        % (type(exc).__name__, text, exc))


@pytest.mark.parametrize("seed", range(40))
def test_prepared_parameter_fuzz(seed):
    rng = random.Random(seed)
    db = make_db()
    stmt = db.prepare("SELECT name FROM Emp WHERE sal > ? AND dept = ?")
    bad_param_vectors = [
        (),                       # too few
        (1,),                     # too few
        (1, 2, 3),                # too many
        ("not-an-int", "nope"),   # wrong types
        (None, None),
        (object(), object()),
        ([1], {2: 3}),
    ]
    params = rng.choice(bad_param_vectors)
    try:
        stmt.execute(params)
    except _ACCEPTABLE:
        pass
    except _LEAKY as exc:
        pytest.fail("raw %s leaked for params %r: %s"
                    % (type(exc).__name__, params, exc))


class TestApiArgumentFuzz:
    """Bad non-SQL arguments to catalog-mutating entry points."""

    def check(self, call):
        try:
            call()
        except _ACCEPTABLE:
            pass
        except _LEAKY as exc:
            pytest.fail("raw %s leaked: %s" % (type(exc).__name__, exc))

    def test_create_table_bad_args(self):
        db = make_db()
        self.check(lambda: db.create_table("Emp", [("a", DataType.INT)]))
        self.check(lambda: db.create_table("", []))
        self.check(lambda: db.create_table("X", [("a", "not-a-type")]))
        self.check(lambda: db.create_table("Y", [("a",)]))

    def test_insert_bad_args(self):
        db = make_db()
        self.check(lambda: db.insert("Missing", [(1,)]))
        self.check(lambda: db.insert("Emp", [(1,)]))          # arity
        self.check(lambda: db.insert("Emp", [("a", "b", "c")]))
        self.check(lambda: db.insert("Emp", "not-rows"))

    def test_create_index_bad_args(self):
        db = make_db()
        self.check(lambda: db.create_index("Missing", "a"))
        self.check(lambda: db.create_index("Emp", "missing_col"))

    def test_analyze_bad_args(self):
        db = make_db()
        self.check(lambda: db.analyze("Missing"))

    def test_sql_bad_run_options(self):
        db = make_db()
        self.check(lambda: db.sql("SELECT name FROM Emp",
                                  timeout="soon"))
        self.check(lambda: db.sql("SELECT name FROM Emp",
                                  memory_budget_bytes="lots"))

    def test_view_bad_args(self):
        db = make_db()
        self.check(lambda: db.create_view("V", "SELECT nope FROM gone"))
        self.check(lambda: db.create_view("Emp", "SELECT name FROM Emp"))


@pytest.mark.parametrize("seed", range(60))
def test_txn_surface_stays_typed(seed):
    """Random interleavings of transaction control and statements —
    including statements fired into an aborted transaction — must only
    ever raise typed errors. ``SimulatedCrash`` is exempt from the
    taxonomy by design (it models process death, not an engine error)
    but this fuzzer never arms a crash injector, so it must not appear
    either."""
    rng = random.Random(seed)
    db = make_db()
    db.configure(durability=rng.choice(["off", "lazy", "commit"]))
    moves = ["BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT s",
             "ROLLBACK TO SAVEPOINT s", "RELEASE SAVEPOINT s",
             "SAVEPOINT t", "RELEASE SAVEPOINT missing"]
    for _ in range(rng.randrange(4, 14)):
        if rng.random() < 0.55:
            text = rng.choice(moves)
        else:
            text = mutate_sql(rng)
        try:
            db.sql(text)
        except ReproError:
            pass
        except _LEAKY as exc:  # pragma: no cover - the bug we hunt
            pytest.fail("raw %s leaked for %r: %s"
                        % (type(exc).__name__, text, exc))
    # non-SQL mutation entry points inside whatever txn state we ended in
    for call in (lambda: db.insert("Emp", [("z", 1, 1)]),
                 lambda: db.analyze("Emp"),
                 lambda: db.checkpoint()):
        try:
            call()
        except _ACCEPTABLE:
            pass
        except _LEAKY as exc:
            pytest.fail("raw %s leaked: %s" % (type(exc).__name__, exc))


@pytest.mark.parametrize("seed", range(40))
def test_recover_on_garbage_raises_only_typed_errors(seed):
    """recover() fed arbitrary bytes — random garbage, bit-flipped real
    logs, truncations — either recovers some prefix or raises a typed
    WalError; internals never leak."""
    from repro import recover, MemoryStorage, WriteAheadLog, Database as DB

    rng = random.Random(seed)
    db = DB()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("R", [("a", DataType.INT)])
    db.insert("R", [(i,) for i in range(8)])
    real = storage.crash()

    mode = seed % 4
    if mode == 0:       # pure garbage
        data = bytes(rng.randrange(256)
                     for _ in range(rng.randrange(0, 200)))
    elif mode == 1:     # real log, one flipped byte
        data = bytearray(real)
        data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
        data = bytes(data)
    elif mode == 2:     # real log, random truncation
        data = real[:rng.randrange(len(real) + 1)]
    else:               # real log + garbage tail
        data = real + bytes(rng.randrange(256)
                            for _ in range(rng.randrange(1, 60)))
    try:
        recovered, report = recover(data)
        recovered.sql("SELECT 1 WHERE 1 = 0")  # must be a usable db
    except ReproError:
        pass
    except _LEAKY as exc:
        pytest.fail("raw %s leaked from recover(): %s"
                    % (type(exc).__name__, exc))


class TestTxnApiArgumentFuzz:
    """Bad arguments and bad states on the transaction surface."""

    def check(self, call):
        try:
            call()
        except _ACCEPTABLE:
            pass
        except _LEAKY as exc:
            pytest.fail("raw %s leaked: %s" % (type(exc).__name__, exc))

    def test_bad_durability_and_wal_args(self):
        db = make_db()
        self.check(lambda: db.configure(durability="paranoid"))
        self.check(lambda: db.attach_wal("not-a-wal"))
        self.check(lambda: db.checkpoint())           # durability off

    def test_txn_misuse(self):
        db = make_db()
        self.check(lambda: db.sql("COMMIT"))          # no txn
        self.check(lambda: db.sql("SAVEPOINT s"))     # no txn
        db.sql("BEGIN")
        self.check(lambda: db.sql("BEGIN"))           # nested
        self.check(lambda: db.checkpoint())           # inside txn
        self.check(lambda: db.sql("ROLLBACK TO SAVEPOINT nope"))
        db.sql("ROLLBACK")

    def test_recover_bad_source_type(self):
        from repro import recover
        self.check(lambda: recover(12345))
        self.check(lambda: recover(["not", "bytes"]))


@pytest.mark.parametrize("seed", range(30))
def test_distributed_fuzz_stays_typed(seed):
    """The distributed façade under faults obeys the same taxonomy."""
    rng = random.Random(seed)
    db = DistributedDatabase()
    db.create_table("R", [("x", DataType.INT)], site="east")
    db.insert("R", [(i,) for i in range(30)])
    db.analyze()
    db.set_fault_plan(FaultPlan(drop_rate=rng.random() * 0.9,
                                latency_rate=rng.random() * 0.5,
                                latency_seconds=rng.random() * 5),
                      seed=seed)
    text = mutate_sql(rng).replace("Emp", "R").replace("Dept", "R")
    try:
        db.sql(text, timeout=rng.choice([None, 0.01, 1.0]))
    except ReproError:
        pass
    except _LEAKY as exc:
        pytest.fail("raw %s leaked for %r: %s"
                    % (type(exc).__name__, text, exc))


# ----------------------------------------------------------- server/session

@pytest.mark.parametrize("seed", range(40))
def test_session_surface_stays_typed(seed):
    """Mutated SQL through an explicit MVCC session: only typed errors,
    and the session remains usable afterwards."""
    rng = random.Random(seed)
    db = make_db()
    with db.new_session("fuzz") as session:
        for _ in range(6):
            text = mutate_sql(rng)
            try:
                session.sql(text)
            except ReproError:
                pass
            except _LEAKY as exc:
                pytest.fail("raw %s leaked from Session.sql(%r): %s"
                            % (type(exc).__name__, text, exc))
        if session.in_transaction:
            session.sql("ROLLBACK")
        assert session.sql("SELECT COUNT(*) AS c FROM Dept").rows \
            == [(4,)]
    assert not db.txn.any_open_txn()


@pytest.fixture(scope="module")
def fuzz_server():
    """One live server shared by the wire-fuzz tests below."""
    from tests.test_server import ServerHarness

    harness = ServerHarness(make_db()).start()
    yield harness
    harness.stop()


@pytest.mark.parametrize("seed", range(40))
def test_server_query_fuzz_stays_typed(fuzz_server, seed):
    """Mutated SQL over the wire re-raises only typed ReproErrors, and
    the connection survives every request-level failure."""
    rng = random.Random(seed)
    with fuzz_server.connect() as client:
        for _ in range(4):
            text = mutate_sql(rng)
            try:
                client.sql(text)
            except ReproError:
                pass
            except _LEAKY as exc:
                pytest.fail("raw %s over the wire for %r: %s"
                            % (type(exc).__name__, text, exc))
        assert client.ping(), "connection died on a query error"


def _junk_frames(rng):
    """Hostile byte streams for the framing layer."""
    import json
    import struct

    kind = rng.randrange(5)
    if kind == 0:    # header promises far more than MAX_FRAME_BYTES
        return struct.pack("<I", rng.randrange(2 ** 25, 2 ** 31))
    if kind == 1:    # valid header, non-JSON body
        junk = bytes(rng.randrange(256)
                     for _ in range(rng.randrange(1, 64)))
        return struct.pack("<I", len(junk)) + junk
    if kind == 2:    # valid JSON, but not an object
        body = json.dumps(rng.choice([[1, 2], "text", 42,
                                      None, True])).encode()
        return struct.pack("<I", len(body)) + body
    if kind == 3:    # truncated frame (header promises more)
        body = b'{"op": "ping"}'
        return struct.pack("<I", len(body) + 10) + body
    # kind == 4: raw garbage, not even a full header sometimes
    return bytes(rng.randrange(256)
                 for _ in range(rng.randrange(0, 16)))


@pytest.mark.parametrize("seed", range(40))
def test_server_survives_wire_garbage(fuzz_server, seed):
    """Arbitrary junk bytes (bad headers, non-JSON bodies, truncated
    frames, mid-query disconnects) never wedge the server: the hostile
    connection is dropped, no transaction leaks open, and the next
    well-behaved client works."""
    import socket as socket_module

    rng = random.Random(seed)
    sock = fuzz_server.raw_socket()
    sock.settimeout(5)
    try:
        sock.sendall(_junk_frames(rng))
        if rng.random() < 0.5:  # sometimes wait for the error answer
            try:
                sock.recv(4096)
            except socket_module.timeout:
                pass
    finally:
        sock.close()
    with fuzz_server.connect() as client:
        assert client.ping()
        # the fuzz sometimes runs *valid* INSERTs, so the count can
        # only have grown from the seed data
        assert client.sql("SELECT COUNT(*) AS c FROM Emp").rows[0][0] \
            >= 40
    assert not fuzz_server.db.txn.any_open_txn()


BAD_SLOWLOG_LIMITS = [0, -1, 1001, "ten", True, False, None, 2.5,
                      [5], {"n": 5}]


@pytest.mark.parametrize("limit", BAD_SLOWLOG_LIMITS,
                         ids=[repr(v) for v in BAD_SLOWLOG_LIMITS])
def test_server_admin_bad_limit_stays_in_band(fuzz_server, limit):
    """A malformed ``slowlog`` limit is a request-level mistake: the
    server answers with a typed ProtocolError in-band and the
    connection keeps working — no disconnect, no leaked raw error."""
    with fuzz_server.connect() as client:
        with pytest.raises(ProtocolError) as excinfo:
            client.request("slowlog", limit=limit)
        assert "limit" in str(excinfo.value)
        assert client.ping(), "connection died on a bad admin request"
        assert client.slowlog(limit=1) == client.slowlog(limit=1)


@pytest.mark.parametrize("op", ["slow_log", "session", "metric",
                               "top", "drfit", "admin"])
def test_server_unknown_admin_ops_stay_typed(fuzz_server, op):
    """Misspelled admin ops get the same in-band ProtocolError as any
    unknown op, and the connection survives."""
    with fuzz_server.connect() as client:
        with pytest.raises(ProtocolError):
            client.request(op)
        assert client.ping()


def test_server_admin_ops_ignore_junk_extra_fields(fuzz_server):
    """Unknown request fields are ignored, as the protocol promises —
    admin requests included."""
    with fuzz_server.connect() as client:
        response = client.request("sessions", junk=1, nested={"a": [2]})
        assert response["ok"]
        assert isinstance(response["sessions"], list)
        report = client.request("drift", limit="ignored")["drift"]
        assert set(report) >= {"empty", "groups", "tables"}
