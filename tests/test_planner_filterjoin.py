"""Filter Join planning tests on the paper's motivating workload."""

import pytest

from repro import Database, DataType, OptimizerConfig
from repro.workloads import (
    MOTIVATING_QUERY,
    EmpDeptConfig,
    fresh_empdept,
)

from tests.conftest import reference_motivating_answer
from tests.test_planner_basic import find_nodes
from repro.optimizer.plans import (
    FilterJoinNode,
    FilterSetScanNode,
    JoinNode,
    NestedIterationNode,
)


class TestMotivatingQuery:
    def test_answer_matches_reference(self, empdept_db):
        result = empdept_db.sql(MOTIVATING_QUERY)
        assert sorted(result.rows) == reference_motivating_answer(empdept_db)

    @pytest.mark.parametrize("kwargs", [
        {},
        {"enable_filter_join": False, "enable_bloom_filter": False},
        {"enable_filter_join": False, "enable_bloom_filter": False,
         "enable_nested_iteration": False},
        {"enable_bloom_filter": False},
        {"enable_parametric": False},
        {"parametric_classes": 2},
        {"parametric_classes": 8},
        {"filter_column_strategy": "all"},
        {"memory_pages": 4},
    ])
    def test_all_configs_same_answer(self, empdept_db, kwargs):
        config = OptimizerConfig(**kwargs)
        result = empdept_db.sql(MOTIVATING_QUERY, config=config)
        assert sorted(result.rows) == reference_motivating_answer(empdept_db)

    def test_filter_join_wins_when_selective(self):
        """Few big departments -> the plan should restrict the view (or
        at least cost no more than the no-magic plan)."""
        db = fresh_empdept(EmpDeptConfig(
            num_departments=400, employees_per_department=40,
            big_fraction=0.02, young_fraction=0.1, seed=3,
        ))
        with_fj = db.sql(MOTIVATING_QUERY)
        without = db.sql(MOTIVATING_QUERY, config=OptimizerConfig(
            enable_filter_join=False, enable_bloom_filter=False,
            enable_nested_iteration=False,
        ))
        assert sorted(with_fj.rows) == sorted(without.rows)
        assert with_fj.ledger.total() <= without.ledger.total() * 1.05

    def test_cost_based_never_much_worse_when_unselective(self):
        """Every department big and young -> magic is pure overhead; the
        cost-based optimizer should stay close to the no-magic plan."""
        db = fresh_empdept(EmpDeptConfig(
            num_departments=100, employees_per_department=30,
            big_fraction=1.0, young_fraction=1.0, seed=5,
        ))
        with_fj = db.sql(MOTIVATING_QUERY)
        without = db.sql(MOTIVATING_QUERY, config=OptimizerConfig(
            enable_filter_join=False, enable_bloom_filter=False,
            enable_nested_iteration=False,
        ))
        assert sorted(with_fj.rows) == sorted(without.rows)
        assert with_fj.ledger.total() <= without.ledger.total() * 1.2


class TestFilterJoinPlanShape:
    def test_forced_filter_join_plan(self, empdept_db):
        """With classic methods disabled, a Filter Join (or nested
        iteration) must carry the view join."""
        config = OptimizerConfig(
            enable_nested_iteration=False, enable_bloom_filter=False,
        )
        plan, planner = empdept_db.plan(MOTIVATING_QUERY, config)
        # The plan may or may not pick the filter join on this data size,
        # but the planner must have costed it.
        assert planner.metrics.filter_joins_considered > 0

    def test_filter_join_component_estimates(self, empdept_db):
        config = OptimizerConfig(enable_bloom_filter=False)
        plan, planner = empdept_db.plan(MOTIVATING_QUERY, config)
        nodes = find_nodes(plan, FilterJoinNode)
        if not nodes:  # force the strategy if the data made it lose
            config = OptimizerConfig(forced_view_join="filter_join")
            plan, planner = empdept_db.plan(MOTIVATING_QUERY, config)
            nodes = find_nodes(plan, FilterJoinNode)
        assert nodes
        parts = nodes[0].component_estimates
        for key in ("JoinCost_P", "ProductionCost_P", "ProjCost_F",
                    "AvailCost_F", "FilterCost_Rk", "AvailCost_Rk'",
                    "FinalJoinCost"):
            assert key in parts

    def test_template_contains_filter_set_scan(self, empdept_db):
        config = OptimizerConfig(forced_view_join="filter_join")
        plan, _ = empdept_db.plan(MOTIVATING_QUERY, config)
        fj = find_nodes(plan, FilterJoinNode)
        assert fj
        assert find_nodes(fj[0].inner_template, FilterSetScanNode)

    def test_forced_filter_join_executes_correctly(self, empdept_db):
        config = OptimizerConfig(forced_view_join="filter_join")
        result = empdept_db.sql(MOTIVATING_QUERY, config=config)
        assert sorted(result.rows) == reference_motivating_answer(empdept_db)

    def test_measured_components_populated(self, empdept_db):
        from repro.executor.lowering import lower
        from repro.executor.runtime import RuntimeContext
        from repro.executor.operators import FilterJoinOp

        config = OptimizerConfig(forced_view_join="filter_join")
        plan, _ = empdept_db.plan(MOTIVATING_QUERY, config)
        ctx = RuntimeContext(memory_pages=config.memory_pages)
        op = lower(plan, ctx)
        list(op.rows())

        def find_op(node):
            if isinstance(node, FilterJoinOp):
                return node
            for attr in ("child", "outer", "inner", "template"):
                sub = getattr(node, attr, None)
                if sub is not None:
                    found = find_op(sub)
                    if found:
                        return found
            return None

        fj_op = find_op(op)
        assert fj_op is not None
        assert "FilterCost_Rk" in fj_op.measured_components
        assert fj_op.measured_components["JoinCost_P"] > 0


class TestNestedIteration:
    def test_forced_nested_iteration_correct(self, empdept_db):
        config = OptimizerConfig(forced_view_join="nested_iteration")
        result = empdept_db.sql(MOTIVATING_QUERY, config=config)
        assert sorted(result.rows) == reference_motivating_answer(empdept_db)

    def test_nested_iteration_plan_node(self, empdept_db):
        config = OptimizerConfig(forced_view_join="nested_iteration")
        plan, _ = empdept_db.plan(MOTIVATING_QUERY, config)
        assert find_nodes(plan, NestedIterationNode)


class TestBloomFilterJoin:
    def test_forced_bloom_correct(self, empdept_db):
        """Bloom (lossy) filter joins must still give exact answers —
        the final join removes false positives."""
        config = OptimizerConfig(forced_view_join="bloom")
        plan, _ = empdept_db.plan(MOTIVATING_QUERY, config)
        result = empdept_db.run_plan(plan)
        assert sorted(result.rows) == reference_motivating_answer(empdept_db)

    def test_tiny_bloom_still_correct(self, empdept_db):
        """A heavily saturated Bloom filter admits many false positives
        but never wrong answers."""
        config = OptimizerConfig(forced_view_join="bloom", bloom_bits=64)
        result = empdept_db.sql(MOTIVATING_QUERY, config=config)
        assert sorted(result.rows) == reference_motivating_answer(empdept_db)


class TestLimitations:
    def test_limitation2_off_considers_prefix_productions(self):
        db = fresh_empdept(EmpDeptConfig(num_departments=30,
                                         employees_per_department=10))
        base = OptimizerConfig()
        relaxed = OptimizerConfig(limitation2_full_outer=False)
        _, p_base = db.plan(MOTIVATING_QUERY, base)
        _, p_relaxed = db.plan(MOTIVATING_QUERY, relaxed)
        assert (p_relaxed.metrics.filter_joins_considered
                >= p_base.metrics.filter_joins_considered)

    def test_limitation2_off_still_correct(self):
        db = fresh_empdept(EmpDeptConfig(num_departments=30,
                                         employees_per_department=10))
        result = db.sql(MOTIVATING_QUERY, config=OptimizerConfig(
            limitation2_full_outer=False,
        ))
        assert sorted(result.rows) == reference_motivating_answer(db)
