"""Shared fixtures for the test suite."""

import pytest

from repro import Database, DataType
from repro.workloads import EmpDeptConfig, fresh_empdept


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/ snapshots from the current planner "
             "instead of asserting against them",
    )


@pytest.fixture(scope="session")
def update_golden(request):
    return request.config.getoption("--update-golden")


SMALL_EMPDEPT = EmpDeptConfig(
    num_departments=40,
    employees_per_department=15,
    big_fraction=0.2,
    young_fraction=0.3,
    seed=11,
)


@pytest.fixture(scope="module")
def empdept_db():
    """A small Emp/Dept database shared within a test module.

    Module-scoped for speed; tests must not mutate the data.
    """
    return fresh_empdept(SMALL_EMPDEPT)


@pytest.fixture()
def tiny_db():
    """A tiny two-table database, rebuilt per test (mutable)."""
    db = Database()
    db.create_table("R", [("a", DataType.INT), ("b", DataType.INT)])
    db.create_table("S", [("a", DataType.INT), ("c", DataType.STR)])
    db.insert("R", [(i, i % 5) for i in range(20)])
    db.insert("S", [(i, "s%d" % i) for i in range(0, 20, 2)])
    db.analyze()
    return db


def reference_motivating_answer(db):
    """Brute-force answer to the Figure-1 query for cross-checking."""
    import collections

    emp = db.catalog.table("Emp").rows
    dept = db.catalog.table("Dept").rows
    sals = collections.defaultdict(list)
    for (_eid, did, sal, _age) in emp:
        sals[did].append(sal)
    avg = {d: sum(v) / len(v) for d, v in sals.items()}
    budget = dict(dept)
    return sorted(
        (did, sal, avg[did])
        for (_eid, did, sal, age) in emp
        if age < 30 and budget[did] > 100_000 and sal > avg[did]
    )
