"""Trace-invariance differential suite.

Tracing must be a pure observer: for any query under any optimizer
config, running with ``trace=True`` must produce byte-identical rows,
a byte-identical measured cost ledger, and the same chosen plan as the
untraced run. On top of that, the span tree's internal accounting must
reconcile with the query's measured ledger:

- the execute phase's inclusive ledger equals ``result.ledger``
  *exactly* (it is recorded as a snapshot delta of the same
  accumulator);
- the per-span self-ledgers — each charge attributed to exactly one
  operator — sum back to the measured ledger (up to float addition
  reordering, tolerance 1e-6).

The random-query generator and configs are shared with the
engine-vs-reference differential suite in :mod:`tests.test_differential`.
"""

import random

import pytest

from repro import DataType, OptimizerConfig
from repro.distributed import DistributedDatabase, distributed_config
from tests.test_differential import CONFIGS, make_random_db, random_query


def assert_trace_invariant(db, query, config):
    """Run traced and untraced; assert observational equivalence and
    span-ledger reconciliation."""
    plain = db.sql(query, config=config)
    traced = db.sql(query, config=config, trace=True)

    assert traced.rows == plain.rows, query
    assert traced.ledger == plain.ledger, (
        "measured ledger differs with tracing on:\n  on:  %s\n  off: %s"
        % (traced.ledger, plain.ledger)
    )
    assert traced.plan.explain() == plain.plan.explain(), query

    assert plain.trace is None
    trace = traced.trace
    assert trace is not None
    # exact + attributed reconciliation (raises on mismatch)
    trace.reconcile(traced.ledger)


@pytest.mark.parametrize("seed", range(10))
def test_random_queries_trace_invariant(seed):
    rng = random.Random(4000 + seed)
    db = make_random_db(rng)
    for _ in range(5):
        query = random_query(rng)
        config = rng.choice(CONFIGS)
        assert_trace_invariant(db, query, config)


def test_trace_invariant_under_every_config():
    rng = random.Random(555)
    db = make_random_db(rng)
    corpus = [
        "SELECT T1.b, T2.d FROM T1, T2 WHERE T1.a = T2.a AND T1.c < 3",
        "SELECT T1.b, T3.e FROM T1, T2, T3 "
        "WHERE T1.a = T2.a AND T2.d = T3.d AND T3.e > 20",
        "SELECT T1.b, V1.n FROM T1, V1 WHERE T1.a = V1.a AND V1.n > 1",
        "SELECT T1.c, AVG(T1.b) AS m FROM T1 GROUP BY T1.c",
        "SELECT DISTINCT T1.a, T1.c FROM T1 WHERE T1.b > 5 ORDER BY a",
    ]
    for config in CONFIGS:
        for query in corpus:
            assert_trace_invariant(db, query, config)


def test_trace_invariant_with_udf():
    from repro import Database

    db = Database()
    db.create_table("Pts", [("pid", DataType.INT), ("x", DataType.INT)])
    db.insert("Pts", [(i, i % 10) for i in range(150)])
    db.analyze()
    db.functions.register_function(
        "square", [("x", DataType.INT)], [("xx", DataType.INT)],
        lambda args: [(args[0] * args[0],)],
        cost_per_invocation=2.0, locality_factor=0.5,
    )
    query = "SELECT P.pid, F.xx FROM Pts P, square F WHERE P.x = F.x"
    for mode in ("repeated", "memo", "filter"):
        config = OptimizerConfig(forced_function_join=mode)
        assert_trace_invariant(db, query, config)


def test_trace_invariant_distributed():
    """Network charges (ships, probe round-trips, Bloom shipments) are
    attributed through the same tee; the invariant holds across
    semi-join/fetch strategies on a two-site database."""
    rng = random.Random(9)
    db = DistributedDatabase(distributed_config(1.0, 0.001))
    db.create_table("Orders", [("oid", DataType.INT),
                               ("cid", DataType.INT),
                               ("total", DataType.INT)])
    db.create_table("Cust", [("cid", DataType.INT),
                             ("name", DataType.STR)], site="siteB")
    db.insert("Orders", [
        (i, rng.randint(1, 200), rng.randint(1, 1000))
        for i in range(1, 1201)
    ])
    db.insert("Cust", [(c, "n%d" % c) for c in range(1, 201)])
    db.analyze()
    queries = [
        "SELECT O.oid, C.name FROM Orders O, Cust C "
        "WHERE O.cid = C.cid AND O.total > 900",
        "SELECT C.name, COUNT(*) AS n FROM Orders O, Cust C "
        "WHERE O.cid = C.cid GROUP BY C.name",
    ]
    for query in queries:
        assert_trace_invariant(db, query, db.config)


def test_span_ledgers_attribute_to_operators():
    """Self-ledgers are genuinely per-operator: a scan span carries page
    reads, and no single span hoards the whole query's charges."""
    rng = random.Random(21)
    db = make_random_db(rng)
    result = db.sql(
        "SELECT T1.b, T2.d FROM T1, T2 WHERE T1.a = T2.a",
        trace=True,
    )
    spans = result.trace.operator_spans()
    scan_spans = [s for s in spans if s.node_type == "SeqScanNode"]
    assert scan_spans, "expected scan spans in the tree"
    assert all(s.self_ledger.page_reads > 0 for s in scan_spans)
    charged = [s for s in spans if s.self_ledger.total() > 0]
    assert len(charged) >= 2, (
        "charges concentrated in %d span(s); attribution is broken"
        % len(charged)
    )


def test_execute_phase_ledger_is_exact():
    """The execute phase's inclusive ledger is the measured ledger,
    field for field, exactly (no tolerance)."""
    rng = random.Random(33)
    db = make_random_db(rng)
    for _ in range(4):
        query = random_query(rng)
        result = db.sql(query, config=rng.choice(CONFIGS), trace=True)
        assert result.trace.total_ledger == result.ledger, query


def test_cached_plan_execution_trace_invariant():
    """The plan-cache path is traced too, and stays invariant."""
    rng = random.Random(68)
    db = make_random_db(rng)
    query = "SELECT T1.b, T2.d FROM T1, T2 WHERE T1.a = T2.a"
    warm = db.sql(query, use_cache=True)
    traced = db.sql(query, use_cache=True, trace=True)
    assert traced.cached_plan
    assert traced.rows == warm.rows
    assert traced.ledger == warm.ledger
    traced.trace.reconcile(traced.ledger)
    assert traced.trace.phases["optimize"].extras["plan_cache"] == "hit"
