"""Three-site distributed queries: placement, correctness, site-aware DP."""

import random

import pytest

from repro import DataType
from repro.distributed import DistributedDatabase, distributed_config


@pytest.fixture()
def db():
    rng = random.Random(41)
    database = DistributedDatabase(distributed_config(2.0, 0.005))
    database.create_table("Local", [("k", DataType.INT),
                                    ("v", DataType.INT)])
    database.create_table("East", [("k", DataType.INT),
                                   ("e", DataType.INT)], site="east")
    database.create_table("West", [("e", DataType.INT),
                                   ("w", DataType.INT)], site="west")
    database.insert("Local", [
        (rng.randint(1, 30), i) for i in range(200)
    ])
    database.insert("East", [
        (k % 60 + 1, k % 15) for k in range(600)
    ])
    database.insert("West", [
        (e % 15, e) for e in range(300)
    ])
    database.create_index("East", "k")
    database.analyze()
    return database


def reference(db):
    local = db.catalog.table("Local").rows
    east = db.catalog.table("East").rows
    west = db.catalog.table("West").rows
    out = []
    for (lk, lv) in local:
        for (ek, ee) in east:
            if lk != ek:
                continue
            for (we, ww) in west:
                if ee == we:
                    out.append((lv, ww))
    return sorted(out)


THREE_SITE_QUERY = ("SELECT L.v, W.w FROM Local L, East E, West W "
                    "WHERE L.k = E.k AND E.e = W.e")


class TestThreeSites:
    def test_sites_registered(self, db):
        assert db.sites == ["east", "west"]

    def test_three_site_join_correct(self, db):
        result = db.sql(THREE_SITE_QUERY)
        assert sorted(result.rows) == reference(db)

    @pytest.mark.parametrize("kwargs", [
        {"enable_filter_join": False, "enable_bloom_filter": False},
        {"forced_stored_join": "filter_join"},
        {"forced_stored_join": "bloom"},
        {"enable_hash_join": False, "enable_merge_join": False},
    ])
    def test_strategies_agree(self, db, kwargs):
        config = distributed_config(2.0, 0.005).replace(**kwargs)
        result = db.sql(THREE_SITE_QUERY, config=config)
        assert sorted(result.rows) == reference(db)

    def test_result_lands_locally(self, db):
        plan, _ = db.plan(THREE_SITE_QUERY)
        assert plan.site is None  # final output at the query site

    def test_network_charged(self, db):
        result = db.sql(THREE_SITE_QUERY)
        assert result.ledger.net_msgs >= 2  # at least two remote legs

    def test_dear_network_reduces_bytes(self, db):
        cheap = db.sql(THREE_SITE_QUERY,
                       config=distributed_config(0.0, 0.00001))
        dear = db.sql(THREE_SITE_QUERY,
                      config=distributed_config(30.0, 0.2))
        assert sorted(cheap.rows) == sorted(dear.rows)
        assert dear.ledger.net_bytes <= cheap.ledger.net_bytes + 1e-9


class TestSiteAwareDP:
    def test_remote_sited_partials_pay_ship_home(self, db):
        """The chosen plan must account for the final shipping cost; a
        plan that 'finishes' remotely cannot beat a local plan by
        ignoring the trip home (regression for the site-aware DP fix)."""
        config = distributed_config(10.0, 0.05)
        plan, _ = db.plan(THREE_SITE_QUERY, config)
        result = db.run_plan(plan, config=config)
        # try all forced single-strategy plans; the cost-based plan must
        # be within noise of the best of them
        best = min(
            db.sql(THREE_SITE_QUERY, config=config.replace(**kw))
            .measured_cost(config.cost_params)
            for kw in ({"forced_stored_join": "hash"},
                       {"forced_stored_join": "filter_join"},
                       {"forced_stored_join": "bloom"})
        )
        assert result.measured_cost(config.cost_params) <= best * 1.2
