"""The adaptive maintenance loop: drift in, re-analyze out.

Mechanics first — the policy's gates (disabled, min_samples, cooldown,
open transaction) each provably block the action — then the feedback
effects (catalog version bump, plan-cache shedding, drift window reset),
and finally the end-to-end narrative: the seeded drift workload's plan
flips to a hash join when the data shifts under stale statistics and
flips *back* to the paper's filter join after the loop re-analyzes,
pinned byte-for-byte in ``tests/golden/adaptive__narrative.txt``.
"""

import pathlib

import pytest

from repro import Database, DataType, Options
from repro.obs.adaptive import AdaptivePolicy
from repro.workloads import run_drift_narrative

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: a policy eager enough for small unit-test tables
EAGER = AdaptivePolicy(qerror_threshold=4.0, min_samples=3,
                       cooldown_queries=0)


def make_stale_db():
    """A table whose statistics say 20 rows while it really holds
    1020 — every traced scan records a ~51x q-error."""
    db = Database()
    db.create_table("T", [("a", DataType.INT), ("b", DataType.INT)])
    db.insert("T", [(i, i % 7) for i in range(20)])
    db.analyze()
    db.insert("T", [(i, i % 7) for i in range(20, 1020)])
    return db


def probe(db, policy=EAGER, n=1, **extra):
    opts = Options(trace=True, adaptive=policy, **extra)
    for _ in range(n):
        db.sql("SELECT a FROM T WHERE b = 3", options=opts)


class TestPolicyValidation:
    def test_threshold_below_one_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(qerror_threshold=0.5)

    def test_min_samples_positive(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(min_samples=0)

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(cooldown_queries=-1)

    def test_coerce_bool_shorthand(self):
        assert AdaptivePolicy.coerce(True).enabled
        assert not AdaptivePolicy.coerce(False).enabled
        policy = AdaptivePolicy(qerror_threshold=2.0)
        assert AdaptivePolicy.coerce(policy) is policy
        with pytest.raises(TypeError):
            AdaptivePolicy.coerce("yes")

    def test_options_coerce_bool_to_policy(self):
        opts = Options(adaptive=True)
        assert isinstance(opts.adaptive, AdaptivePolicy)
        assert opts.adaptive.enabled

    def test_builtin_default_is_off(self):
        assert not Options().resolved().adaptive.enabled


class TestAdaptiveGates:
    def test_disabled_policy_is_inert(self):
        db = make_stale_db()
        version = db.catalog.version
        probe(db, policy=AdaptivePolicy.OFF, n=6)
        assert not db.adaptive.actions
        assert db.catalog.version == version
        metrics = db.metrics()
        assert "adaptive_reanalyze_total" not in metrics
        assert "adaptive_skips_total" not in metrics

    def test_default_options_take_no_action(self):
        db = make_stale_db()
        version = db.catalog.version
        for _ in range(6):
            db.sql("SELECT a FROM T WHERE b = 3",
                   options=Options(trace=True))
        assert not db.adaptive.actions
        assert db.catalog.version == version

    def test_untraced_queries_never_trigger(self):
        db = make_stale_db()
        for _ in range(6):
            db.sql("SELECT a FROM T WHERE b = 3",
                   options=Options(adaptive=EAGER))
        assert not db.adaptive.actions

    def test_min_samples_gate(self):
        db = make_stale_db()
        picky = AdaptivePolicy(qerror_threshold=4.0, min_samples=50,
                               cooldown_queries=0)
        probe(db, policy=picky, n=6)
        assert not db.adaptive.actions

    def test_threshold_gate(self):
        db = make_stale_db()
        lax = AdaptivePolicy(qerror_threshold=1000.0, min_samples=1,
                             cooldown_queries=0)
        probe(db, policy=lax, n=6)
        assert not db.adaptive.actions

    def test_cooldown_suppresses_back_to_back_actions(self):
        db = make_stale_db()
        cool = AdaptivePolicy(qerror_threshold=4.0, min_samples=1,
                              cooldown_queries=3)
        probe(db, policy=cool, n=1)
        assert len(db.adaptive.actions) == 1
        # keep the table stale: the next 3 traced queries sit out the
        # cooldown even though their samples are healthy now
        probe(db, policy=cool, n=3)
        assert len(db.adaptive.actions) == 1
        skips = db.metrics()["adaptive_skips_total"]["by_label"]
        assert skips["cooldown"] == 3.0

    def test_open_transaction_skips(self):
        db = make_stale_db()
        db.sql("BEGIN")
        probe(db, n=4)
        assert not db.adaptive.actions
        skips = db.metrics()["adaptive_skips_total"]["by_label"]
        assert skips["open_txn"] == 4.0
        db.sql("ROLLBACK")
        probe(db, n=1)
        assert len(db.adaptive.actions) == 1


class TestAdaptiveAction:
    def test_action_reanalyzes_and_records(self):
        db = make_stale_db()
        db.event_log.enable()
        version = db.catalog.version
        probe(db, n=3)
        assert len(db.adaptive.actions) == 1
        action = db.adaptive.actions[0]
        assert action.table == "T"
        assert action.before_q > 4.0
        assert action.after_q is not None and action.after_q < 2.0
        assert db.catalog.version > version
        events = db.event_log.events("adaptive_reanalyze")
        assert len(events) == 1
        assert events[0]["table"] == "T"
        assert events[0]["before_q"] > events[0]["after_q"]
        total = db.metrics()["adaptive_reanalyze_total"]
        assert total["by_label"]["T"] == 1.0

    def test_action_drops_stale_drift_samples(self):
        db = make_stale_db()
        probe(db, n=3)
        report = db.drift_report()
        tables = {t.table: t for t in report.tables}
        # the stale-era samples are gone; only post-action samples (if
        # any) remain, and they are healthy
        if "T" in tables:
            assert tables["T"].mean_q_error < 4.0

    def test_action_invalidates_cached_plans(self):
        db = make_stale_db()
        opts = Options(trace=True, adaptive=EAGER, use_cache=True)
        for _ in range(6):
            db.sql("SELECT a FROM T WHERE b = 3", options=opts)
            if db.adaptive.actions:
                break
        assert len(db.adaptive.actions) == 1
        # the plan cached before the action was built against the old
        # catalog version: the next lookup must shed it (an
        # invalidation + miss), and only the re-planned entry may hit
        invalidations_before = db.plan_cache.invalidations
        result = db.sql("SELECT a FROM T WHERE b = 3", options=opts)
        assert not result.cached_plan
        assert db.plan_cache.invalidations == invalidations_before + 1
        again = db.sql("SELECT a FROM T WHERE b = 3", options=opts)
        assert again.cached_plan

    def test_history_and_render(self):
        db = make_stale_db()
        probe(db, n=3)
        history = db.adaptive.history()
        assert [a.table for a in history] == ["T"]
        assert "T" in db.adaptive.render()
        assert "before q" in db.adaptive.render()
        empty = Database()
        assert "no adaptive actions" in empty.adaptive.render()


class TestDriftNarrative:
    def test_narrative_golden(self, update_golden):
        lines, db = run_drift_narrative()
        text = "\n".join(lines) + "\n"
        golden_path = GOLDEN_DIR / "adaptive__narrative.txt"
        if update_golden:
            golden_path.write_text(text)
            return
        assert golden_path.exists(), (
            "missing %s — run with --update-golden" % golden_path)
        assert text == golden_path.read_text(), (
            "the drift narrative changed; if intentional, refresh with "
            "`pytest tests/test_adaptive.py --update-golden`")

    def test_narrative_recovers_and_flips_plans(self):
        lines, db = run_drift_narrative()
        text = "\n".join(lines)
        # the plan must actually change across the narrative: the
        # paper's filter join at baseline, a hash join under the
        # shifted distribution, and the filter join again at the end
        assert "plan: filter_join:" in text
        assert "plan (fresh stats): hash:" in text
        assert lines[-1].startswith("recovered: yes")
        # exactly two adaptive actions, both on Customers
        total = db.metrics()["adaptive_reanalyze_total"]
        assert total["by_label"] == {"Customers": 2.0}
