"""Columnar storage and results-API tests.

Covers the dictionary encoding of string columns (NULL ordering, 3VL
comparisons, DISTINCT/GROUP BY over encoded columns), MVCC
freeze/compaction round-trips that must preserve dictionaries, the
``QueryResult.columns()`` / ``column(name)`` surface, the typed-schema
``SchemaError`` path, engine-name validation in :class:`Options`, and
the deprecation of the legacy row-backed ``Batch`` constructor.
"""

import warnings

import pytest

import repro
from repro import DataType, Options, ReproError, Schema, SchemaError
from repro.errors import CatalogError
from repro.executor import vectorize
from repro.executor.vectorize import Batch
from repro.storage import columnar
from repro.storage.columnar import ColumnVector, StringDictionary

pytestmark = pytest.mark.skipif(not columnar.AVAILABLE,
                                reason="numpy is unavailable")


def _db(**options):
    db = repro.connect(**options)
    db.execute_script("""
        CREATE TABLE people (name TEXT, city TEXT, age INT);
        INSERT INTO people VALUES
            ('ann', 'oslo', 31), ('bob', NULL, 45),
            ('cal', 'lima', NULL), (NULL, 'oslo', 28),
            ('dee', 'lima', 31), ('ann', 'pune', 19);
    """)
    return db


def _both_engines(db, query):
    it = db.sql(query, options=Options(engine="iterator"))
    vec = db.sql(query, options=Options(engine="vector"))
    assert vec.rows == it.rows
    assert vec.ledger.as_dict() == it.ledger.as_dict()
    return vec


# --------------------------------------------- dictionary-encoded strings


class TestDictionaryColumns:
    def test_encode_round_trip_with_nulls(self):
        values = ["b", None, "a", "b", None, "c"]
        vec = ColumnVector.from_values(DataType.STR, values)
        assert isinstance(vec, ColumnVector)
        assert vec.dictionary is not None
        assert vec.tolist() == values
        # codes are first-appearance stable
        assert vec.dictionary.entries == ["b", "a", "c"]

    def test_sorted_entries_cache(self):
        dictionary = StringDictionary()
        for entry in ("pear", "apple", "fig"):
            dictionary.encode(entry)
        assert dictionary.sorted_entries() == ["apple", "fig", "pear"]
        assert dictionary.lookup("fig") == 2
        assert dictionary.lookup("kiwi") == -1

    def test_null_ordering(self):
        # NULLs sort first under the engine's total order, identically
        # on the encoded vector path and the iterator oracle
        db = _db()
        result = _both_engines(
            db, "SELECT name, city FROM people ORDER BY city, name")
        assert result.rows[0][1] is None

    def test_three_valued_comparisons(self):
        db = _db()
        eq = _both_engines(
            db, "SELECT name FROM people WHERE city = 'lima'")
        assert sorted(row[0] for row in eq.rows) == ["cal", "dee"]
        ne = _both_engines(
            db, "SELECT name FROM people WHERE city <> 'oslo'")
        # NULL city is UNKNOWN, never emitted — not even by <>
        assert sorted(row[0] for row in ne.rows) == ["ann", "cal", "dee"]
        lt = _both_engines(
            db, "SELECT name FROM people WHERE city < 'oslo'")
        assert sorted(row[0] for row in lt.rows) == ["cal", "dee"]

    def test_distinct_over_encoded_column(self):
        db = _db()
        result = _both_engines(db, "SELECT DISTINCT city FROM people")
        assert sorted(row[0] for row in result.rows
                      if row[0] is not None) == ["lima", "oslo", "pune"]
        assert any(row[0] is None for row in result.rows)

    def test_group_by_encoded_column(self):
        db = _db()
        result = _both_engines(
            db, "SELECT city, COUNT(*), MIN(name), MAX(age) FROM people"
                " GROUP BY city")
        by_city = {row[0]: row[1:] for row in result.rows}
        assert by_city["oslo"] == (2, "ann", 31)
        assert by_city["lima"] == (2, "cal", 31)
        assert by_city[None] == (1, "bob", 45)


# ------------------------------------------------- MVCC and compaction


class TestMvccCompaction:
    def test_freeze_extends_dictionary_in_place(self):
        db = _db()
        table = db.catalog.table("people")
        store = table.columnar_view()
        assert store is not None and store.num_rows == 6
        city = store.columns[1]
        assert isinstance(city, ColumnVector)
        dictionary = city.dictionary
        db.insert("people", [("eve", "oslo", 52), ("fay", "kiev", 40)])
        store2 = table.columnar_view()
        assert store2.num_rows == 8
        # compaction folded the delta tail while *reusing* the
        # dictionary object, so existing codes stayed stable
        assert store2.columns[1].dictionary is dictionary
        assert dictionary.entries[:3] == ["oslo", "lima", "pune"]
        assert store2.columns[1].tolist()[-2:] == ["oslo", "kiev"]

    def test_uncommitted_writes_disable_columnar_view(self):
        db = _db()
        table = db.catalog.table("people")
        assert table.columnar_view() is not None
        session = db.new_session()
        session.sql("BEGIN")
        session.sql("INSERT INTO people VALUES ('gus', 'oslo', 61)")
        assert table.columnar_view() is None  # unfrozen writer
        session.sql("COMMIT")
        session.close()
        store = table.columnar_view()
        assert store is not None
        assert store.num_rows == len(table.rows) == 7

    def test_vacuum_rebuilds_columnar_base(self):
        db = _db()
        table = db.catalog.table("people")
        before = table.columnar_view()
        assert before is not None
        db.delete("people", "city = 'lima'")
        db.vacuum()
        store = table.columnar_view()
        assert store is not None
        assert store.num_rows == len(table.rows) == 4
        decoded = [columnar.materialize(col) for col in store.columns]
        assert list(zip(*decoded)) == table.rows

    def test_round_trip_matches_engines_after_churn(self):
        db = _db()
        db.delete("people", "name = 'bob'")
        db.insert("people", [("hal", "lima", 77)])
        db.vacuum()
        _both_engines(
            db, "SELECT city, COUNT(*) FROM people GROUP BY city")


# ------------------------------------------------ columnar results API


class TestColumnarResults:
    def test_columns_is_names_and_callable(self):
        db = _db(engine="vector")
        result = db.sql("SELECT name, age FROM people")
        assert list(result.columns) == ["name", "age"]
        view = result.columns()
        assert set(view) == {"name", "age"}
        assert view["age"].dtype == columnar.np.int64

    def test_column_zero_copy_after_vector_run(self):
        db = _db(engine="vector")
        result = db.sql("SELECT age FROM people WHERE age >= 28")
        assert result.column_data is not None
        vec = result.column_data[0]
        assert isinstance(vec, ColumnVector)
        values, nulls = result.column("age")
        assert values is vec.values  # zero-copy
        assert values.tolist() == [row[0] for row in result.rows]
        assert not nulls.any()

    def test_column_null_mask_and_string_decode(self):
        db = _db(engine="vector")
        result = db.sql("SELECT city, age FROM people")
        city, city_nulls = result.column("city")
        assert city.tolist() == [row[0] for row in result.rows]
        assert city_nulls.tolist() == [
            row[0] is None for row in result.rows]
        _age, age_nulls = result.column("age")
        assert age_nulls.sum() == 1

    def test_column_from_iterator_rows(self):
        db = _db(engine="iterator")
        result = db.sql("SELECT age FROM people")
        assert result.column_data is None
        values, nulls = result.column("age")
        assert len(values) == len(result.rows)
        assert nulls.tolist() == [row[0] is None for row in result.rows]

    def test_unknown_column_raises(self):
        db = _db()
        result = db.sql("SELECT age FROM people")
        with pytest.raises(ReproError):
            result.column("salary")


# -------------------------------------------------- typed schema errors


class TestTypedSchema:
    def test_schema_kwarg(self):
        db = repro.connect()
        db.create_table("t", schema=Schema.of(("x", DataType.INT)))
        assert db.catalog.table("t").schema.names() == ["x"]

    def test_both_or_neither_rejected(self):
        db = repro.connect()
        with pytest.raises(TypeError):
            db.create_table("t")
        with pytest.raises(TypeError):
            db.create_table("t", [("x", DataType.INT)],
                            schema=Schema.of(("x", DataType.INT)))

    def test_inferred_backfill(self):
        db = repro.connect()
        db.create_table("legacy", ["a", "b", "c"],
                        rows=[(1, "x", None), (2, None, 1.5),
                              (None, "y", 2)])
        schema = db.catalog.table("legacy").schema
        assert [col.dtype for col in schema] == [
            DataType.INT, DataType.STR, DataType.FLOAT]
        # the INT sample in the FLOAT column was widened on insert
        assert db.sql("SELECT c FROM legacy").rows[2] == (2.0,)

    def test_untyped_names_require_rows(self):
        db = repro.connect()
        with pytest.raises(SchemaError):
            db.create_table("legacy", ["a", "b"])

    def test_inference_rejects_mixed_columns(self):
        with pytest.raises(SchemaError):
            Schema.inferred(["a"], [(1,), ("x",)])
        with pytest.raises(SchemaError):
            Schema.inferred(["a"], [(object(),)])
        # all-NULL defaults to STR; bools are not ints
        schema = Schema.inferred(["a", "b"], [(None, True)])
        assert [col.dtype for col in schema] == [
            DataType.STR, DataType.BOOL]

    def test_violating_insert_raises_schema_error(self):
        db = _db()
        with pytest.raises(SchemaError) as excinfo:
            db.insert("people", [("ann", "oslo", "old")])
        assert excinfo.value.column == "age"
        assert excinfo.value.dtype == "int"
        with pytest.raises(SchemaError):
            db.sql("INSERT INTO people VALUES ('b', 'c', 'nan')")

    def test_schema_error_is_catalog_error(self):
        assert issubclass(SchemaError, CatalogError)
        assert "SchemaError" in repro.__all__


# ----------------------------------------- Options engine validation


class TestEngineValidation:
    def test_rejects_unknown_engine_at_construction(self):
        with pytest.raises(ValueError) as excinfo:
            Options(engine="columnar")
        message = str(excinfo.value)
        assert "iterator" in message and "vector" in message

    def test_configure_rejects_unknown_engine(self):
        db = repro.connect()
        with pytest.raises(ValueError):
            db.configure(engine="gpu")

    def test_valid_engines_accepted(self):
        for engine in ("iterator", "vector"):
            assert Options(engine=engine).engine == engine


# ------------------------------------------- legacy Batch constructor


class TestBatchDeprecation:
    def test_rows_kwarg_warns_once_per_call_site(self):
        saved = set(vectorize._warned_batch_sites)
        vectorize._warned_batch_sites.clear()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                for _ in range(3):
                    batch = Batch(rows=[(1, "x")])  # same call site
            assert batch.n == 1 and batch.width == 2
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1
            assert "Batch.from_rows" in str(deprecations[0].message)
        finally:
            vectorize._warned_batch_sites.clear()
            vectorize._warned_batch_sites.update(saved)

    def test_from_rows_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            batch = Batch.from_rows([(1,), (2,)], 1)
        assert batch.rows() == [(1,), (2,)]

    def test_vector_engine_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            db = _db(engine="vector")
            db.sql("SELECT city, COUNT(*) FROM people GROUP BY city")
