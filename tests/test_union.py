"""Tests for UNION / UNION ALL."""

import pytest

from repro import Database, DataType
from repro.errors import BindError


@pytest.fixture()
def db():
    database = Database()
    database.execute_script("""
        CREATE TABLE A (x INT, y INT);
        CREATE TABLE B (x INT, y INT);
        CREATE TABLE S (name VARCHAR(10));
        INSERT INTO A VALUES (1, 10), (2, 20), (3, 30);
        INSERT INTO B VALUES (2, 20), (4, 40);
        INSERT INTO S VALUES ('a'), ('b');
    """)
    database.analyze()
    return database


class TestUnionSemantics:
    def test_union_all_keeps_duplicates(self, db):
        result = db.sql("SELECT x FROM A UNION ALL SELECT x FROM B")
        assert sorted(result.rows) == [(1,), (2,), (2,), (3,), (4,)]

    def test_union_deduplicates(self, db):
        result = db.sql("SELECT x FROM A UNION SELECT x FROM B")
        assert sorted(result.rows) == [(1,), (2,), (3,), (4,)]

    def test_left_associative_mixed_chain(self, db):
        # (A UNION-ALL B) UNION A: the final plain UNION dedups all
        result = db.sql(
            "SELECT x FROM A UNION ALL SELECT x FROM B "
            "UNION SELECT x FROM A"
        )
        assert sorted(result.rows) == [(1,), (2,), (3,), (4,)]

    def test_trailing_order_by_applies_to_union(self, db):
        result = db.sql(
            "SELECT x FROM A UNION ALL SELECT x FROM B ORDER BY x DESC"
        )
        assert [r[0] for r in result.rows] == [4, 3, 2, 2, 1]

    def test_trailing_limit(self, db):
        result = db.sql(
            "SELECT x FROM A UNION ALL SELECT x FROM B "
            "ORDER BY x LIMIT 3"
        )
        assert result.rows == [(1,), (2,), (2,)]

    def test_branches_with_own_predicates(self, db):
        result = db.sql(
            "SELECT x FROM A WHERE y > 15 UNION SELECT x FROM B "
            "WHERE y < 30"
        )
        assert sorted(result.rows) == [(2,), (3,)]

    def test_union_with_aggregates(self, db):
        result = db.sql(
            "SELECT COUNT(*) AS n FROM A UNION ALL "
            "SELECT COUNT(*) AS n FROM B"
        )
        assert sorted(result.rows) == [(2,), (3,)]

    def test_union_over_views(self, db):
        db.create_view("BigA", "SELECT x FROM A WHERE y >= 20")
        result = db.sql(
            "SELECT x FROM BigA UNION SELECT x FROM B"
        )
        assert sorted(result.rows) == [(2,), (3,), (4,)]


class TestUnionTyping:
    def test_int_float_promote(self, db):
        db.sql("CREATE TABLE F (x FLOAT)")
        db.sql("INSERT INTO F VALUES (1.5)")
        block = db.bind("SELECT x FROM A UNION SELECT x FROM F")
        from repro.storage.schema import DataType as DT
        assert block.output_schema().column("x").dtype == DT.FLOAT

    def test_incompatible_types_rejected(self, db):
        with pytest.raises(BindError):
            db.sql("SELECT x FROM A UNION SELECT name FROM S")

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(BindError):
            db.sql("SELECT x, y FROM A UNION SELECT x FROM B")

    def test_output_names_from_first_branch(self, db):
        result = db.sql(
            "SELECT x AS left_name FROM A UNION ALL SELECT x FROM B"
        )
        assert result.columns == ["left_name"]


class TestUnionPlanning:
    def test_explain_shows_union(self, db):
        text = db.explain("SELECT x FROM A UNION SELECT x FROM B")
        assert "Union" in text

    def test_union_all_label(self, db):
        text = db.explain("SELECT x FROM A UNION ALL SELECT x FROM B")
        assert "UnionAll" in text

    def test_estimates_populated(self, db):
        plan, _ = db.plan("SELECT x FROM A UNION ALL SELECT x FROM B")
        assert plan.est_rows == pytest.approx(5, abs=1)
        assert plan.est_cost > 0

    def test_display_sql_roundtrips(self, db):
        union = db.bind("SELECT x FROM A UNION SELECT x FROM B")
        text = union.display_sql()
        assert "UNION" in text
        again = db.sql(text)
        assert sorted(again.rows) == [(1,), (2,), (3,), (4,)]


class TestUnionViews:
    def test_view_defined_by_union(self, db):
        db.create_view("U", "SELECT x FROM A UNION SELECT x FROM B")
        result = db.sql("SELECT U.x FROM U ORDER BY x")
        assert result.rows == [(1,), (2,), (3,), (4,)]

    def test_join_with_union_view(self, db):
        db.create_view("U2", "SELECT x FROM A UNION SELECT x FROM B")
        result = db.sql(
            "SELECT A.y FROM A, U2 WHERE A.x = U2.x AND A.y > 15"
        )
        assert sorted(result.rows) == [(20,), (30,)]

    def test_union_view_never_filter_joined(self, db):
        from repro import OptimizerConfig
        from repro.optimizer.plans import FilterJoinNode
        from tests.test_planner_basic import find_nodes

        db.create_view("U3", "SELECT x FROM A UNION SELECT x FROM B")
        plan, _ = db.plan("SELECT A.y FROM A, U3 WHERE A.x = U3.x")
        assert not any(
            node.inner_template is not None
            for node in find_nodes(plan, FilterJoinNode)
            if "U3" in str(node.bind_pairs)
        )

    def test_union_view_via_script(self, db):
        db.execute_script(
            "CREATE VIEW U4 AS SELECT x FROM A UNION ALL "
            "SELECT x FROM B;"
        )
        assert len(db.sql("SELECT U4.x FROM U4")) == 5
