"""Tests for derived-statistics propagation (optimizer.properties)."""

import pytest

from repro import Database, DataType
from repro.optimizer.properties import StatsEstimator
from repro.expr.nodes import ColumnRef, Comparison, Literal


@pytest.fixture()
def db():
    database = Database()
    database.create_table("R", [("a", DataType.INT), ("b", DataType.INT)])
    database.create_table("S", [("a", DataType.INT), ("c", DataType.INT)])
    database.insert("R", [(i % 20, i) for i in range(1000)])
    database.insert("S", [(i % 20, i % 5) for i in range(100)])
    database.analyze()
    return database


@pytest.fixture()
def estimator(db):
    return StatsEstimator(db.catalog)


class TestRelationProps:
    def test_stored_props(self, db, estimator):
        block = db.bind("SELECT R.a FROM R")
        props = estimator.relation_props(block.relations[0])
        assert props.rows == 1000
        assert props.column("R.a").distinct == pytest.approx(20)
        assert props.column("R.b").distinct == pytest.approx(1000)

    def test_view_props(self, db, estimator):
        db.create_view("V", "SELECT R.a, COUNT(*) AS n FROM R GROUP BY R.a")
        block = db.bind("SELECT V.a FROM V")
        props = estimator.relation_props(block.relations[0])
        assert props.rows == pytest.approx(20, rel=0.2)


class TestSelectivity:
    def test_equality_via_frequency(self, db, estimator):
        block = db.bind("SELECT R.a FROM R")
        props = estimator.relation_props(block.relations[0])
        pred = Comparison("=", ColumnRef("R.a"), Literal(3))
        assert estimator.selectivity(pred, props) == pytest.approx(
            0.05, abs=0.01
        )

    def test_range_via_histogram(self, db, estimator):
        block = db.bind("SELECT R.b FROM R")
        props = estimator.relation_props(block.relations[0])
        pred = Comparison("<", ColumnRef("R.b"), Literal(500))
        assert estimator.selectivity(pred, props) == pytest.approx(
            0.5, abs=0.05
        )

    def test_col_col_join_selectivity(self, db, estimator):
        block = db.bind("SELECT R.a FROM R, S WHERE R.a = S.a")
        props = estimator.join_all_props(block)
        # 1000 * 100 / 20 = 5000
        assert props.rows == pytest.approx(5000, rel=0.05)

    def test_and_multiplies(self, db, estimator):
        block = db.bind("SELECT R.a FROM R")
        props = estimator.relation_props(block.relations[0])
        single = estimator.selectivity(
            Comparison("<", ColumnRef("R.b"), Literal(500)), props
        )
        from repro.expr.nodes import BooleanExpr
        double = estimator.selectivity(
            BooleanExpr("AND", [
                Comparison("<", ColumnRef("R.b"), Literal(500)),
                Comparison("=", ColumnRef("R.a"), Literal(1)),
            ]), props,
        )
        assert double < single

    def test_or_bounded(self, db, estimator):
        from repro.expr.nodes import BooleanExpr
        block = db.bind("SELECT R.a FROM R")
        props = estimator.relation_props(block.relations[0])
        sel = estimator.selectivity(
            BooleanExpr("OR", [
                Comparison("<", ColumnRef("R.b"), Literal(900)),
                Comparison("=", ColumnRef("R.a"), Literal(1)),
            ]), props,
        )
        assert 0.0 <= sel <= 1.0

    def test_not_complements(self, db, estimator):
        from repro.expr.nodes import BooleanExpr
        block = db.bind("SELECT R.a FROM R")
        props = estimator.relation_props(block.relations[0])
        pred = Comparison("<", ColumnRef("R.b"), Literal(300))
        s = estimator.selectivity(pred, props)
        ns = estimator.selectivity(BooleanExpr("NOT", [pred]), props)
        assert s + ns == pytest.approx(1.0, abs=0.02)


class TestGroupedProps:
    def test_groups_bounded_by_distinct(self, db, estimator):
        block = db.bind("SELECT a, COUNT(*) AS n FROM R GROUP BY a")
        joined = estimator.join_all_props(block)
        grouped = estimator.grouped_props(block, joined)
        assert grouped.rows == pytest.approx(20, rel=0.05)

    def test_block_output_props_with_having(self, db, estimator):
        block = db.bind(
            "SELECT a, COUNT(*) AS n FROM R GROUP BY a HAVING COUNT(*) > 10"
        )
        props = estimator.block_output_props(block)
        assert props.rows <= 20

    def test_distinct_caps_rows(self, db, estimator):
        block = db.bind("SELECT DISTINCT a FROM R")
        props = estimator.block_output_props(block)
        assert props.rows == pytest.approx(20, rel=0.1)

    def test_limit_caps_rows(self, db, estimator):
        block = db.bind("SELECT b FROM R LIMIT 5")
        props = estimator.block_output_props(block)
        assert props.rows == 5


class TestFilterSetDistinct:
    def test_single_column(self, db, estimator):
        block = db.bind("SELECT R.a FROM R WHERE R.b < 100")
        props = estimator.join_all_props(block)
        distinct = estimator.filter_set_distinct(props, ["R.a"])
        assert 1 <= distinct <= 20.001

    def test_multi_column_product_capped(self, db, estimator):
        block = db.bind("SELECT R.a FROM R")
        props = estimator.join_all_props(block)
        distinct = estimator.filter_set_distinct(props, ["R.a", "R.b"])
        assert distinct <= props.rows
