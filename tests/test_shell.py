"""Tests for the interactive SQL shell."""

import io

import pytest

from repro import Database, DataType
from repro.shell import Shell, format_result


def run_shell(script: str, db=None) -> str:
    out = io.StringIO()
    shell = Shell(db=db, out=out)
    shell.run(io.StringIO(script))
    return out.getvalue()


SETUP = """
CREATE TABLE T (a INT, b INT);
INSERT INTO T VALUES (1, 10), (2, 20), (3, 30);
"""


class TestShellStatements:
    def test_ddl_and_select(self):
        output = run_shell(SETUP + "SELECT a FROM T WHERE b > 15;\n")
        assert "OK (create table)" in output
        assert "INSERT: 3 row(s)" in output
        assert "(2 rows" in output

    def test_multiline_statement(self):
        output = run_shell(
            SETUP + "SELECT a\nFROM T\nWHERE b = 10;\n"
        )
        assert "(1 row," in output

    def test_error_reported_not_raised(self):
        output = run_shell("SELECT nope FROM missing;\n")
        assert "error:" in output

    def test_union_in_shell(self):
        output = run_shell(
            SETUP + "SELECT a FROM T UNION ALL SELECT a FROM T;\n"
        )
        assert "(6 rows" in output


class TestMetaCommands:
    def test_list_relations(self):
        output = run_shell(SETUP + "\\d\n")
        assert "T" in output and "table" in output

    def test_describe_table(self):
        output = run_shell(SETUP + "\\d T\n")
        assert "column" in output and "int" in output

    def test_describe_missing(self):
        output = run_shell("\\d Nope\n")
        assert "no relation" in output

    def test_explain(self):
        output = run_shell(SETUP + "\\e SELECT a FROM T\n")
        assert "SeqScan" in output

    def test_explain_analyze(self):
        output = run_shell(SETUP + "\\ea SELECT a FROM T\n")
        assert "measured cost" in output

    def test_set_boolean(self):
        db = Database()
        run_shell("\\set enable_filter_join off\n", db=db)
        assert db.config.enable_filter_join is False

    def test_set_integer(self):
        db = Database()
        run_shell("\\set memory_pages 64\n", db=db)
        assert db.config.memory_pages == 64

    def test_set_invalid_value_rejected(self):
        db = Database()
        output = run_shell("\\set parametric_classes 1\n", db=db)
        assert "rejected" in output
        assert db.config.parametric_classes != 1

    def test_set_unknown_key(self):
        output = run_shell("\\set no_such_key on\n")
        assert "unknown config key" in output

    def test_quit_stops_processing(self):
        output = run_shell("\\q\nSELECT 1;\n")
        assert "error" not in output

    def test_unknown_meta(self):
        output = run_shell("\\frobnicate\n")
        assert "unknown command" in output

    def test_cache_stats(self):
        output = run_shell(
            SETUP
            + "SELECT a FROM T;\nSELECT a FROM T;\n\\cache\n"
        )
        assert "hits" in output and "misses" in output
        # the repeated statement hit the cache
        assert "hits             1" in output

    def test_cache_clear_and_resize(self):
        output = run_shell("\\cache size 4\n\\cache clear\n\\cache\n")
        assert "plan cache capacity = 4" in output
        assert "plan cache cleared" in output
        assert "hits             0" in output

    def test_cache_bad_size_rejected(self):
        output = run_shell("\\cache size lots\n")
        assert "rejected" in output


class TestFormatResult:
    def test_truncates_long_results(self):
        db = Database()
        db.sql("CREATE TABLE Big (x INT)")
        db.insert("Big", [(i,) for i in range(100)])
        result = db.sql("SELECT x FROM Big")
        text = format_result(result, max_rows=10)
        assert "90 more rows" in text


class TestSyntaxErrorCaret:
    def test_caret_points_at_offending_token(self):
        output = run_shell("SELECT a FRM T;\n")
        lines = output.splitlines()
        assert any("error:" in line for line in lines)
        # the source line is echoed with a caret underneath
        source_index = next(i for i, line in enumerate(lines)
                            if "SELECT a FRM T;" in line)
        caret = lines[source_index + 1]
        assert caret.strip() == "^"
        # the parser reads FRM as an alias and errors at the next
        # token — the caret lands exactly there
        assert lines[source_index][caret.index("^")] == "T"

    def test_caret_on_multiline_statement(self):
        output = run_shell("SELECT a\nFRM T;\n")
        lines = output.splitlines()
        source_index = next(i for i, line in enumerate(lines)
                            if line.strip() == "FRM T;")
        assert lines[source_index + 1].strip() == "^"

    def test_non_syntax_errors_have_no_caret(self):
        output = run_shell("SELECT nope FROM missing;\n")
        assert "error:" in output
        assert "^" not in output


class TestTimeoutCommand:
    def test_set_show_and_clear(self):
        output = run_shell("\\timeout 2.5\n\\timeout\n\\timeout off\n")
        assert output.count("statement timeout = 2.500s") == 2
        assert "statement timeout cleared" in output

    def test_rejects_garbage(self):
        output = run_shell("\\timeout -1\n\\timeout soon\n")
        assert output.count("usage:") == 2

    def test_timeout_applies_to_statements(self):
        from repro.distributed import DistributedDatabase, FaultPlan

        db = DistributedDatabase()
        db.create_table("R", [("x", DataType.INT)], site="east")
        db.insert("R", [(i,) for i in range(50)])
        db.analyze()
        db.set_fault_plan(FaultPlan(latency_rate=1.0,
                                    latency_seconds=30.0))
        output = run_shell("\\timeout 0.1\nSELECT x FROM R;\n", db=db)
        assert "error:" in output and "deadline" in output


class TestFaultsCommand:
    def test_status_when_off(self):
        output = run_shell("\\faults\n")
        assert "fault injection off" in output

    def test_configure_and_show(self):
        from repro.distributed import DistributedDatabase

        db = DistributedDatabase()
        output = run_shell(
            "\\faults drop 0.5 seed 7\n\\faults\n", db=db)
        assert "fault injection on (seed 7)" in output
        assert "drop_rate" in output
        assert db.network.injector is not None

    def test_off_clears_plan(self):
        from repro.distributed import DistributedDatabase

        db = DistributedDatabase()
        output = run_shell("\\faults drop 0.5\n\\faults off\n", db=db)
        assert "fault injection off" in output
        assert db.network.injector is None

    def test_help_and_bad_key(self):
        output = run_shell("\\faults help\n\\faults warp 0.5\n")
        assert "usage:" in output
        assert "rejected:" in output

    def test_creates_network_on_plain_database(self):
        db = Database()
        assert db.network is None
        run_shell("\\faults latency 1.0 0.5\n", db=db)
        assert db.network is not None
        assert db.network.injector.plan.latency_seconds == 0.5


class TestKeyboardInterrupt:
    def test_interrupt_mid_statement_keeps_shell_alive(self):
        out = io.StringIO()
        shell = Shell(out=out)
        original = shell.execute
        calls = []

        def flaky(text):
            if not calls:
                calls.append(text)
                raise KeyboardInterrupt
            return original(text)

        shell.execute = flaky
        shell.run(io.StringIO(
            "CREATE TABLE A (x INT);\nCREATE TABLE T (a INT);\n"))
        output = out.getvalue()
        assert "statement abandoned" in output
        # the shell went on to run the next statement
        assert "OK (create table)" in output

    def test_interrupt_clears_pending_buffer(self):
        out = io.StringIO()
        shell = Shell(out=out)

        class Interrupting:
            def __init__(self, lines):
                self.lines = iter(lines)
                self.sent = 0

            def __iter__(self):
                return self

            def __next__(self):
                return next(self.lines)

        shell.run(io.StringIO("CREATE TABLE T (a INT);\n"))
        # buffer a partial statement, then interrupt inside handle
        shell.execute = lambda text: (_ for _ in ()).throw(
            KeyboardInterrupt)
        shell.run(io.StringIO("SELECT a\nFROM T;\n"))
        assert "statement abandoned" in out.getvalue()


class TestObservabilityCommands:
    def test_metrics_renders_counters(self):
        output = run_shell(SETUP + "SELECT a FROM T;\n\\metrics\n")
        assert "queries_total" in output
        assert "{select}" in output
        assert "{create_table}" in output

    def test_trace_toggle_and_summary_line(self):
        output = run_shell(SETUP + "\\trace\n\\trace on\n"
                           "SELECT a FROM T WHERE b > 15;\n\\trace off\n")
        assert "tracing is off" in output
        assert "tracing on" in output
        assert "trace:" in output and "worst q-err" in output
        assert "tracing off" in output

    def test_trace_bad_argument(self):
        output = run_shell("\\trace sideways\n")
        assert "error" in output or "usage" in output

    def test_drift_empty_then_populated(self):
        output = run_shell(SETUP + "\\drift\n\\trace on\n"
                           "SELECT a FROM T;\n\\drift\n")
        assert "no traced queries" in output
        assert "estimate drift over the last" in output

    def test_explain_analyze_non_query_reports_inline(self):
        """\\ea of a DDL must print an error line, not kill the shell."""
        output = run_shell("\\ea CREATE TABLE X (a INT)\n\\d\n")
        assert "error: EXPLAIN ANALYZE requires a query" in output
        # the shell survived and ran the next command (\d header)
        assert "name  kind  rows" in output


class TestTxnShell:
    def test_txn_status_outside_txn(self):
        output = run_shell("\\txn\n")
        assert "no transaction in progress (autocommit)" in output
        assert "on_error" in output and "durability" in output

    def test_txn_control_words_echoed(self):
        output = run_shell(
            SETUP + "BEGIN;\nINSERT INTO T VALUES (4, 40);\n"
            "\\txn\nCOMMIT;\n"
        )
        assert "BEGIN" in output and "COMMIT" in output
        assert "in transaction t" in output

    def test_savepoint_and_release_words(self):
        output = run_shell(
            SETUP + "BEGIN;\nSAVEPOINT s1;\n\\txn\n"
            "RELEASE SAVEPOINT s1;\nROLLBACK;\n"
        )
        assert "SAVEPOINT" in output and "RELEASE" in output
        assert "savepoints: s1" in output

    def test_error_mid_txn_aborts_until_rollback(self):
        """PostgreSQL semantics in the shell: a typed error inside
        BEGIN...COMMIT aborts the transaction; every later statement is
        refused until ROLLBACK, after which the session works again."""
        output = run_shell(
            SETUP + "BEGIN;\nSELECT nope FROM missing;\n\\txn\n"
            "SELECT a FROM T;\nROLLBACK;\nSELECT a FROM T;\n"
        )
        assert "ABORTED — ROLLBACK to recover" in output
        # the SELECT before ROLLBACK was refused, the one after ran
        assert output.count("error:") == 2
        assert "(3 rows" in output

    def test_commit_of_aborted_txn_reports_rollback(self):
        output = run_shell(
            SETUP + "BEGIN;\nSELECT nope FROM missing;\nCOMMIT;\n\\txn\n"
        )
        # COMMIT of an aborted transaction rolls back and says so
        assert "ROLLBACK" in output
        assert "no transaction in progress" in output

    def test_abort_on_error_off_keeps_txn_usable(self):
        output = run_shell(
            SETUP + "\\txn abort-on-error off\nBEGIN;\n"
            "SELECT nope FROM missing;\nSELECT a FROM T;\nCOMMIT;\n"
        )
        assert "abort-on-error off" in output
        assert "(3 rows" in output

    def test_abort_on_error_usage_message(self):
        output = run_shell("\\txn abort-on-error maybe\n")
        assert "usage: \\txn" in output

    def test_ctrl_c_mid_txn_reports_aborted_transaction(self, monkeypatch):
        """Ctrl-C during a statement inside BEGIN...COMMIT aborts the
        transaction like any statement error; the shell says so and the
        session needs ROLLBACK to recover."""
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        out = io.StringIO()
        shell = Shell(db=db, out=out)

        real = db._dispatch_statement
        armed = {"on": False}

        def interruptible(*args, **kwargs):
            if armed["on"]:
                armed["on"] = False
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(db, "_dispatch_statement", interruptible)

        def source():
            yield "BEGIN;\n"
            armed["on"] = True
            yield "INSERT INTO T VALUES (1);\n"
            yield "\\txn\n"
            yield "ROLLBACK;\n"
            yield "\\txn\n"

        shell.run(source())
        output = out.getvalue()
        assert "^C — statement abandoned; transaction" in output
        assert "aborted (ROLLBACK to recover)" in output
        assert "ABORTED — ROLLBACK to recover" in output
        assert "no transaction in progress" in output

    def test_ctrl_c_outside_txn_plain_message(self, monkeypatch):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        out = io.StringIO()
        shell = Shell(db=db, out=out)

        real = db._dispatch_statement
        armed = {"on": False}

        def interruptible(*args, **kwargs):
            if armed["on"]:
                armed["on"] = False
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(db, "_dispatch_statement", interruptible)

        def source():
            armed["on"] = True
            yield "INSERT INTO T VALUES (1);\n"

        shell.run(source())
        output = out.getvalue()
        assert "^C — statement abandoned" in output
        assert "transaction" not in output


class TestServingCommands:
    def test_slow_turns_telemetry_on_then_records(self):
        db = Database()
        output = run_shell(
            SETUP + "\\slow\nSELECT a FROM T;\n\\slow\n", db=db)
        assert "query telemetry on" in output
        assert "no slow queries recorded" in output
        assert db.defaults.resolved().telemetry
        # the statement after the first \slow was recorded...
        assert db.querylog.recorded >= 1
        # ...but a fast query is not in the *slow* log
        assert "SELECT a FROM T" not in output.split("\\slow")[-1]

    def test_slow_shows_offenders_with_low_threshold(self):
        db = Database()
        db.configure(slow_query_seconds=1e-9)
        output = run_shell(SETUP + "\\slow\nSELECT a FROM T;\n\\slow\n",
                           db=db)
        assert "SELECT a FROM T" in output
        assert "kind" in output  # the slow-log header row

    def test_slow_bad_argument(self):
        assert "usage: \\slow" in run_shell("\\slow x\n")
        assert "usage: \\slow" in run_shell("\\slow 0\n")
        assert "usage: \\slow" in run_shell("\\slow -3\n")

    def test_sessions_lists_the_bound_session(self):
        output = run_shell(SETUP + "BEGIN;\n\\sessions\nROLLBACK;\n")
        assert "session" in output and "bound" in output
        assert "*" in output  # the shell's own session is bound

    def test_adaptive_toggle_and_status(self):
        db = Database()
        output = run_shell("\\adaptive\n\\adaptive on\n\\adaptive\n"
                           "\\adaptive off\n", db=db)
        assert "adaptive maintenance is off" in output
        assert "adaptive maintenance on" in output
        assert "adaptive maintenance is on" in output
        assert "threshold=" in output
        assert "no adaptive actions" in output
        assert not db.defaults.resolved().adaptive.enabled

    def test_adaptive_bad_argument(self):
        assert "usage: \\adaptive" in run_shell("\\adaptive maybe\n")
