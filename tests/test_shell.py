"""Tests for the interactive SQL shell."""

import io

import pytest

from repro import Database, DataType
from repro.shell import Shell, format_result


def run_shell(script: str, db=None) -> str:
    out = io.StringIO()
    shell = Shell(db=db, out=out)
    shell.run(io.StringIO(script))
    return out.getvalue()


SETUP = """
CREATE TABLE T (a INT, b INT);
INSERT INTO T VALUES (1, 10), (2, 20), (3, 30);
"""


class TestShellStatements:
    def test_ddl_and_select(self):
        output = run_shell(SETUP + "SELECT a FROM T WHERE b > 15;\n")
        assert "OK (create table)" in output
        assert "INSERT: 3 row(s)" in output
        assert "(2 rows" in output

    def test_multiline_statement(self):
        output = run_shell(
            SETUP + "SELECT a\nFROM T\nWHERE b = 10;\n"
        )
        assert "(1 row," in output

    def test_error_reported_not_raised(self):
        output = run_shell("SELECT nope FROM missing;\n")
        assert "error:" in output

    def test_union_in_shell(self):
        output = run_shell(
            SETUP + "SELECT a FROM T UNION ALL SELECT a FROM T;\n"
        )
        assert "(6 rows" in output


class TestMetaCommands:
    def test_list_relations(self):
        output = run_shell(SETUP + "\\d\n")
        assert "T" in output and "table" in output

    def test_describe_table(self):
        output = run_shell(SETUP + "\\d T\n")
        assert "column" in output and "int" in output

    def test_describe_missing(self):
        output = run_shell("\\d Nope\n")
        assert "no relation" in output

    def test_explain(self):
        output = run_shell(SETUP + "\\e SELECT a FROM T\n")
        assert "SeqScan" in output

    def test_explain_analyze(self):
        output = run_shell(SETUP + "\\ea SELECT a FROM T\n")
        assert "measured cost" in output

    def test_set_boolean(self):
        db = Database()
        run_shell("\\set enable_filter_join off\n", db=db)
        assert db.config.enable_filter_join is False

    def test_set_integer(self):
        db = Database()
        run_shell("\\set memory_pages 64\n", db=db)
        assert db.config.memory_pages == 64

    def test_set_invalid_value_rejected(self):
        db = Database()
        output = run_shell("\\set parametric_classes 1\n", db=db)
        assert "rejected" in output
        assert db.config.parametric_classes != 1

    def test_set_unknown_key(self):
        output = run_shell("\\set no_such_key on\n")
        assert "unknown config key" in output

    def test_quit_stops_processing(self):
        output = run_shell("\\q\nSELECT 1;\n")
        assert "error" not in output

    def test_unknown_meta(self):
        output = run_shell("\\frobnicate\n")
        assert "unknown command" in output

    def test_cache_stats(self):
        output = run_shell(
            SETUP
            + "SELECT a FROM T;\nSELECT a FROM T;\n\\cache\n"
        )
        assert "hits" in output and "misses" in output
        # the repeated statement hit the cache
        assert "hits             1" in output

    def test_cache_clear_and_resize(self):
        output = run_shell("\\cache size 4\n\\cache clear\n\\cache\n")
        assert "plan cache capacity = 4" in output
        assert "plan cache cleared" in output
        assert "hits             0" in output

    def test_cache_bad_size_rejected(self):
        output = run_shell("\\cache size lots\n")
        assert "rejected" in output


class TestFormatResult:
    def test_truncates_long_results(self):
        db = Database()
        db.sql("CREATE TABLE Big (x INT)")
        db.insert("Big", [(i,) for i in range(100)])
        result = db.sql("SELECT x FROM Big")
        text = format_result(result, max_rows=10)
        assert "90 more rows" in text
