"""Unit tests for the resilience layer: simulated network, fault
injector determinism, retry/backoff, deadlines, memory governor, site
status, replicas, and plan-cache interaction."""

import random

import pytest

from repro import (
    Database,
    DataType,
    QueryTimeout,
    ResourceExhausted,
    SiteUnavailable,
)
from repro.distributed import (
    DistributedDatabase,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SimulatedNetwork,
    distributed_config,
)
from repro.executor.runtime import RuntimeContext


def make_db(rng_seed=41):
    rng = random.Random(rng_seed)
    db = DistributedDatabase(distributed_config(2.0, 0.005))
    db.create_table("Local", [("k", DataType.INT), ("v", DataType.INT)])
    db.create_table("East", [("k", DataType.INT), ("e", DataType.INT)],
                    site="east")
    db.create_table("West", [("e", DataType.INT), ("w", DataType.INT)],
                    site="west")
    db.insert("Local", [(rng.randint(1, 30), i) for i in range(60)])
    db.insert("East", [(k % 40 + 1, k % 12) for k in range(150)])
    db.insert("West", [(e % 12, e) for e in range(80)])
    db.create_index("East", "k")
    db.analyze()
    return db


QUERY = ("SELECT L.v, W.w FROM Local L, East E, West W "
         "WHERE L.k = E.k AND E.e = W.e")


# --------------------------------------------------------------- injector

class TestFaultInjector:
    def test_deterministic_given_seed(self):
        plan = FaultPlan(drop_rate=0.3, truncate_rate=0.2,
                         latency_rate=0.1)
        a = FaultInjector(plan, seed=7)
        b = FaultInjector(plan, seed=7)
        faults_a = [a.next_fault("x", None) for _ in range(200)]
        faults_b = [b.next_fault("x", None) for _ in range(200)]
        assert faults_a == faults_b
        assert any(faults_a)  # some faults actually fired

    def test_reset_replays_schedule(self):
        injector = FaultInjector(FaultPlan(drop_rate=0.5), seed=3)
        first = [injector.next_fault("s", None) for _ in range(50)]
        injector.reset()
        assert [injector.next_fault("s", None) for _ in range(50)] == first

    def test_down_site_always_refuses(self):
        injector = FaultInjector(FaultPlan(down_sites=frozenset({"east"})))
        assert injector.next_fault(None, "east") == "site_down"
        assert injector.next_fault("east", None) == "site_down"
        assert injector.next_fault(None, "west") is None

    def test_fail_first_is_transient(self):
        injector = FaultInjector(FaultPlan(fail_first={"east": 2}))
        assert injector.next_fault(None, "east") == "drop"
        assert injector.next_fault(None, "east") == "drop"
        assert injector.next_fault(None, "east") is None

    def test_site_down_after_counts_deliveries(self):
        injector = FaultInjector(FaultPlan(site_down_after={"east": 2}))
        for _ in range(2):
            assert injector.next_fault(None, "east") is None
            injector.record_delivery(None, "east")
        assert injector.next_fault(None, "east") == "site_down"

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_below_nominal(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0,
                             max_delay=1.0, jitter=0.5)
        rng = random.Random(1)
        for n in range(1, 20):
            assert 0.5 <= policy.delay(n, rng) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


# ---------------------------------------------------------------- network

class TestSimulatedNetwork:
    def ctx(self, network=None, deadline=None):
        return RuntimeContext(network=network, deadline_seconds=deadline)

    def test_fault_free_accounting_matches_legacy(self):
        """With no injector the network charges exactly what the old
        inline code charged: ceil(bytes/payload) messages."""
        network = SimulatedNetwork()
        ctx_net = self.ctx(network)
        ctx_net.charge_ship(100, 200)  # 20000 bytes, 8192 payload
        ctx_plain = self.ctx()
        ctx_plain.charge_ship(100, 200)
        assert ctx_net.ledger.net_msgs == ctx_plain.ledger.net_msgs == 3
        assert ctx_net.ledger.net_bytes == ctx_plain.ledger.net_bytes

    def test_retries_charge_the_wire(self):
        network = SimulatedNetwork(
            FaultInjector(FaultPlan(fail_first={"east": 2}))
        )
        ctx = self.ctx(network)
        ctx.charge_ship(10, 8, from_site=None, to_site="east")
        # 2 failed attempts + 1 delivery, all on the wire
        assert ctx.ledger.net_msgs == 3
        assert network.stats.retries == 2
        assert network.stats.drops == 2

    def test_retry_budget_exhaustion_raises_site_unavailable(self):
        network = SimulatedNetwork(
            FaultInjector(FaultPlan(drop_rate=1.0)),
            RetryPolicy(max_attempts=3),
        )
        with pytest.raises(SiteUnavailable) as exc_info:
            network.transfer(self.ctx(network), None, "east", 100)
        assert exc_info.value.site == "east"
        assert exc_info.value.attempts == 3

    def test_down_site_raises_without_consuming_wire(self):
        network = SimulatedNetwork(
            FaultInjector(FaultPlan(down_sites=frozenset({"east"})))
        )
        ctx = self.ctx(network)
        with pytest.raises(SiteUnavailable):
            network.transfer(ctx, None, "east", 100)
        assert ctx.ledger.net_msgs == 0

    def test_latency_advances_simulated_clock(self):
        network = SimulatedNetwork(FaultInjector(
            FaultPlan(latency_rate=1.0, latency_seconds=2.0)))
        ctx = self.ctx(network)
        network.transfer(ctx, None, "east", 100)
        assert ctx.simulated_seconds == pytest.approx(2.0)

    def test_backoff_can_trip_the_deadline(self):
        network = SimulatedNetwork(
            FaultInjector(FaultPlan(latency_rate=1.0,
                                    latency_seconds=30.0)))
        ctx = self.ctx(network, deadline=1.0)
        with pytest.raises(QueryTimeout):
            network.transfer(ctx, None, "east", 100)


# --------------------------------------------------------------- deadline

class TestDeadline:
    def test_zero_timeout_aborts(self):
        db = make_db()
        with pytest.raises(QueryTimeout):
            db.sql(QUERY, timeout=1e-9)

    def test_generous_timeout_passes(self):
        db = make_db()
        result = db.sql(QUERY, timeout=60.0)
        assert len(result.rows) > 0

    def test_default_timeout_on_database(self):
        db = make_db()
        db.default_timeout = 1e-9
        with pytest.raises(QueryTimeout):
            db.sql(QUERY)
        db.default_timeout = None
        assert len(db.sql(QUERY).rows) > 0

    def test_timeout_error_carries_fields(self):
        db = make_db()
        db.set_fault_plan(FaultPlan(latency_rate=1.0,
                                    latency_seconds=10.0), seed=1)
        with pytest.raises(QueryTimeout) as exc_info:
            db.sql(QUERY, timeout=0.5)
        assert exc_info.value.timeout == 0.5
        assert exc_info.value.elapsed > 0.5


# ---------------------------------------------------------- memory budget

class TestMemoryGovernor:
    def test_tiny_budget_raises(self):
        db = make_db()
        with pytest.raises(ResourceExhausted):
            db.sql(QUERY, memory_budget_bytes=64)

    def test_generous_budget_passes(self):
        db = make_db()
        result = db.sql(QUERY, memory_budget_bytes=64 * 1024 * 1024)
        assert len(result.rows) > 0

    def test_budget_from_config(self):
        db = Database()
        db.create_table("T", [("a", DataType.INT)])
        db.insert("T", [(i,) for i in range(5000)])
        db.analyze()
        db.config = db.config.replace(memory_budget_bytes=128)
        with pytest.raises(ResourceExhausted):
            db.sql("SELECT a FROM T ORDER BY a")

    def test_exhaustion_reports_budget(self):
        db = make_db()
        with pytest.raises(ResourceExhausted) as exc_info:
            db.sql(QUERY, memory_budget_bytes=64)
        assert exc_info.value.budget_bytes == 64

    def test_memory_released_across_statements(self):
        """Operator working memory is released when iteration ends, so
        consecutive statements each see the full budget."""
        db = make_db()
        budget = 512 * 1024
        for _ in range(5):
            assert len(db.sql(QUERY, memory_budget_bytes=budget).rows) > 0


# ------------------------------------------------------------ site status

class TestSiteStatusAndReplicas:
    def test_mark_down_moves_placement_local(self):
        db = make_db()
        assert db.site_of("East") == "east"
        db.mark_site_down("east")
        assert db.site_of("East") is None  # coordinator-local fallback
        db.mark_site_up("east")
        assert db.site_of("East") == "east"

    def test_replica_preferred_over_local_fallback(self):
        db = make_db()
        db.add_replica("East", "west")
        db.mark_site_down("east")
        assert db.site_of("East") == "west"
        db.mark_site_down("west")
        assert db.site_of("East") is None

    def test_site_status_bumps_catalog_version(self):
        db = make_db()
        before = db.catalog.version
        db.mark_site_down("east")
        assert db.catalog.version > before
        # marking an already-down site down again is a no-op
        version = db.catalog.version
        db.mark_site_down("east")
        assert db.catalog.version == version

    def test_cached_plan_invalidated_by_site_change(self):
        db = make_db()
        db.sql(QUERY, use_cache=True)
        db.sql(QUERY, use_cache=True)
        stats = db.cache_stats()
        assert stats["hits"] >= 1
        db.mark_site_down("east")
        invalidations = db.plan_cache.invalidations
        result = db.sql(QUERY, use_cache=True)
        assert db.plan_cache.invalidations > invalidations
        assert len(result.rows) > 0

    def test_degradation_records_event(self):
        db = make_db()
        db.set_fault_plan(FaultPlan(down_sites=frozenset({"east"})))
        baseline = sorted(make_db().sql(QUERY).rows)
        result = db.sql(QUERY)
        assert sorted(result.rows) == baseline
        assert len(db.degradation_events) == 1
        event = db.degradation_events[0]
        assert event.site == "east"
        assert "east" in db.down_sites

    def test_degraded_plan_avoids_dead_site(self):
        db = make_db()
        db.mark_site_down("east")
        plan, _ = db.plan(QUERY)

        def sites(node):
            yield node.site
            yield getattr(node, "from_site", None)
            yield getattr(node, "to_site", None)
            for child in node.children():
                for s in sites(child):
                    yield s

        assert "east" not in set(sites(plan))

    def test_all_sites_down_still_answers_locally(self):
        db = make_db()
        db.set_fault_plan(
            FaultPlan(down_sites=frozenset({"east", "west"})))
        baseline = sorted(make_db().sql(QUERY).rows)
        result = db.sql(QUERY)
        assert sorted(result.rows) == baseline
        assert set(db.down_sites) == {"east", "west"}

    def test_resilience_stats_shape(self):
        db = make_db()
        db.sql(QUERY)
        stats = db.resilience_stats()
        assert stats["messages"] > 0
        assert stats["degradations"] == 0
        assert stats["down_sites"] == []
