"""Unit + property tests for the closed-form estimators (Yao, Cardenas)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatsError
from repro.stats.estimator import (
    cardenas_distinct,
    filter_selectivity,
    join_selectivity,
    yao_blocks,
)


class TestYao:
    def test_zero_selection(self):
        assert yao_blocks(1000, 100, 0) == 0.0

    def test_select_all_touches_all_pages(self):
        assert yao_blocks(1000, 100, 1000) == 100.0

    def test_single_tuple_touches_about_one_page(self):
        assert yao_blocks(1000, 100, 1) == pytest.approx(1.0, abs=0.05)

    def test_monotone_in_k(self):
        values = [yao_blocks(10_000, 500, k) for k in (1, 10, 100, 1000, 9999)]
        assert values == sorted(values)

    def test_bounded_by_pages(self):
        assert yao_blocks(10_000, 50, 9_999) <= 50.0

    def test_large_k_approximation_close(self):
        # exact (k<=1000) vs approximation shapes should both be near pages
        assert yao_blocks(100_000, 1000, 50_000) == pytest.approx(
            1000.0, rel=0.01
        )

    @given(st.integers(1, 50_000), st.integers(1, 1000),
           st.integers(0, 50_000))
    @settings(max_examples=80, deadline=None)
    def test_always_in_range(self, n, pages, k):
        result = yao_blocks(n, pages, k)
        assert 0.0 <= result <= pages + 1e-9


class TestCardenas:
    def test_zero_draws(self):
        assert cardenas_distinct(100, 0) == 0.0

    def test_single_domain_value(self):
        assert cardenas_distinct(1, 50) == 1.0

    def test_many_draws_saturates(self):
        assert cardenas_distinct(10, 10_000) == pytest.approx(10.0, rel=1e-3)

    def test_few_draws_close_to_k(self):
        assert cardenas_distinct(1_000_000, 10) == pytest.approx(10.0, rel=0.01)

    def test_invalid_domain_raises(self):
        with pytest.raises(StatsError):
            cardenas_distinct(0, 5)

    @given(st.floats(1, 1e6), st.floats(0, 1e6))
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_domain_and_draws(self, d, k):
        result = cardenas_distinct(d, k)
        assert 0.0 <= result <= min(d, k) + 1e-6


class TestJoinAndFilterSelectivity:
    def test_join_selectivity_uses_max(self):
        assert join_selectivity(10, 100) == pytest.approx(0.01)
        assert join_selectivity(100, 10) == pytest.approx(0.01)

    def test_join_selectivity_floor(self):
        assert join_selectivity(0, 0) == 1.0

    def test_filter_selectivity_ratio(self):
        assert filter_selectivity(20, 100) == pytest.approx(0.2)

    def test_filter_selectivity_capped(self):
        assert filter_selectivity(500, 100) == 1.0

    def test_filter_selectivity_degenerate_domain(self):
        assert filter_selectivity(5, 0) == 1.0
