"""Differential tests: engine vs. naive reference interpreter.

A seeded generator produces random select-project-join(-aggregate)
queries over small random tables (and views), executes each through the
full parse->bind->optimize->execute pipeline under several optimizer
configurations, and checks every answer against the naive cross-product
oracle in :mod:`tests.reference_engine`.
"""

import random

import pytest

from repro import Database, DataType, OptimizerConfig
from tests.reference_engine import evaluate_block_naive

CONFIGS = [
    OptimizerConfig(),
    OptimizerConfig(enable_filter_join=False, enable_bloom_filter=False),
    OptimizerConfig(memory_pages=3),
    OptimizerConfig(forced_view_join="filter_join"),
    OptimizerConfig(forced_view_join="nested_iteration"),
]


def make_random_db(rng: random.Random) -> Database:
    db = Database()
    db.create_table("T1", [("a", DataType.INT), ("b", DataType.INT),
                           ("c", DataType.INT)])
    db.create_table("T2", [("a", DataType.INT), ("d", DataType.INT)])
    db.create_table("T3", [("d", DataType.INT), ("e", DataType.INT)])
    db.insert("T1", [
        (rng.randint(0, 8), rng.randint(0, 20), rng.randint(0, 4))
        for _ in range(rng.randint(5, 60))
    ])
    db.insert("T2", [
        (rng.randint(0, 8), rng.randint(0, 6))
        for _ in range(rng.randint(5, 40))
    ])
    db.insert("T3", [
        (rng.randint(0, 6), rng.randint(0, 100))
        for _ in range(rng.randint(3, 30))
    ])
    db.create_view(
        "V1", "SELECT T2.a, COUNT(*) AS n, MAX(T2.d) AS mx "
              "FROM T2 GROUP BY T2.a",
    )
    db.create_view("V2", "SELECT T3.d, T3.e FROM T3 WHERE T3.e > 10")
    db.analyze()
    return db


def random_query(rng: random.Random) -> str:
    shape = rng.choice(["join2", "join3", "view_join", "agg", "view_agg",
                        "spj_distinct"])
    if shape == "join2":
        return (
            "SELECT T1.b, T2.d FROM T1, T2 WHERE T1.a = T2.a"
            + rng.choice(["", " AND T1.b > 10", " AND T2.d < 3"])
        )
    if shape == "join3":
        return (
            "SELECT T1.b, T3.e FROM T1, T2, T3 "
            "WHERE T1.a = T2.a AND T2.d = T3.d"
            + rng.choice(["", " AND T1.c = 2", " AND T3.e > 50"])
        )
    if shape == "view_join":
        return (
            "SELECT T1.b, V1.n FROM T1, V1 WHERE T1.a = V1.a"
            + rng.choice(["", " AND V1.n > 1", " AND T1.b < 15"])
        )
    if shape == "agg":
        return (
            "SELECT T1.c, COUNT(*) AS n, SUM(T1.b) AS s "
            "FROM T1 GROUP BY T1.c"
            + rng.choice(["", " HAVING COUNT(*) > 2"])
        )
    if shape == "view_agg":
        return (
            "SELECT V1.a, V1.mx, T2.d FROM V1, T2 WHERE V1.a = T2.a"
        )
    return (
        "SELECT DISTINCT T1.a, T1.c FROM T1"
        + rng.choice(["", " WHERE T1.b > 5"])
        + rng.choice(["", " ORDER BY a"])
    )


def assert_query_matches(db: Database, query: str,
                         config: OptimizerConfig) -> None:
    block = db.bind(query)
    expected = evaluate_block_naive(block)
    result = db.sql(query, config=config)
    if block.order_by:
        assert result.rows == expected, query
    else:
        assert sorted(result.rows) == sorted(expected), query


@pytest.mark.parametrize("seed", range(12))
def test_random_queries_match_reference(seed):
    rng = random.Random(1000 + seed)
    db = make_random_db(rng)
    for _ in range(6):
        query = random_query(rng)
        config = rng.choice(CONFIGS)
        assert_query_matches(db, query, config)


@pytest.mark.parametrize("config", CONFIGS[:3])
def test_fixed_corpus_all_configs(config):
    rng = random.Random(77)
    db = make_random_db(rng)
    corpus = [
        "SELECT T1.a, T1.b FROM T1 WHERE T1.b > 10 ORDER BY b DESC, a",
        "SELECT T1.b, T2.d FROM T1, T2 WHERE T1.a = T2.a AND T1.c < 3",
        "SELECT T1.b, T3.e FROM T1, T2, T3 "
        "WHERE T1.a = T2.a AND T2.d = T3.d AND T3.e > 20",
        "SELECT T1.c, AVG(T1.b) AS m FROM T1 GROUP BY T1.c",
        "SELECT T1.c, COUNT(*) AS n FROM T1, T2 WHERE T1.a = T2.a "
        "GROUP BY T1.c HAVING COUNT(*) > 1",
        "SELECT DISTINCT T2.d FROM T2",
        "SELECT T1.b, V1.n FROM T1, V1 WHERE T1.a = V1.a AND V1.n > 1",
        "SELECT V2.e, T2.a FROM V2, T2 WHERE V2.d = T2.d",
        "SELECT T1.a FROM T1 LIMIT 3",
        "SELECT COUNT(*) AS n FROM T1",
        "SELECT T1.a, T2.d FROM T1, T2 WHERE T1.a = T2.a AND T1.b > T2.d",
    ]
    for query in corpus:
        assert_query_matches(db, query, config)


@pytest.mark.parametrize("config", CONFIGS)
def test_prepared_cached_execution_matches_one_shot(config):
    """Every generated query, run again through db.prepare().execute()
    with the plan cache enabled, must give exactly the one-shot answer
    (and keep matching the naive reference) under every config."""
    rng = random.Random(2024)
    db = make_random_db(rng)
    for _ in range(8):
        query = random_query(rng)
        block = db.bind(query)
        expected = evaluate_block_naive(block)
        one_shot = db.sql(query, config=config)
        handle = db.prepare(query, config=config)
        for _ in range(2):  # second run is a guaranteed cache hit
            cached = handle.execute()
            if block.order_by:
                assert cached.rows == one_shot.rows == expected, query
            else:
                assert (sorted(cached.rows) == sorted(one_shot.rows)
                        == sorted(expected)), query
    assert db.cache_stats()["hits"] > 0


@pytest.mark.parametrize("cache_size", [0, 128])
def test_differential_with_cache_enabled_and_disabled(cache_size):
    """The differential corpus holds whether the plan cache is on or
    off; with it off every execution re-plans, with it on plans are
    reused — the answers must be identical either way."""
    rng = random.Random(515)
    db = Database(plan_cache_size=cache_size)
    db.create_table("T1", [("a", DataType.INT), ("b", DataType.INT),
                           ("c", DataType.INT)])
    db.create_table("T2", [("a", DataType.INT), ("d", DataType.INT)])
    db.insert("T1", [
        (rng.randint(0, 8), rng.randint(0, 20), rng.randint(0, 4))
        for _ in range(40)
    ])
    db.insert("T2", [(rng.randint(0, 8), rng.randint(0, 6))
                     for _ in range(25)])
    db.analyze()
    queries = [
        "SELECT T1.b, T2.d FROM T1, T2 WHERE T1.a = T2.a",
        "SELECT T1.c, COUNT(*) AS n FROM T1 GROUP BY T1.c",
        "SELECT DISTINCT T1.a FROM T1 WHERE T1.b > 5",
    ]
    for query in queries:
        expected = evaluate_block_naive(db.bind(query))
        handle = db.prepare(query)
        for _ in range(3):
            assert sorted(handle.execute().rows) == sorted(expected), query
    stats = db.cache_stats()
    if cache_size == 0:
        assert stats["hits"] == 0
    else:
        assert stats["hits"] >= 2 * len(queries)


def test_empty_tables():
    db = Database()
    db.create_table("E1", [("x", DataType.INT)])
    db.create_table("E2", [("x", DataType.INT)])
    db.analyze()
    assert db.sql("SELECT E1.x FROM E1").rows == []
    assert db.sql(
        "SELECT E1.x FROM E1, E2 WHERE E1.x = E2.x"
    ).rows == []
    assert db.sql("SELECT COUNT(*) AS n FROM E1").rows == [(0,)]


def test_nulls_flow_through_joins():
    db = Database()
    db.create_table("N1", [("x", DataType.INT), ("y", DataType.INT)])
    db.create_table("N2", [("x", DataType.INT), ("z", DataType.INT)])
    db.insert("N1", [(1, 10), (None, 20), (3, None)])
    db.insert("N2", [(1, 100), (None, 200), (3, 300)])
    db.analyze()
    result = db.sql("SELECT N1.y, N2.z FROM N1, N2 WHERE N1.x = N2.x")
    assert set(result.rows) == {(10, 100), (None, 300)}
