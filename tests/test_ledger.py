"""Unit tests for the cost ledger."""

import pytest

from repro.ledger import CostLedger, CostParams


class TestCostLedger:
    def test_charges_accumulate(self):
        ledger = CostLedger()
        ledger.charge_reads(3)
        ledger.charge_reads(2)
        ledger.charge_cpu(100)
        assert ledger.page_reads == 5
        assert ledger.tuple_cpu == 100

    def test_message_charges_both_counters(self):
        ledger = CostLedger()
        ledger.charge_message(500)
        assert ledger.net_msgs == 1
        assert ledger.net_bytes == 500

    def test_snapshot_is_independent(self):
        ledger = CostLedger()
        ledger.charge_reads(1)
        snap = ledger.snapshot()
        ledger.charge_reads(1)
        assert snap.page_reads == 1
        assert ledger.page_reads == 2

    def test_delta(self):
        ledger = CostLedger()
        ledger.charge_cpu(10)
        before = ledger.snapshot()
        ledger.charge_cpu(5)
        ledger.charge_writes(2)
        delta = ledger.delta(before)
        assert delta.tuple_cpu == 5
        assert delta.page_writes == 2
        assert delta.page_reads == 0

    def test_add_and_merge(self):
        a, b = CostLedger(page_reads=1), CostLedger(page_reads=2)
        combined = a + b
        assert combined.page_reads == 3
        a.merge(b)
        assert a.page_reads == 3
        assert b.page_reads == 2  # untouched

    def test_reset(self):
        ledger = CostLedger(page_reads=5, tuple_cpu=10)
        ledger.reset()
        assert ledger.total() == 0.0

    def test_str_compact(self):
        assert "empty" in str(CostLedger())
        assert "page_reads" in str(CostLedger(page_reads=1))


class TestCostParams:
    def test_default_weights(self):
        ledger = CostLedger(page_reads=10, tuple_cpu=200)
        assert ledger.total() == pytest.approx(10 + 200 * 0.005)

    def test_network_free_by_default(self):
        ledger = CostLedger(net_msgs=100, net_bytes=1e6)
        assert ledger.total() == 0.0

    def test_custom_network_weights(self):
        params = CostParams(net_msg_weight=2.0, net_byte_weight=0.001)
        ledger = CostLedger(net_msgs=3, net_bytes=1000)
        assert ledger.total(params) == pytest.approx(6 + 1)

    def test_fn_invocation_weight(self):
        ledger = CostLedger(fn_invocations=4)
        assert ledger.total(CostParams(fn_invocation_weight=2.5)) == 10.0
