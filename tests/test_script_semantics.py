"""Failure semantics of ``Database.execute_script``.

The documented contract (see the ``execute_script`` docstring): when
statement *k* of *n* raises, the effects of statements 1..k-1
**persist**, statement *k* leaves **no partial state** behind, and
statements k+1..n **never run**. There is no script-level rollback —
atomicity is per statement.
"""

import pytest

from repro import Database, DataType, QueryTimeout, ReproError
from repro.distributed import DistributedDatabase, FaultPlan


def test_success_returns_one_result_per_statement():
    db = Database()
    script = """
        CREATE TABLE T (a INT);
        INSERT INTO T VALUES (1), (2);
        SELECT a FROM T;
    """
    results = db.execute_script(script)
    kinds = [r.statement_kind for r in results]
    assert kinds == ["create table", "insert", "select"]
    assert sorted(results[2].rows) == [(1,), (2,)]


def test_earlier_effects_persist_later_statements_never_run():
    db = Database()
    script = """
        CREATE TABLE T (a INT);
        INSERT INTO T VALUES (1), (2);
        SELECT broken FROM nowhere;
        INSERT INTO T VALUES (3);
        CREATE TABLE Never (b INT);
    """
    with pytest.raises(ReproError):
        list(db.execute_script(script))
    # 1..k-1 persisted
    assert sorted(db.sql("SELECT a FROM T").rows) == [(1,), (2,)]
    # k+1..n never ran
    assert not db.catalog.has_table("Never")


def test_failing_statement_leaves_no_partial_state():
    """An INSERT whose row batch fails mid-way must not leave a prefix
    of the batch behind: statement-level atomicity."""
    db = Database()
    list(db.execute_script("CREATE TABLE T (a INT);"
                           "INSERT INTO T VALUES (10);"))
    with pytest.raises(ReproError):
        # second row has the wrong arity -> the statement fails
        list(db.execute_script("INSERT INTO T VALUES (1), (2, 3);"))
    assert db.sql("SELECT a FROM T").rows == [(10,)]


def test_parse_error_anywhere_runs_nothing():
    """The script is parsed up-front, so a syntax error in ANY
    statement — even the last — means no statement runs at all."""
    db = Database()
    with pytest.raises(ReproError):
        db.execute_script("CREATE TABLE A (x INT); SELEC nope;")
    assert not db.catalog.has_table("A")


def test_timeout_applies_per_statement():
    """``timeout`` bounds each statement separately — a script is not
    one deadline shared across statements, so earlier statements'
    elapsed time does not starve later ones."""
    db = DistributedDatabase()
    db.create_table("R", [("x", DataType.INT)], site="east")
    db.insert("R", [(i,) for i in range(40)])
    db.analyze()
    db.set_fault_plan(FaultPlan(latency_rate=1.0, latency_seconds=30.0))
    script = "SELECT x FROM R; SELECT x FROM R;"
    results = []
    with pytest.raises(QueryTimeout):
        for result in db.execute_script(script, timeout=0.1):
            results.append(result)
    # the first statement already timed out; nothing was yielded
    assert results == []
    # fault-free, the same script completes: both statements got their
    # own fresh 5-second budget
    db.set_fault_plan(None)
    results = list(db.execute_script(script, timeout=5.0))
    assert len(results) == 2
