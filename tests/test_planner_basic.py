"""Planner tests: access paths, join methods, DP behaviour."""

import pytest

from repro import Database, DataType, OptimizerConfig
from repro.errors import PlanError
from repro.optimizer.planner import Planner
from repro.optimizer.plans import (
    AggregateNode,
    FilterJoinNode,
    IndexScanNode,
    JoinMethod,
    JoinNode,
    NestedIterationNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
)


def find_nodes(plan, node_type):
    out = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            out.append(node)
        stack.extend(node.children())
    return out


@pytest.fixture()
def db():
    database = Database()
    database.create_table("R", [("a", DataType.INT), ("b", DataType.INT)])
    database.create_table("S", [("a", DataType.INT), ("c", DataType.INT)])
    database.create_table("T", [("c", DataType.INT), ("d", DataType.INT)])
    database.insert("R", [(i, i % 10) for i in range(500)])
    database.insert("S", [(i % 50, i) for i in range(200)])
    database.insert("T", [(i, i) for i in range(40)])
    database.analyze()
    return database


class TestAccessPaths:
    def test_single_table_seq_scan(self, db):
        plan, _ = db.plan("SELECT a FROM R")
        scans = find_nodes(plan, SeqScanNode)
        assert len(scans) == 1

    def test_local_predicate_pushed_into_scan(self, db):
        plan, _ = db.plan("SELECT a FROM R WHERE b = 3")
        scan = find_nodes(plan, SeqScanNode)[0]
        assert scan.predicate is not None

    def test_index_scan_chosen_for_selective_equality(self, db):
        db.create_index("R", "a")
        plan, _ = db.plan("SELECT b FROM R WHERE a = 7")
        assert find_nodes(plan, IndexScanNode)

    def test_sorted_index_supports_range(self, db):
        db.create_index("R", "a", kind="sorted")
        plan, _ = db.plan("SELECT b FROM R WHERE a < 5")
        assert find_nodes(plan, IndexScanNode)

    def test_estimates_populated(self, db):
        plan, _ = db.plan("SELECT a FROM R WHERE b = 3")
        assert plan.est_rows > 0
        assert plan.est_cost > 0


class TestJoinPlanning:
    def test_two_way_join_produces_join_node(self, db):
        plan, _ = db.plan("SELECT R.b FROM R, S WHERE R.a = S.a")
        joins = find_nodes(plan, (JoinNode, FilterJoinNode))
        assert joins

    def test_three_way_chain(self, db):
        plan, planner = db.plan(
            "SELECT R.b FROM R, S, T WHERE R.a = S.a AND S.c = T.c"
        )
        result = db.run_plan(plan)
        assert planner.metrics.plans_considered > 0

    def test_hash_only_config(self, db):
        config = OptimizerConfig(
            enable_merge_join=False, enable_nested_loops=False,
            enable_index_nested_loops=False, enable_filter_join=False,
            enable_bloom_filter=False, enable_nested_iteration=False,
        )
        plan, _ = db.plan("SELECT R.b FROM R, S WHERE R.a = S.a", config)
        joins = find_nodes(plan, JoinNode)
        assert all(j.method == JoinMethod.HASH for j in joins)

    def test_nlj_handles_non_equi_join(self, db):
        plan, _ = db.plan("SELECT R.b FROM R, T WHERE R.a < T.c")
        result = db.run_plan(plan)
        assert len(result.rows) > 0

    def test_cross_product_allowed_when_forced(self, db):
        plan, _ = db.plan("SELECT R.b FROM R, T")
        result = db.run_plan(plan)
        assert len(result.rows) == 500 * 40

    def test_index_nested_loops_considered(self, db):
        db.create_index("S", "a")
        config = OptimizerConfig(
            enable_hash_join=False, enable_merge_join=False,
            enable_nested_loops=False, enable_filter_join=False,
            enable_bloom_filter=False,
        )
        plan, _ = db.plan("SELECT R.b FROM R, S WHERE R.a = S.a", config)
        joins = find_nodes(plan, JoinNode)
        assert any(j.method == JoinMethod.INL for j in joins)

    def test_merge_join_output_order_reused(self, db):
        config = OptimizerConfig(
            enable_hash_join=False, enable_nested_loops=False,
            enable_index_nested_loops=False, enable_filter_join=False,
            enable_bloom_filter=False,
        )
        plan, _ = db.plan(
            "SELECT R.a FROM R, S WHERE R.a = S.a ORDER BY a", config
        )
        result = db.run_plan(plan)
        values = [r[0] for r in result.rows]
        assert values == sorted(values)


class TestBlockAssembly:
    def test_aggregate_node_added(self, db):
        plan, _ = db.plan("SELECT b, COUNT(*) AS n FROM R GROUP BY b")
        assert find_nodes(plan, AggregateNode)

    def test_order_by_adds_sort(self, db):
        plan, _ = db.plan("SELECT a FROM R ORDER BY a DESC")
        assert find_nodes(plan, SortNode)

    def test_projection_node(self, db):
        plan, _ = db.plan("SELECT a FROM R")
        assert isinstance(plan, ProjectNode)

    def test_explain_renders(self, db):
        plan, _ = db.plan("SELECT R.b FROM R, S WHERE R.a = S.a")
        text = plan.explain()
        assert "rows=" in text and "cost=" in text


class TestMetrics:
    def test_plans_considered_grows_with_relations(self, db):
        _, p2 = db.plan("SELECT R.b FROM R, S WHERE R.a = S.a")
        _, p3 = db.plan(
            "SELECT R.b FROM R, S, T WHERE R.a = S.a AND S.c = T.c"
        )
        assert p3.metrics.plans_considered > p2.metrics.plans_considered

    def test_filter_join_counter(self, db):
        _, planner = db.plan("SELECT R.b FROM R, S WHERE R.a = S.a")
        assert planner.metrics.filter_joins_considered > 0

    def test_disabling_filter_join_zeroes_counter(self, db):
        config = OptimizerConfig(enable_filter_join=False,
                                 enable_bloom_filter=False)
        _, planner = db.plan("SELECT R.b FROM R, S WHERE R.a = S.a",
                             config)
        assert planner.metrics.filter_joins_considered == 0


class TestPlanCorrectness:
    """Every method must produce identical rows on the same query."""

    QUERY = "SELECT R.a, S.c FROM R, S WHERE R.a = S.a AND R.b < 5"

    def reference(self, db):
        r = db.catalog.table("R").rows
        s = db.catalog.table("S").rows
        return sorted(
            (ra, sc) for (ra, rb) in r for (sa, sc) in s
            if ra == sa and rb < 5
        )

    @pytest.mark.parametrize("config_kwargs", [
        {},
        {"enable_filter_join": False, "enable_bloom_filter": False},
        {"enable_hash_join": False},
        {"enable_hash_join": False, "enable_merge_join": False,
         "enable_filter_join": False, "enable_bloom_filter": False},
        {"enable_bloom_filter": False},
        {"memory_pages": 3},
    ])
    def test_all_configs_agree(self, db, config_kwargs):
        config = OptimizerConfig(**config_kwargs)
        result = db.sql(self.QUERY, config=config)
        assert sorted(result.rows) == self.reference(db)
