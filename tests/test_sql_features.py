"""Tests for SQL surface features: IN lists, BETWEEN, explain_analyze,
and a broad behavioural corpus."""

import pytest

from repro import Database, DataType
from repro.errors import SqlSyntaxError
from repro.expr.nodes import ColumnRef, InList, Literal
from repro.storage.schema import Schema


@pytest.fixture()
def db():
    database = Database()
    database.create_table("T", [("a", DataType.INT), ("b", DataType.INT),
                                ("s", DataType.STR)])
    database.insert("T", [
        (1, 10, "x"), (2, 20, "y"), (3, 30, "x"), (4, None, "z"),
        (None, 50, "y"),
    ])
    database.analyze()
    return database


class TestInListExpr:
    SCHEMA = Schema.of(("a", DataType.INT))

    def run(self, expr, row):
        return expr.resolve(self.SCHEMA).eval(row)

    def test_membership(self):
        expr = InList(ColumnRef("a"), (1, 2, 3))
        assert self.run(expr, (2,)) is True
        assert self.run(expr, (9,)) is False

    def test_negated(self):
        expr = InList(ColumnRef("a"), (1, 2), negated=True)
        assert self.run(expr, (9,)) is True
        assert self.run(expr, (1,)) is False

    def test_null_operand_unknown(self):
        expr = InList(ColumnRef("a"), (1,))
        assert self.run(expr, (None,)) is None

    def test_null_in_list_makes_miss_unknown(self):
        expr = InList(ColumnRef("a"), (1, None))
        assert self.run(expr, (1,)) is True
        assert self.run(expr, (9,)) is None

    def test_empty_list_rejected(self):
        from repro.errors import BindError
        with pytest.raises(BindError):
            InList(ColumnRef("a"), ())

    def test_display(self):
        expr = InList(ColumnRef("a"), (1, "x"), negated=True)
        assert expr.display() == "a NOT IN (1, 'x')"


class TestInListSql:
    def test_basic_in(self, db):
        result = db.sql("SELECT a FROM T WHERE a IN (1, 3)")
        assert sorted(result.rows) == [(1,), (3,)]

    def test_not_in(self, db):
        result = db.sql("SELECT a FROM T WHERE a NOT IN (1, 3)")
        assert sorted(result.rows) == [(2,), (4,)]

    def test_string_in(self, db):
        result = db.sql("SELECT a FROM T WHERE s IN ('x')")
        assert sorted(result.rows) == [(1,), (3,)]

    def test_in_in_join_query(self, db):
        db.create_table("U", [("a", DataType.INT)])
        db.insert("U", [(1,), (2,), (3,)])
        db.analyze("U")
        result = db.sql(
            "SELECT T.b FROM T, U WHERE T.a = U.a AND T.a IN (1, 2)"
        )
        assert sorted(result.rows) == [(10,), (20,)]

    def test_in_selectivity_reasonable(self, db):
        plan, _ = db.plan("SELECT a FROM T WHERE a IN (1, 2)")
        assert 0 < plan.est_rows <= 3


class TestBetween:
    def test_between(self, db):
        result = db.sql("SELECT a FROM T WHERE b BETWEEN 15 AND 35")
        assert sorted(result.rows) == [(2,), (3,)]

    def test_not_between(self, db):
        result = db.sql("SELECT a FROM T WHERE b NOT BETWEEN 15 AND 35")
        # rows with b=10 and b=50 qualify; the NULL-b row is excluded
        assert set(result.rows) == {(1,), (None,)}

    def test_between_with_and_chain(self, db):
        result = db.sql(
            "SELECT a FROM T WHERE b BETWEEN 5 AND 25 AND s = 'x'"
        )
        assert sorted(result.rows) == [(1,)]

    def test_not_without_in_or_between_still_works(self, db):
        result = db.sql("SELECT a FROM T WHERE NOT a = 1")
        assert sorted(result.rows) == [(2,), (3,), (4,)]


class TestExplainAnalyze:
    def test_contains_plan_and_measurements(self, db):
        text = db.explain_analyze("SELECT a FROM T WHERE a IN (1, 2)")
        assert "SeqScan" in text
        assert "actual rows: 2" in text
        assert "measured cost" in text
        assert "plans considered" in text


class TestInSubquery:
    @pytest.fixture()
    def orders_db(self):
        database = Database()
        database.create_table("Orders", [("oid", DataType.INT),
                                         ("cid", DataType.INT),
                                         ("amt", DataType.INT)])
        database.create_table("Cust", [("cid", DataType.INT),
                                       ("vip", DataType.BOOL)])
        database.insert("Orders", [(i, i % 10, i * 3) for i in range(40)])
        database.insert("Cust", [(c, c < 3) for c in range(10)])
        database.analyze()
        return database

    def test_semi_join_semantics(self, orders_db):
        result = orders_db.sql(
            "SELECT oid FROM Orders WHERE cid IN "
            "(SELECT cid FROM Cust WHERE vip = TRUE)"
        )
        expected = sorted((i,) for i in range(40) if i % 10 < 3)
        assert sorted(result.rows) == expected

    def test_duplicates_in_subquery_do_not_multiply(self, orders_db):
        orders_db.insert("Cust", [(1, True), (1, True)])  # dup cid
        orders_db.analyze("Cust")
        result = orders_db.sql(
            "SELECT oid FROM Orders WHERE cid IN (SELECT cid FROM Cust)"
        )
        assert len(result) == 40  # one output row per order, not more

    def test_combined_with_other_predicates(self, orders_db):
        result = orders_db.sql(
            "SELECT oid FROM Orders WHERE amt > 10 AND cid IN "
            "(SELECT cid FROM Cust WHERE vip = TRUE)"
        )
        expected = sorted(
            (i,) for i in range(40) if i % 10 < 3 and i * 3 > 10
        )
        assert sorted(result.rows) == expected

    def test_subquery_over_view(self, orders_db):
        orders_db.create_view(
            "Vips", "SELECT cid FROM Cust WHERE vip = TRUE"
        )
        result = orders_db.sql(
            "SELECT oid FROM Orders WHERE cid IN (SELECT cid FROM Vips)"
        )
        assert len(result) == 12

    def test_not_in_subquery_rejected(self, orders_db):
        from repro.errors import BindError
        with pytest.raises(BindError):
            orders_db.sql(
                "SELECT oid FROM Orders WHERE cid NOT IN "
                "(SELECT cid FROM Cust)"
            )

    def test_nested_under_or_rejected(self, orders_db):
        from repro.errors import BindError
        with pytest.raises(BindError):
            orders_db.sql(
                "SELECT oid FROM Orders WHERE cid IN "
                "(SELECT cid FROM Cust) OR amt > 5"
            )

    def test_multi_column_subquery_rejected(self, orders_db):
        from repro.errors import BindError
        with pytest.raises(BindError):
            orders_db.sql(
                "SELECT oid FROM Orders WHERE cid IN "
                "(SELECT cid, vip FROM Cust)"
            )


class TestDistinctAggregates:
    @pytest.fixture()
    def agg_db(self):
        database = Database()
        database.create_table("T", [("g", DataType.INT),
                                    ("x", DataType.INT)])
        database.insert("T", [(1, 5), (1, 5), (1, 7), (2, 9), (2, None)])
        database.analyze()
        return database

    def test_count_distinct(self, agg_db):
        result = agg_db.sql(
            "SELECT g, COUNT(DISTINCT x) AS d FROM T GROUP BY g "
            "ORDER BY g"
        )
        assert result.rows == [(1, 2), (2, 1)]

    def test_sum_distinct(self, agg_db):
        result = agg_db.sql("SELECT SUM(DISTINCT x) AS s FROM T")
        assert result.rows == [(21,)]

    def test_distinct_and_plain_coexist(self, agg_db):
        result = agg_db.sql(
            "SELECT COUNT(DISTINCT x) AS d, COUNT(x) AS plain FROM T"
        )
        assert result.rows == [(3, 4)]

    def test_avg_distinct(self, agg_db):
        result = agg_db.sql("SELECT AVG(DISTINCT x) AS m FROM T")
        assert result.rows == [(7.0,)]


class TestBehaviouralCorpus:
    def test_order_by_string_desc(self, db):
        result = db.sql("SELECT s FROM T WHERE a IN (1, 2, 3) "
                        "ORDER BY s DESC")
        assert [r[0] for r in result.rows] == ["y", "x", "x"]

    def test_arithmetic_projection(self, db):
        result = db.sql("SELECT a * 2 + 1 AS z FROM T WHERE a = 3")
        assert result.rows == [(7,)]

    def test_scalar_aggregates(self, db):
        result = db.sql(
            "SELECT COUNT(*) AS n, MIN(b) AS lo, MAX(b) AS hi, "
            "SUM(b) AS total FROM T"
        )
        assert result.rows == [(5, 10, 50, 110)]

    def test_having_on_count(self, db):
        result = db.sql(
            "SELECT s, COUNT(*) AS n FROM T GROUP BY s "
            "HAVING COUNT(*) > 1 ORDER BY s"
        )
        assert result.rows == [("x", 2), ("y", 2)]

    def test_limit_zero(self, db):
        assert db.sql("SELECT a FROM T LIMIT 0").rows == []

    def test_distinct_with_nulls(self, db):
        db.insert("T", [(None, 50, "y")])
        result = db.sql("SELECT DISTINCT a, s FROM T WHERE b = 50")
        assert result.rows == [(None, "y")]

    def test_view_with_in_predicate(self, db):
        db.create_view("Picked", "SELECT a, b FROM T WHERE a IN (1, 3)")
        result = db.sql("SELECT P.b FROM Picked P ORDER BY b")
        assert result.rows == [(10,), (30,)]


class TestCreateTableAs:
    def test_ctas_materializes_query(self, db):
        db.sql("CREATE TABLE Snapshot AS SELECT a, b FROM T WHERE b > 15")
        result = db.sql("SELECT a FROM Snapshot ORDER BY a")
        # NULLs sort first; the b=50 row has a NULL a
        assert result.rows == [(None,), (2,), (3,)]

    def test_ctas_infers_schema(self, db):
        db.sql("CREATE TABLE Agg AS "
               "SELECT s, COUNT(*) AS n FROM T GROUP BY s")
        schema = db.catalog.table("Agg").schema
        assert schema.names() == ["s", "n"]

    def test_ctas_from_union(self, db):
        db.sql("CREATE TABLE U AS "
               "SELECT a FROM T UNION ALL SELECT b FROM T")
        assert db.catalog.table("U").num_rows == 10

    def test_ctas_reports_row_count(self, db):
        result = db.sql("CREATE TABLE C2 AS SELECT a FROM T WHERE a = 1")
        assert result.rows == [(1,)]
        assert result.statement_kind == "create table as"

    def test_ctas_duplicate_name_rejected(self, db):
        from repro import CatalogError
        with pytest.raises(CatalogError):
            db.sql("CREATE TABLE T AS SELECT a FROM T")
