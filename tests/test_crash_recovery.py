"""Crash-recovery property: recovery reproduces EXACTLY the committed
state, from every surviving log the crash schedule can produce.

Each seeded schedule derives a workload (autocommit statements, explicit
transactions — some rolled back — and occasional checkpoints) and runs
it three ways:

1. **dry run** — a counting :class:`CrashInjector` enumerates every WAL
   append/fsync/checkpoint boundary the schedule crosses;
2. **crash runs** — for a seeded set of those boundaries, the schedule
   re-runs with an armed injector that kills the "process" mid-write.
   The in-memory database is abandoned (that is the crash); the
   surviving disk image is the WAL's durable bytes plus a seeded prefix
   of the unsynced tail — so torn final records happen naturally;
3. **oracle** — an *independent* ~20-line WAL parser (struct + zlib +
   json only, sharing no code with the engine) counts the commit
   records in the surviving bytes. A shadow database then replays
   exactly that many committed batches through the public API.

The property: ``fingerprint(recovered) == fingerprint(oracle)`` — rows,
index contents, statistics objects, and catalog version, byte for byte.
Committed-and-durable work survives every crash point; uncommitted or
torn work vanishes completely.

Schedules containing rolled-back transactions skip checkpoints: a
rollback burns version numbers on the live database (monotonicity), so
a later checkpoint snapshot records a higher version than a
committed-only replay reaches. That combination is covered separately
by a targeted content-equality test below.

``CRASH_SCHEDULES`` (default 200) sizes the sweep; CI's dedicated
crash-recovery job runs a subset.
"""

import json
import os
import random
import struct
import zlib

import pytest

from repro import Database, DataType
from repro.txn import (
    CrashInjector,
    MemoryStorage,
    SimulatedCrash,
    WriteAheadLog,
    fingerprint,
    recover,
)
from repro.txn.state import state_dict

N_SCHEDULES = int(os.environ.get("CRASH_SCHEDULES", "200"))
#: crash points exercised per schedule (all of them when fewer exist)
KILLS_PER_SCHEDULE = 6

COLUMNS = [("a", DataType.INT), ("b", DataType.INT), ("c", DataType.STR)]


# --------------------------------------------------- independent parser

def naive_committed_count(data: bytes) -> int:
    """Count durable commits with a from-scratch parser: magic, then
    ``length:u32le | crc32:u32le | json`` frames until the bytes run
    out or a checksum fails. Shares NO code with repro.txn."""
    magic = b"REPROWAL1\x00"
    if len(data) < len(magic) or not data.startswith(magic):
        return 0
    commits = 0
    offset = len(magic)
    while offset + 8 <= len(data):
        length, crc = struct.unpack_from("<II", data, offset)
        payload = data[offset + 8:offset + 8 + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break
        record = json.loads(payload)
        if record.get("op") == "commit":
            commits += 1
        elif record.get("op") == "checkpoint":
            commits = record["commits"]  # commits folded into the snapshot
        offset += 8 + length
    return commits


# ----------------------------------------------------------- schedules

def generate_schedule(seed):
    """A deterministic workload: a list of (kind, payload) steps.

    kinds: ``txn`` (list of actions + commit/rollback flag),
    ``auto`` (one autocommit action), ``checkpoint``.
    Actions are generated against a symbolic catalog so they always
    succeed — crash points are the only failures in a crash schedule.
    """
    rng = random.Random(seed)
    tables = {}  # name -> {"rows": n, "indexed": set of columns}
    counter = [0]

    def fresh_name():
        counter[0] += 1
        return "T%d_%d" % (seed % 100, counter[0])

    def make_action(state):
        choices = []
        if len(state) < 4:
            choices.append("create_table")
        if state:
            choices += ["insert", "insert", "insert"]
            if any(len(t["indexed"]) < 2 for t in state.values()):
                choices.append("create_index")
            if any(t["rows"] for t in state.values()):
                choices.append("analyze")
            if len(state) > 1 and rng.random() < 0.5:
                choices.append("drop_table")
        kind = rng.choice(choices)
        if kind == "create_table":
            name = fresh_name()
            state[name] = {"rows": 0, "indexed": set()}
            return ("create_table", name)
        name = rng.choice(sorted(state))
        if kind == "insert":
            rows = [(rng.randint(0, 50), rng.randint(0, 9),
                     "s%d" % rng.randint(0, 20))
                    for _ in range(rng.randint(1, 6))]
            state[name]["rows"] += len(rows)
            return ("insert", name, rows)
        if kind == "create_index":
            open_cols = [c for c in ("a", "b")
                         if c not in state[name]["indexed"]]
            if not open_cols:
                return make_action(state)
            column = rng.choice(open_cols)
            state[name]["indexed"].add(column)
            return ("create_index", name, column,
                    rng.choice(["hash", "sorted"]))
        if kind == "analyze":
            return ("analyze", name if rng.random() < 0.7 else None)
        del state[name]
        return ("drop_table", name)

    steps = []
    has_rollback = False
    for _ in range(rng.randint(3, 7)):
        if rng.random() < 0.35:
            steps.append(("auto", make_action(tables)))
        else:
            commit = rng.random() >= 0.25
            if commit:
                actions = [make_action(tables)
                           for _ in range(rng.randint(1, 3))]
            else:
                has_rollback = True
                shadow = {
                    name: {"rows": t["rows"],
                           "indexed": set(t["indexed"])}
                    for name, t in tables.items()
                }
                actions = [make_action(shadow)
                           for _ in range(rng.randint(1, 3))]
            steps.append(("txn", actions, commit))
        if not has_rollback and rng.random() < 0.15:
            steps.append(("checkpoint",))
    return steps


def apply_action(db, action):
    kind = action[0]
    if kind == "create_table":
        db.create_table(action[1], COLUMNS)
    elif kind == "insert":
        db.insert(action[1], action[2])
    elif kind == "create_index":
        db.create_index(action[1], action[2], action[3])
    elif kind == "analyze":
        db.analyze(action[1])
    elif kind == "drop_table":
        db.drop_table(action[1])
    else:  # pragma: no cover - schedule generator bug
        raise AssertionError(kind)


def run_schedule(steps, durability, injector=None):
    """Run a schedule against a WAL-backed database; returns the
    storage and the committed batches in commit-issue order. With an
    armed injector the run ends at the simulated crash."""
    db = Database()
    db.configure(durability=durability)
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage, hook=injector))
    batches = []
    try:
        for step in steps:
            if step[0] == "auto":
                batches.append([step[1]])  # issue-order = commit-order
                apply_action(db, step[1])
            elif step[0] == "txn":
                _, actions, commit = step
                db.sql("BEGIN")
                for action in actions:
                    apply_action(db, action)
                if commit:
                    batches.append(actions)
                    db.sql("COMMIT")
                else:
                    db.sql("ROLLBACK")
            else:
                db.checkpoint()
    except SimulatedCrash:
        pass  # the process is dead; the in-memory db is abandoned
    return storage, batches


def oracle_db(batches, committed):
    """The shadow oracle: a fresh database that runs exactly the
    batches whose commits became durable, through the public API."""
    db = Database()
    for batch in batches[:committed]:
        for action in batch:
            apply_action(db, action)
    return db


# ------------------------------------------------------------ the sweep

def crash_points(seed, boundaries):
    """The boundaries to kill at for one schedule: all of them when few,
    otherwise a seeded sample — always including the first and last."""
    if boundaries <= KILLS_PER_SCHEDULE:
        return list(range(boundaries))
    rng = random.Random(seed * 7919 + 13)
    middle = rng.sample(range(1, boundaries - 1), KILLS_PER_SCHEDULE - 2)
    return sorted({0, boundaries - 1, *middle})


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_crash_schedule(seed):
    steps = generate_schedule(seed)
    durability = "commit" if seed % 2 else "lazy"
    probe = CrashInjector()  # dry run: count the kill points
    storage, batches = run_schedule(steps, durability, probe)
    assert probe.crashed is None

    # sanity: the no-crash log replays to exactly the full batch list
    final_image = storage.crash()  # everything, synced or not
    assert naive_committed_count(final_image) == len(batches)
    clean_db, report = recover(final_image)
    assert fingerprint(clean_db) == fingerprint(
        oracle_db(batches, len(batches)))
    assert report.total_commits == len(batches)

    rng = random.Random(seed * 31 + 7)
    for kill_at in crash_points(seed, probe.fired):
        injector = CrashInjector(kill_at=kill_at)
        storage, batches = run_schedule(steps, durability, injector)
        assert injector.crashed is not None, \
            "boundary %d never fired (seed %d)" % (kill_at, seed)
        survived = storage.crash(rng)  # seeded torn-tail disk image

        committed = naive_committed_count(survived)
        recovered, report = recover(survived)
        oracle = oracle_db(batches, committed)

        assert report.total_commits == committed, \
            "seed %d kill %d: recovery counted %d commits, naive %d" \
            % (seed, kill_at, report.total_commits, committed)
        assert fingerprint(recovered) == fingerprint(oracle), \
            "seed %d kill %d (%s, %d/%d commits durable): recovered " \
            "state diverges from the committed-only oracle" \
            % (seed, kill_at, durability, committed, len(batches))

        # the recovered database must be fully usable
        tables = recovered.catalog.tables()
        if tables:
            recovered.sql("SELECT a FROM %s WHERE a >= 0"
                          % tables[0].name)


# ------------------------------------------------- targeted regressions

def test_uncommitted_tail_discarded():
    """Ops written ahead of a commit record that never made it durable
    must vanish: redo without commit is not data."""
    db = Database()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("R", COLUMNS)
    db.insert("R", [(1, 1, "x")])
    # forge an uncommitted tail: op records with no commit marker
    from repro.txn import encode_record
    storage.append(encode_record(
        {"t": 99, "op": "insert", "table": "R", "rows": [[9, 9, "z"]]}))
    recovered, report = recover(storage.crash())
    assert report.discarded_records == 1
    assert recovered.catalog.table("R").rows == [(1, 1, "x")]


def test_torn_final_record_tolerated():
    db = Database()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("R", COLUMNS)
    db.insert("R", [(i, i, "s") for i in range(5)])
    whole = storage.crash()
    for cut in range(len(whole)):
        recovered, _ = recover(whole[:cut])
        # every prefix recovers SOME consistent committed state
        committed = naive_committed_count(whole[:cut])
        assert fingerprint(recovered) == fingerprint(oracle_db(
            [[("create_table", "R")],
             [("insert", "R", [(i, i, "s") for i in range(5)])]],
            committed))


def test_recovery_after_rollback_then_checkpoint_matches_content():
    """Rollback + checkpoint: the snapshot records the live (higher)
    version, so recovery matches the live database exactly — and the
    committed-only oracle on everything except the version counter."""
    db = Database()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("R", COLUMNS)
    db.insert("R", [(1, 1, "x")])
    db.sql("BEGIN")
    db.insert("R", [(2, 2, "y")])
    db.sql("ROLLBACK")
    db.checkpoint()
    db.insert("R", [(3, 3, "z")])
    recovered, report = recover(storage.crash())
    assert report.checkpoint_used
    assert fingerprint(recovered) == fingerprint(db)
    oracle = oracle_db(
        [[("create_table", "R")], [("insert", "R", [(1, 1, "x")])],
         [("insert", "R", [(3, 3, "z")])]], 3)
    live = state_dict(recovered, include_index_entries=True)
    shadow = state_dict(oracle, include_index_entries=True)
    assert live.pop("version") > shadow.pop("version")
    assert live == shadow


def test_recovered_db_can_keep_going_durably(tmp_path):
    """Recover, attach a fresh WAL, continue committing, crash again,
    recover again: work from both lives survives."""
    db = Database()
    db.configure(durability="commit")
    first = MemoryStorage()
    db.attach_wal(WriteAheadLog(first))
    db.create_table("R", COLUMNS)
    db.insert("R", [(1, 1, "a")])

    db2, _ = recover(first.crash())
    db2.configure(durability="commit")
    second = MemoryStorage()
    db2.attach_wal(WriteAheadLog(second))
    db2.checkpoint()  # fold the recovered state into the new log
    db2.insert("R", [(2, 2, "b")])

    db3, report = recover(second.crash())
    assert report.checkpoint_used
    assert sorted(db3.catalog.table("R").rows) == [(1, 1, "a"),
                                                   (2, 2, "b")]
    assert fingerprint(db3) == fingerprint(db2)


def test_recovery_emits_event():
    db = Database()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("R", COLUMNS)
    recovered, _ = recover(storage.crash(), log_events=True)
    events = recovered.event_log.events("recovery")
    assert len(events) == 1
    assert events[0]["commits_replayed"] == 1


def test_file_storage_end_to_end(tmp_path):
    """The same property through a real file: run, 'crash' by
    truncating the file, recover from the path."""
    path = str(tmp_path / "crash.wal")
    db = Database()
    db.configure(durability="commit", wal_path=path)
    db.create_table("R", COLUMNS)
    db.insert("R", [(i, i % 3, "r%d" % i) for i in range(10)])
    db.create_index("R", "a")
    db.analyze("R")
    db.txn._wal.close()

    with open(path, "rb") as handle:
        data = handle.read()
    torn = str(tmp_path / "torn.wal")
    with open(torn, "wb") as handle:
        handle.write(data[:-17])  # tear the final record

    recovered, report = recover(torn)
    assert report.torn_bytes > 0
    committed = naive_committed_count(data[:-17])
    assert report.total_commits == committed
    assert recovered.catalog.has_table("R")


# ----------------------------------------- crashes under concurrency

N_CONCURRENT_SCHEDULES = int(os.environ.get("CRASH_CONCURRENT_SCHEDULES",
                                            "60"))
K_COLUMNS = [("id", DataType.INT), ("v", DataType.INT)]


def naive_committed_ops(data: bytes):
    """Independent parse of the surviving bytes into the committed
    prefix: ``[(txn_id, [op_record, ...]), ...]`` in commit order,
    struct + zlib + json only (no checkpoint handling — the concurrent
    schedules never checkpoint)."""
    magic = b"REPROWAL1\x00"
    if len(data) < len(magic) or not data.startswith(magic):
        return []
    committed, pending = [], {}
    offset = len(magic)
    while offset + 8 <= len(data):
        length, crc = struct.unpack_from("<II", data, offset)
        payload = data[offset + 8:offset + 8 + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break
        record = json.loads(payload)
        if record.get("op") == "commit":
            committed.append((record["t"], pending.pop(record["t"], [])))
        else:
            pending.setdefault(record["t"], []).append(record)
        offset += 8 + length
    return committed


def apply_effects(committed):
    """The shadow oracle: apply the captured *effects* (concrete row
    values, not the original statements) through the public API of a
    fresh database. UPDATE shows up as delete_rows + insert; DELETE as
    delete_rows — replaying effects sidesteps re-running predicates
    whose answers depended on MVCC snapshots that no longer exist."""
    db = Database()
    for _txn_id, ops in committed:
        for record in ops:
            op = record["op"]
            if op == "insert":
                db.insert(record["table"],
                          [tuple(row) for row in record["rows"]])
            elif op == "delete_rows":
                db.delete_rows(record["table"],
                               [tuple(row) for row in record["rows"]])
            elif op == "create_table":
                db.create_table(record["name"],
                                [(name, DataType(dtype))
                                 for name, dtype, _w in record["columns"]])
            else:  # pragma: no cover - schedule generator bug
                raise AssertionError("unexpected op %r" % op)
    return db


def generate_concurrent_programs(rng, n_sessions):
    """Per-session transaction programs over the shared table K."""
    programs = []
    for session in range(n_sessions):
        program = []
        fresh = iter(range((session + 1) * 100, (session + 1) * 100 + 50))
        for _ in range(rng.randint(1, 3)):
            ops = []
            for _ in range(rng.randint(1, 4)):
                roll = rng.random()
                if roll < 0.4:
                    ops.append("INSERT INTO K VALUES (%d, %d)"
                               % (next(fresh), rng.randint(0, 99)))
                elif roll < 0.8:
                    ops.append("UPDATE K SET v = %d WHERE id = %d"
                               % (rng.randint(0, 99), rng.randint(0, 9)))
                else:
                    ops.append("DELETE FROM K WHERE id = %d"
                               % rng.randint(0, 9))
            program.append((ops, rng.random() < 0.8))
        programs.append(program)
    return programs


def run_concurrent_schedule(seed, durability, injector=None):
    """Interleave several sessions' transactions statement by statement
    against a WAL-backed database; SerializationErrors roll the losing
    transaction back (normal operation), a SimulatedCrash abandons the
    process. Returns (storage, commits that returned successfully)."""
    from repro import SerializationError

    rng = random.Random(seed)
    db = Database()
    db.configure(durability=durability)
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage, hook=injector))
    returned_commits = 0
    try:
        db.create_table("K", K_COLUMNS)
        db.insert("K", [(i, 0) for i in range(10)])
        returned_commits = 2  # the two autocommits above
        sessions = [db.new_session("s%d" % i)
                    for i in range(rng.randint(2, 3))]
        programs = generate_concurrent_programs(rng, len(sessions))
        # flatten to per-session statement streams
        streams = []
        for program in programs:
            stream = []
            for ops, commit in program:
                stream.append("BEGIN")
                stream.extend(ops)
                stream.append("COMMIT" if commit else "ROLLBACK")
            streams.append(stream)
        cursors = [0] * len(streams)
        wrote = [False] * len(streams)
        while True:
            ready = [i for i in range(len(streams))
                     if cursors[i] < len(streams[i])]
            if not ready:
                break
            at = rng.choice(ready)
            stmt = streams[at][cursors[at]]
            cursors[at] += 1
            try:
                result = sessions[at].sql(stmt)
                if stmt.startswith("INSERT"):
                    wrote[at] = True
                elif stmt.startswith(("UPDATE", "DELETE")):
                    wrote[at] = wrote[at] or result.rows[0][0] > 0
                elif stmt == "BEGIN":
                    wrote[at] = False
                elif stmt == "COMMIT" and wrote[at]:
                    # a no-effect txn writes no commit record
                    returned_commits += 1
            except SerializationError:
                sessions[at].sql("ROLLBACK")
                while cursors[at] < len(streams[at]) and \
                        streams[at][cursors[at]] != "BEGIN":
                    cursors[at] += 1
    except SimulatedCrash:
        pass  # the process is dead; the in-memory db is abandoned
    return storage, returned_commits


@pytest.mark.parametrize("seed", range(N_CONCURRENT_SCHEDULES))
def test_concurrent_crash_schedule(seed):
    """Crashes with several sessions' transactions in flight: recovery
    keeps exactly the committed prefix the independent parser sees,
    state-identical to replaying the captured effects."""
    durability = "commit" if seed % 2 else "lazy"
    probe = CrashInjector()
    storage, returned = run_concurrent_schedule(seed, durability, probe)
    assert probe.crashed is None

    # no-crash sanity: full image == effect-replay of every commit
    full = storage.crash()
    recovered, report = recover(full)
    committed = naive_committed_ops(full)
    assert report.total_commits == len(committed) == returned
    assert fingerprint(recovered) == fingerprint(apply_effects(committed))

    rng = random.Random(seed * 13 + 5)
    for kill_at in crash_points(seed, probe.fired):
        injector = CrashInjector(kill_at=kill_at)
        storage, returned = run_concurrent_schedule(
            seed, durability, injector)
        assert injector.crashed is not None, \
            "boundary %d never fired (seed %d)" % (kill_at, seed)
        survived = storage.crash(rng)
        committed = naive_committed_ops(survived)
        recovered, report = recover(survived)
        assert report.total_commits == len(committed), \
            "seed %d kill %d: recovery %d commits, naive %d" \
            % (seed, kill_at, report.total_commits, len(committed))
        assert fingerprint(recovered) == fingerprint(
            apply_effects(committed)), \
            "seed %d kill %d (%s): recovered state diverges from the " \
            "committed-effects oracle" % (seed, kill_at, durability)
        if durability == "commit":
            # every COMMIT that returned had fsynced: it must survive
            assert len(committed) >= returned, \
                "seed %d kill %d: a returned commit vanished" \
                % (seed, kill_at)


def test_crash_with_inflight_transactions_keeps_committed_only():
    """Redo is buffered until COMMIT, so transactions still in flight
    at the crash leave no trace at all; committed concurrent work
    survives completely."""
    db = Database()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("K", K_COLUMNS)
    db.insert("K", [(1, 10), (2, 20)])
    s1, s2 = db.new_session("s1"), db.new_session("s2")
    s1.sql("BEGIN")
    s1.sql("UPDATE K SET v = 11 WHERE id = 1")
    s2.sql("BEGIN")
    s2.sql("INSERT INTO K VALUES (3, 30)")
    s1.sql("COMMIT")
    # s2 still in flight -> crash
    recovered, report = recover(storage.crash())
    assert report.discarded_records == 0  # buffered, never appended
    assert sorted(recovered.catalog.table("K").rows) == [(1, 11), (2, 20)]


def test_crash_mid_commit_discards_torn_transaction():
    """A crash inside COMMIT's WAL append tears that transaction: its
    op records survive without the commit marker and recovery discards
    them, while the earlier concurrent commit stands."""
    db = Database()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("K", K_COLUMNS)
    db.insert("K", [(1, 10)])
    s1, s2 = db.new_session("s1"), db.new_session("s2")
    s1.sql("BEGIN")
    s1.sql("INSERT INTO K VALUES (2, 20)")
    s1.sql("COMMIT")
    s2.sql("BEGIN")
    s2.sql("INSERT INTO K VALUES (3, 30)")
    # tear s2's commit: the redo record goes out (boundaries 0/1 are
    # its append/appended), then the injector kills the commit-marker
    # append — op record on disk, no commit marker
    db.txn._wal.hook = CrashInjector(kill_at=2)
    with pytest.raises(SimulatedCrash):
        s2.sql("COMMIT")
    recovered, report = recover(storage.crash())
    assert report.discarded_records >= 1
    assert sorted(recovered.catalog.table("K").rows) == [(1, 10), (2, 20)]
