"""Crash-recovery property: recovery reproduces EXACTLY the committed
state, from every surviving log the crash schedule can produce.

Each seeded schedule derives a workload (autocommit statements, explicit
transactions — some rolled back — and occasional checkpoints) and runs
it three ways:

1. **dry run** — a counting :class:`CrashInjector` enumerates every WAL
   append/fsync/checkpoint boundary the schedule crosses;
2. **crash runs** — for a seeded set of those boundaries, the schedule
   re-runs with an armed injector that kills the "process" mid-write.
   The in-memory database is abandoned (that is the crash); the
   surviving disk image is the WAL's durable bytes plus a seeded prefix
   of the unsynced tail — so torn final records happen naturally;
3. **oracle** — an *independent* ~20-line WAL parser (struct + zlib +
   json only, sharing no code with the engine) counts the commit
   records in the surviving bytes. A shadow database then replays
   exactly that many committed batches through the public API.

The property: ``fingerprint(recovered) == fingerprint(oracle)`` — rows,
index contents, statistics objects, and catalog version, byte for byte.
Committed-and-durable work survives every crash point; uncommitted or
torn work vanishes completely.

Schedules containing rolled-back transactions skip checkpoints: a
rollback burns version numbers on the live database (monotonicity), so
a later checkpoint snapshot records a higher version than a
committed-only replay reaches. That combination is covered separately
by a targeted content-equality test below.

``CRASH_SCHEDULES`` (default 200) sizes the sweep; CI's dedicated
crash-recovery job runs a subset.
"""

import json
import os
import random
import struct
import zlib

import pytest

from repro import Database, DataType
from repro.txn import (
    CrashInjector,
    MemoryStorage,
    SimulatedCrash,
    WriteAheadLog,
    fingerprint,
    recover,
)
from repro.txn.state import state_dict

N_SCHEDULES = int(os.environ.get("CRASH_SCHEDULES", "200"))
#: crash points exercised per schedule (all of them when fewer exist)
KILLS_PER_SCHEDULE = 6

COLUMNS = [("a", DataType.INT), ("b", DataType.INT), ("c", DataType.STR)]


# --------------------------------------------------- independent parser

def naive_committed_count(data: bytes) -> int:
    """Count durable commits with a from-scratch parser: magic, then
    ``length:u32le | crc32:u32le | json`` frames until the bytes run
    out or a checksum fails. Shares NO code with repro.txn."""
    magic = b"REPROWAL1\x00"
    if len(data) < len(magic) or not data.startswith(magic):
        return 0
    commits = 0
    offset = len(magic)
    while offset + 8 <= len(data):
        length, crc = struct.unpack_from("<II", data, offset)
        payload = data[offset + 8:offset + 8 + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break
        record = json.loads(payload)
        if record.get("op") == "commit":
            commits += 1
        elif record.get("op") == "checkpoint":
            commits = record["commits"]  # commits folded into the snapshot
        offset += 8 + length
    return commits


# ----------------------------------------------------------- schedules

def generate_schedule(seed):
    """A deterministic workload: a list of (kind, payload) steps.

    kinds: ``txn`` (list of actions + commit/rollback flag),
    ``auto`` (one autocommit action), ``checkpoint``.
    Actions are generated against a symbolic catalog so they always
    succeed — crash points are the only failures in a crash schedule.
    """
    rng = random.Random(seed)
    tables = {}  # name -> {"rows": n, "indexed": set of columns}
    counter = [0]

    def fresh_name():
        counter[0] += 1
        return "T%d_%d" % (seed % 100, counter[0])

    def make_action(state):
        choices = []
        if len(state) < 4:
            choices.append("create_table")
        if state:
            choices += ["insert", "insert", "insert"]
            if any(len(t["indexed"]) < 2 for t in state.values()):
                choices.append("create_index")
            if any(t["rows"] for t in state.values()):
                choices.append("analyze")
            if len(state) > 1 and rng.random() < 0.5:
                choices.append("drop_table")
        kind = rng.choice(choices)
        if kind == "create_table":
            name = fresh_name()
            state[name] = {"rows": 0, "indexed": set()}
            return ("create_table", name)
        name = rng.choice(sorted(state))
        if kind == "insert":
            rows = [(rng.randint(0, 50), rng.randint(0, 9),
                     "s%d" % rng.randint(0, 20))
                    for _ in range(rng.randint(1, 6))]
            state[name]["rows"] += len(rows)
            return ("insert", name, rows)
        if kind == "create_index":
            open_cols = [c for c in ("a", "b")
                         if c not in state[name]["indexed"]]
            if not open_cols:
                return make_action(state)
            column = rng.choice(open_cols)
            state[name]["indexed"].add(column)
            return ("create_index", name, column,
                    rng.choice(["hash", "sorted"]))
        if kind == "analyze":
            return ("analyze", name if rng.random() < 0.7 else None)
        del state[name]
        return ("drop_table", name)

    steps = []
    has_rollback = False
    for _ in range(rng.randint(3, 7)):
        if rng.random() < 0.35:
            steps.append(("auto", make_action(tables)))
        else:
            commit = rng.random() >= 0.25
            if commit:
                actions = [make_action(tables)
                           for _ in range(rng.randint(1, 3))]
            else:
                has_rollback = True
                shadow = {
                    name: {"rows": t["rows"],
                           "indexed": set(t["indexed"])}
                    for name, t in tables.items()
                }
                actions = [make_action(shadow)
                           for _ in range(rng.randint(1, 3))]
            steps.append(("txn", actions, commit))
        if not has_rollback and rng.random() < 0.15:
            steps.append(("checkpoint",))
    return steps


def apply_action(db, action):
    kind = action[0]
    if kind == "create_table":
        db.create_table(action[1], COLUMNS)
    elif kind == "insert":
        db.insert(action[1], action[2])
    elif kind == "create_index":
        db.create_index(action[1], action[2], action[3])
    elif kind == "analyze":
        db.analyze(action[1])
    elif kind == "drop_table":
        db.drop_table(action[1])
    else:  # pragma: no cover - schedule generator bug
        raise AssertionError(kind)


def run_schedule(steps, durability, injector=None):
    """Run a schedule against a WAL-backed database; returns the
    storage and the committed batches in commit-issue order. With an
    armed injector the run ends at the simulated crash."""
    db = Database()
    db.configure(durability=durability)
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage, hook=injector))
    batches = []
    try:
        for step in steps:
            if step[0] == "auto":
                batches.append([step[1]])  # issue-order = commit-order
                apply_action(db, step[1])
            elif step[0] == "txn":
                _, actions, commit = step
                db.sql("BEGIN")
                for action in actions:
                    apply_action(db, action)
                if commit:
                    batches.append(actions)
                    db.sql("COMMIT")
                else:
                    db.sql("ROLLBACK")
            else:
                db.checkpoint()
    except SimulatedCrash:
        pass  # the process is dead; the in-memory db is abandoned
    return storage, batches


def oracle_db(batches, committed):
    """The shadow oracle: a fresh database that runs exactly the
    batches whose commits became durable, through the public API."""
    db = Database()
    for batch in batches[:committed]:
        for action in batch:
            apply_action(db, action)
    return db


# ------------------------------------------------------------ the sweep

def crash_points(seed, boundaries):
    """The boundaries to kill at for one schedule: all of them when few,
    otherwise a seeded sample — always including the first and last."""
    if boundaries <= KILLS_PER_SCHEDULE:
        return list(range(boundaries))
    rng = random.Random(seed * 7919 + 13)
    middle = rng.sample(range(1, boundaries - 1), KILLS_PER_SCHEDULE - 2)
    return sorted({0, boundaries - 1, *middle})


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_crash_schedule(seed):
    steps = generate_schedule(seed)
    durability = "commit" if seed % 2 else "lazy"
    probe = CrashInjector()  # dry run: count the kill points
    storage, batches = run_schedule(steps, durability, probe)
    assert probe.crashed is None

    # sanity: the no-crash log replays to exactly the full batch list
    final_image = storage.crash()  # everything, synced or not
    assert naive_committed_count(final_image) == len(batches)
    clean_db, report = recover(final_image)
    assert fingerprint(clean_db) == fingerprint(
        oracle_db(batches, len(batches)))
    assert report.total_commits == len(batches)

    rng = random.Random(seed * 31 + 7)
    for kill_at in crash_points(seed, probe.fired):
        injector = CrashInjector(kill_at=kill_at)
        storage, batches = run_schedule(steps, durability, injector)
        assert injector.crashed is not None, \
            "boundary %d never fired (seed %d)" % (kill_at, seed)
        survived = storage.crash(rng)  # seeded torn-tail disk image

        committed = naive_committed_count(survived)
        recovered, report = recover(survived)
        oracle = oracle_db(batches, committed)

        assert report.total_commits == committed, \
            "seed %d kill %d: recovery counted %d commits, naive %d" \
            % (seed, kill_at, report.total_commits, committed)
        assert fingerprint(recovered) == fingerprint(oracle), \
            "seed %d kill %d (%s, %d/%d commits durable): recovered " \
            "state diverges from the committed-only oracle" \
            % (seed, kill_at, durability, committed, len(batches))

        # the recovered database must be fully usable
        tables = recovered.catalog.tables()
        if tables:
            recovered.sql("SELECT a FROM %s WHERE a >= 0"
                          % tables[0].name)


# ------------------------------------------------- targeted regressions

def test_uncommitted_tail_discarded():
    """Ops written ahead of a commit record that never made it durable
    must vanish: redo without commit is not data."""
    db = Database()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("R", COLUMNS)
    db.insert("R", [(1, 1, "x")])
    # forge an uncommitted tail: op records with no commit marker
    from repro.txn import encode_record
    storage.append(encode_record(
        {"t": 99, "op": "insert", "table": "R", "rows": [[9, 9, "z"]]}))
    recovered, report = recover(storage.crash())
    assert report.discarded_records == 1
    assert recovered.catalog.table("R").rows == [(1, 1, "x")]


def test_torn_final_record_tolerated():
    db = Database()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("R", COLUMNS)
    db.insert("R", [(i, i, "s") for i in range(5)])
    whole = storage.crash()
    for cut in range(len(whole)):
        recovered, _ = recover(whole[:cut])
        # every prefix recovers SOME consistent committed state
        committed = naive_committed_count(whole[:cut])
        assert fingerprint(recovered) == fingerprint(oracle_db(
            [[("create_table", "R")],
             [("insert", "R", [(i, i, "s") for i in range(5)])]],
            committed))


def test_recovery_after_rollback_then_checkpoint_matches_content():
    """Rollback + checkpoint: the snapshot records the live (higher)
    version, so recovery matches the live database exactly — and the
    committed-only oracle on everything except the version counter."""
    db = Database()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("R", COLUMNS)
    db.insert("R", [(1, 1, "x")])
    db.sql("BEGIN")
    db.insert("R", [(2, 2, "y")])
    db.sql("ROLLBACK")
    db.checkpoint()
    db.insert("R", [(3, 3, "z")])
    recovered, report = recover(storage.crash())
    assert report.checkpoint_used
    assert fingerprint(recovered) == fingerprint(db)
    oracle = oracle_db(
        [[("create_table", "R")], [("insert", "R", [(1, 1, "x")])],
         [("insert", "R", [(3, 3, "z")])]], 3)
    live = state_dict(recovered, include_index_entries=True)
    shadow = state_dict(oracle, include_index_entries=True)
    assert live.pop("version") > shadow.pop("version")
    assert live == shadow


def test_recovered_db_can_keep_going_durably(tmp_path):
    """Recover, attach a fresh WAL, continue committing, crash again,
    recover again: work from both lives survives."""
    db = Database()
    db.configure(durability="commit")
    first = MemoryStorage()
    db.attach_wal(WriteAheadLog(first))
    db.create_table("R", COLUMNS)
    db.insert("R", [(1, 1, "a")])

    db2, _ = recover(first.crash())
    db2.configure(durability="commit")
    second = MemoryStorage()
    db2.attach_wal(WriteAheadLog(second))
    db2.checkpoint()  # fold the recovered state into the new log
    db2.insert("R", [(2, 2, "b")])

    db3, report = recover(second.crash())
    assert report.checkpoint_used
    assert sorted(db3.catalog.table("R").rows) == [(1, 1, "a"),
                                                   (2, 2, "b")]
    assert fingerprint(db3) == fingerprint(db2)


def test_recovery_emits_event():
    db = Database()
    db.configure(durability="commit")
    storage = MemoryStorage()
    db.attach_wal(WriteAheadLog(storage))
    db.create_table("R", COLUMNS)
    recovered, _ = recover(storage.crash(), log_events=True)
    events = recovered.event_log.events("recovery")
    assert len(events) == 1
    assert events[0]["commits_replayed"] == 1


def test_file_storage_end_to_end(tmp_path):
    """The same property through a real file: run, 'crash' by
    truncating the file, recover from the path."""
    path = str(tmp_path / "crash.wal")
    db = Database()
    db.configure(durability="commit", wal_path=path)
    db.create_table("R", COLUMNS)
    db.insert("R", [(i, i % 3, "r%d" % i) for i in range(10)])
    db.create_index("R", "a")
    db.analyze("R")
    db.txn._wal.close()

    with open(path, "rb") as handle:
        data = handle.read()
    torn = str(tmp_path / "torn.wal")
    with open(torn, "wb") as handle:
        handle.write(data[:-17])  # tear the final record

    recovered, report = recover(torn)
    assert report.torn_bytes > 0
    committed = naive_committed_count(data[:-17])
    assert report.total_commits == committed
    assert recovered.catalog.has_table("R")
