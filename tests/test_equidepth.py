"""Tests for equi-depth histograms and their estimation advantage."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DataType
from repro.stats.histogram import EquiDepthHistogram, EquiWidthHistogram


class TestEquiDepthBasics:
    def test_buckets_roughly_equal_counts(self):
        hist = EquiDepthHistogram.build(list(range(1000)), num_buckets=10)
        counts = [b.count for b in hist.buckets]
        assert max(counts) - min(counts) <= 2

    def test_single_value(self):
        hist = EquiDepthHistogram.build([7] * 50)
        assert hist.selectivity_eq(7) == pytest.approx(1.0)

    def test_uniform_range_estimates(self):
        hist = EquiDepthHistogram.build(list(range(1000)), num_buckets=20)
        assert hist.selectivity_lt(250) == pytest.approx(0.25, abs=0.03)
        assert hist.selectivity_range(100, 300) == pytest.approx(
            0.2, abs=0.04)

    def test_covers_full_span(self):
        values = [5, 9, 100, 42, 7]
        hist = EquiDepthHistogram.build(values)
        assert hist.low == 5.0
        assert hist.high == 100.0
        assert hist.selectivity_range(None, None) == pytest.approx(1.0)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=300),
           st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_selectivities_bounded(self, values, probe):
        hist = EquiDepthHistogram.build(values)
        for sel in (hist.selectivity_eq(probe),
                    hist.selectivity_lt(probe),
                    hist.selectivity_gt(probe)):
            assert 0.0 <= sel <= 1.0

    @given(st.lists(st.integers(0, 100), min_size=2, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_total_mass_preserved(self, values):
        hist = EquiDepthHistogram.build(values)
        assert sum(b.count for b in hist.buckets) == len(values)


class TestSkewAdvantage:
    def make_skewed(self):
        """90% of mass at small values, a long thin tail to 1e6."""
        rng = random.Random(3)
        values = [rng.randint(1, 100) for _ in range(9000)]
        values += [rng.randint(100_000, 1_000_000) for _ in range(1000)]
        return values

    def true_selectivity(self, values, cutoff):
        return sum(1 for v in values if v < cutoff) / len(values)

    def test_equidepth_beats_equiwidth_on_skew(self):
        values = self.make_skewed()
        cutoff = 50
        truth = self.true_selectivity(values, cutoff)
        depth = EquiDepthHistogram.build(values, 20).selectivity_lt(cutoff)
        width = EquiWidthHistogram.build(values, 20).selectivity_lt(cutoff)
        assert abs(depth - truth) < abs(width - truth)
        assert depth == pytest.approx(truth, abs=0.05)


class TestCatalogIntegration:
    def make_db(self, kind):
        db = Database()
        db.create_table("T", [("x", DataType.INT)])
        rng = random.Random(5)
        db.insert("T", [
            (rng.randint(1, 50) if rng.random() < 0.9
             else rng.randint(10_000, 99_999),)
            for _ in range(2000)
        ])
        db.catalog.analyze(histogram_kind=kind)
        return db

    def test_analyze_kind_switch(self):
        db = self.make_db("equi_width")
        stats = db.catalog.stats("T")
        assert isinstance(stats.column("x").histogram, EquiWidthHistogram)
        db.catalog.analyze(histogram_kind="equi_depth")
        stats = db.catalog.stats("T")
        assert isinstance(stats.column("x").histogram, EquiDepthHistogram)

    def test_unknown_kind_rejected(self):
        from repro.errors import CatalogError
        db = self.make_db("equi_depth")
        with pytest.raises(CatalogError):
            db.catalog.analyze(histogram_kind="v-optimal")

    def test_row_estimate_on_skewed_predicate(self):
        db = self.make_db("equi_depth")
        plan, _ = db.plan("SELECT x FROM T WHERE x < 25")
        true_rows = len(db.sql("SELECT x FROM T WHERE x < 25").rows)
        assert plan.est_rows == pytest.approx(true_rows, rel=0.25)


class TestClusteredOrderExploited:
    def test_merge_join_without_sorts_on_clustered_tables(self):
        from repro import OptimizerConfig
        from repro.optimizer.plans import SortNode
        from tests.test_planner_basic import find_nodes

        db = Database()
        db.create_table("A", [("k", DataType.INT), ("v", DataType.INT)])
        db.create_table("B", [("k", DataType.INT), ("w", DataType.INT)])
        db.insert("A", [(i % 40, i) for i in range(800)])
        db.insert("B", [(i % 40, i) for i in range(800)])
        db.catalog.table("A").cluster_by("k")
        db.catalog.table("B").cluster_by("k")
        db.analyze()
        config = OptimizerConfig(
            enable_hash_join=False, enable_nested_loops=False,
            enable_index_nested_loops=False, enable_filter_join=False,
            enable_bloom_filter=False,
        )
        plan, _ = db.plan("SELECT A.v FROM A, B WHERE A.k = B.k", config)
        assert not find_nodes(plan, SortNode)
        result = db.run_plan(plan)
        assert len(result.rows) == 800 * 20
