"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text) if t.kind != "eof"]


class TestTokenize:
    def test_keywords_uppercased(self):
        assert kinds("select from") == [("keyword", "SELECT"),
                                        ("keyword", "FROM")]

    def test_identifiers_keep_case(self):
        assert kinds("Emp dEpT") == [("ident", "Emp"), ("ident", "dEpT")]

    def test_integer_and_float(self):
        assert kinds("42 3.14") == [("number", "42"), ("number", "3.14")]

    def test_qualified_name_not_a_float(self):
        assert kinds("E.did") == [("ident", "E"), ("symbol", "."),
                                  ("ident", "did")]

    def test_number_then_qualifier_dot(self):
        # "1.x" must lex as number 1, dot, ident x
        assert kinds("1.x") == [("number", "1"), ("symbol", "."),
                                ("ident", "x")]

    def test_string_literal(self):
        assert kinds("'hello'") == [("string", "hello")]

    def test_string_with_escaped_quote(self):
        assert kinds("'it''s'") == [("string", "it's")]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_two_char_symbols(self):
        assert kinds("<= >= != <>") == [
            ("symbol", "<="), ("symbol", ">="),
            ("symbol", "!="), ("symbol", "<>"),
        ]

    def test_line_comment_skipped(self):
        assert kinds("select -- comment\n from") == [
            ("keyword", "SELECT"), ("keyword", "FROM"),
        ]

    def test_illegal_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind == "eof"
        assert tokenize("select")[-1].kind == "eof"

    def test_underscore_identifiers(self):
        assert kinds("_tmp foo_bar") == [("ident", "_tmp"),
                                         ("ident", "foo_bar")]
