"""Tests for `?` placeholders in prepared statements.

Arity and type problems must surface as ExecutionError-family
exceptions (ParameterError), never as raw Python crashes; and the same
plan object must be reused across different parameter values (the
id-stable cache hit that makes preparation worth anything).
"""

import pytest

from repro import (
    Database,
    DataType,
    ExecutionError,
    OptimizerConfig,
    ParameterError,
)


@pytest.fixture
def db():
    db = Database()
    db.create_table("T", [("a", DataType.INT), ("b", DataType.INT),
                          ("s", DataType.STR)])
    db.insert("T", [(i, i * 10, "row%d" % i) for i in range(10)])
    db.analyze()
    return db


class TestArity:
    def test_too_few_parameters(self, db):
        handle = db.prepare("SELECT T.a FROM T WHERE T.a = ? AND T.b = ?")
        with pytest.raises(ParameterError, match="2 parameter"):
            handle.execute([1])

    def test_too_many_parameters(self, db):
        handle = db.prepare("SELECT T.a FROM T WHERE T.a = ?")
        with pytest.raises(ParameterError, match="got 3"):
            handle.execute([1, 2, 3])

    def test_parameterless_statement_rejects_values(self, db):
        handle = db.prepare("SELECT T.a FROM T")
        with pytest.raises(ParameterError):
            handle.execute([1])

    def test_parameter_errors_are_execution_errors(self, db):
        handle = db.prepare("SELECT T.a FROM T WHERE T.a = ?")
        with pytest.raises(ExecutionError):
            handle.execute([])

    def test_executing_parameterized_sql_without_prepare_fails_cleanly(
            self, db):
        # the plain (uncached) path binds the parameter but nothing
        # supplies a value: an ExecutionError, not a crash
        with pytest.raises(ExecutionError, match="not bound"):
            db.sql("SELECT T.a FROM T WHERE T.a = ?")

    def test_shell_cached_path_demands_prepare(self, db):
        with pytest.raises(ParameterError, match="prepare"):
            db.sql("SELECT T.a FROM T WHERE T.a = ?", use_cache=True)


class TestTypes:
    def test_unsupported_value_type_rejected(self, db):
        handle = db.prepare("SELECT T.a FROM T WHERE T.a = ?")
        with pytest.raises(ParameterError, match="unsupported value type"):
            handle.execute([object()])
        with pytest.raises(ParameterError):
            handle.execute([[1, 2]])

    def test_type_mismatch_in_comparison_is_execution_error(self, db):
        handle = db.prepare("SELECT T.a FROM T WHERE T.a < ?")
        with pytest.raises(ExecutionError, match="cannot compare"):
            handle.execute(["not a number"])

    def test_type_mismatch_in_arithmetic_is_execution_error(self, db):
        handle = db.prepare("SELECT T.a FROM T WHERE T.b + ? > 5")
        with pytest.raises(ExecutionError, match="cannot apply"):
            handle.execute(["oops"])

    def test_equality_across_types_is_just_false(self, db):
        # SQL-style: = against a different type matches nothing
        handle = db.prepare("SELECT T.a FROM T WHERE T.a = ?")
        assert handle.execute(["3"]).rows == []

    def test_null_parameter_uses_three_valued_logic(self, db):
        handle = db.prepare("SELECT T.a FROM T WHERE T.a = ?")
        assert handle.execute([None]).rows == []

    def test_string_parameter(self, db):
        handle = db.prepare("SELECT T.a FROM T WHERE T.s = ?")
        assert handle.execute(["row4"]).rows == [(4,)]

    def test_insert_parameter_type_mismatch(self, db):
        handle = db.prepare("INSERT INTO T VALUES (?, ?, ?)")
        with pytest.raises(ParameterError):
            handle.execute([1, 2, object()])


class TestPlanReuse:
    def test_same_plan_object_across_parameter_values(self, db):
        handle = db.prepare("SELECT T.a, T.b FROM T WHERE T.a = ?")
        plan_id = id(handle.plan)
        for value in (0, 3, 7, 9, 123):
            result = handle.execute([value])
            assert result.cached_plan is True
            assert id(result.plan) == plan_id
        assert db.cache_stats()["misses"] == 1

    def test_each_binding_gets_its_own_answer(self, db):
        handle = db.prepare("SELECT T.b FROM T WHERE T.a = ?")
        assert handle.execute([2]).rows == [(20,)]
        assert handle.execute([5]).rows == [(50,)]
        assert handle.execute([99]).rows == []

    def test_parameters_in_in_list(self, db):
        handle = db.prepare("SELECT T.a FROM T WHERE T.a IN (?, ?, 9)")
        assert sorted(handle.execute([1, 4]).rows) == [(1,), (4,), (9,)]
        assert sorted(handle.execute([0, 0]).rows) == [(0,), (9,)]

    def test_not_in_with_parameters(self, db):
        handle = db.prepare(
            "SELECT T.a FROM T WHERE T.a > 6 AND T.a NOT IN (?, ?)"
        )
        assert sorted(handle.execute([7, 9]).rows) == [(8,)]

    def test_parameters_in_select_list_and_arithmetic(self, db):
        handle = db.prepare("SELECT T.a + ? AS shifted FROM T WHERE T.a < 2")
        assert sorted(handle.execute([100]).rows) == [(100,), (101,)]
        assert sorted(handle.execute([0]).rows) == [(0,), (1,)]

    def test_parameters_in_having(self, db):
        handle = db.prepare(
            "SELECT T.a, COUNT(*) AS n FROM T GROUP BY T.a "
            "HAVING COUNT(*) > ?"
        )
        assert len(handle.execute([0]).rows) == 10
        assert handle.execute([1]).rows == []

    def test_prepared_insert_roundtrip(self, db):
        handle = db.prepare("INSERT INTO T VALUES (?, ?, ?)")
        handle.execute([100, 1000, "hundred"])
        handle.execute([101, 1010, "hundred-one"])
        rows = db.sql("SELECT T.a FROM T WHERE T.b >= 1000").rows
        assert sorted(rows) == [(100,), (101,)]

    def test_parameters_rejected_in_unsupported_statements(self, db):
        with pytest.raises(ParameterError, match="only supported"):
            db.prepare("CREATE TABLE C AS SELECT T.a FROM T WHERE T.a = ?")

    def test_per_config_plans_are_independent(self, db):
        no_fj = OptimizerConfig(enable_filter_join=False,
                                enable_bloom_filter=False)
        plain = db.prepare("SELECT T.a FROM T WHERE T.a = ?")
        forced = db.prepare("SELECT T.a FROM T WHERE T.a = ?",
                            config=no_fj)
        assert plain.plan is not forced.plan
        assert plain.execute([1]).rows == forced.execute([1]).rows
