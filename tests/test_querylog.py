"""Serving-layer telemetry: the query log, its histograms, and the
slow-query capture path.

Unit coverage for the ring-buffer semantics and the latency summaries,
a thread hammer proving exact counts under concurrent recording (the
log is shared by every server connection), and the database-level
telemetry wiring: ``Options(telemetry=True)`` records every statement,
a statement over ``slow_query_seconds`` carries its full plan text and
span trace, and telemetry off records nothing at all.
"""

import threading

from repro import Database, DataType, Options
from repro.obs.querylog import LATENCY_BUCKETS, QueryLog

N_THREADS = 8
N_ITER = 400


def hammer(worker, n_threads=N_THREADS):
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestQueryLogUnit:
    def test_record_and_recent_newest_first(self):
        log = QueryLog(window=4)
        for i in range(6):
            log.record(statement="q%d" % i, kind="select",
                       seconds=0.001 * i, rows=i, cost=1.0)
        assert log.recorded == 6
        assert len(log) == 4  # ring buffer dropped the oldest two
        recent = log.recent()
        assert [e.statement for e in recent] == ["q5", "q4", "q3", "q2"]

    def test_slow_entries_survive_fast_churn(self):
        log = QueryLog(window=4, slow_window=8)
        log.record(statement="slow one", kind="select", seconds=0.9,
                   rows=1, cost=1.0, slow=True, plan="Plan text",
                   trace={"spans": []})
        for i in range(20):
            log.record(statement="fast%d" % i, kind="select",
                       seconds=0.0001, rows=1, cost=1.0)
        # the slow entry aged out of the main window but not the slow one
        assert all(e.statement != "slow one" for e in log.recent())
        slowest = log.slowest()
        assert slowest[0].statement == "slow one"
        assert slowest[0].plan == "Plan text"
        assert slowest[0].trace == {"spans": []}

    def test_slowest_sorted_by_seconds(self):
        log = QueryLog()
        for i, seconds in enumerate([0.2, 0.5, 0.1]):
            log.record(statement="q%d" % i, kind="select",
                       seconds=seconds, rows=0, cost=0.0, slow=True)
        assert [e.seconds for e in log.slowest()] == [0.5, 0.2, 0.1]

    def test_latency_summary_per_kind(self):
        log = QueryLog()
        log.record(statement="a", kind="select", seconds=0.002,
                   rows=0, cost=0.0)
        log.record(statement="b", kind="insert", seconds=0.3,
                   rows=0, cost=0.0)
        summary = log.latency_summary()
        assert sorted(summary) == ["insert", "select"]
        assert summary["select"]["count"] == 1
        assert summary["select"]["p50"] <= summary["insert"]["p50"]

    def test_entry_as_dict_omits_absent_plan(self):
        log = QueryLog()
        entry = log.record(statement="q", kind="select", seconds=0.1,
                           rows=2, cost=3.0)
        data = entry.as_dict()
        assert "plan" not in data and "trace" not in data
        assert data["rows"] == 2

    def test_snapshot_shape(self):
        log = QueryLog()
        log.record(statement="q", kind="select", seconds=0.5,
                   rows=1, cost=1.0, slow=True, plan="P")
        snap = log.snapshot()
        assert snap["recorded"] == 1
        assert snap["slow_recorded"] == 1
        assert snap["slow"][0]["plan"] == "P"
        assert "select" in snap["latency"]

    def test_clear(self):
        log = QueryLog()
        log.record(statement="q", kind="select", seconds=0.1,
                   rows=0, cost=0.0, slow=True)
        log.clear()
        assert log.recorded == 0 and log.slow_recorded == 0
        assert not log.recent() and not log.slowest()
        assert log.latency_summary() == {}

    def test_render_empty_and_filled(self):
        log = QueryLog()
        assert "no slow queries" in log.render()
        log.record(statement="SELECT  1", kind="select", seconds=0.2,
                   rows=1, cost=1.0, slow=True, session="c1")
        text = log.render()
        assert "SELECT 1" in text and "c1" in text

    def test_buckets_are_sorted(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)


class TestQueryLogThreadSafety:
    def test_concurrent_recording_exact_counts(self):
        log = QueryLog(window=64, slow_window=16)

        def worker(index):
            for i in range(N_ITER):
                log.record(statement="q", kind="k%d" % (index % 2),
                           seconds=0.001, rows=1, cost=1.0,
                           slow=(i % 10 == 0))

        hammer(worker)
        total = N_THREADS * N_ITER
        assert log.recorded == total
        assert log.slow_recorded == total // 10
        assert len(log) == 64  # window intact
        summary = log.latency_summary()
        assert summary["k0"]["count"] + summary["k1"]["count"] == total

    def test_concurrent_readers_and_writers(self):
        log = QueryLog(window=32)
        stop = threading.Event()

        def writer(index):
            for i in range(N_ITER):
                log.record(statement="q%d" % i, kind="select",
                           seconds=0.001, rows=1, cost=1.0,
                           slow=(i % 7 == 0))

        def reader():
            while not stop.is_set():
                log.recent(10)
                log.slowest(5)
                log.latency_summary()
                log.snapshot()

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers:
            thread.start()
        try:
            hammer(writer)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert log.recorded == N_THREADS * N_ITER


class TestDatabaseTelemetry:
    def make_db(self):
        db = Database()
        db.create_table("t", [("id", DataType.INT)])
        db.insert("t", [(i,) for i in range(50)])
        db.analyze()
        return db

    def test_telemetry_off_records_nothing(self):
        db = self.make_db()
        db.sql("SELECT id FROM t")
        db.sql("SELECT id FROM t", options=Options(trace=True))
        assert db.querylog.recorded == 0
        assert "latency" not in db.metrics()

    def test_telemetry_records_every_statement(self):
        db = self.make_db()
        with db.session(telemetry=True):
            db.sql("SELECT id FROM t WHERE id < 5")
            db.sql("INSERT INTO t VALUES (99)")
        assert db.querylog.recorded == 2
        kinds = {e.kind for e in db.querylog.recent()}
        assert kinds == {"select", "insert"}
        assert "latency" in db.metrics()

    def test_slow_query_captures_plan_and_trace(self):
        db = self.make_db()
        # a zero threshold makes every statement "slow"
        opts = Options(telemetry=True, slow_query_seconds=1e-9,
                       trace=True)
        db.sql("SELECT id FROM t WHERE id < 5", options=opts)
        slow = db.querylog.slowest()
        assert len(slow) == 1
        entry = slow[0]
        assert entry.slow
        assert entry.plan and "SeqScan" in entry.plan
        assert entry.trace and entry.trace["root"]
        assert db.metrics()["slow_queries_total"]["by_label"][
            "select"] == 1.0

    def test_fast_query_not_marked_slow(self):
        db = self.make_db()
        opts = Options(telemetry=True, slow_query_seconds=60.0)
        db.sql("SELECT id FROM t", options=opts)
        assert db.querylog.recorded == 1
        assert db.querylog.slow_recorded == 0
        assert not db.querylog.slowest()

    def test_slow_query_seconds_validation(self):
        try:
            Options(slow_query_seconds=0.0)
        except ValueError:
            pass
        else:
            raise AssertionError("slow_query_seconds=0 should reject")

    def test_statement_text_normalized_and_capped(self):
        db = self.make_db()
        sql = "SELECT   id\nFROM    t   WHERE id <" + " 5"
        db.sql(sql, options=Options(telemetry=True))
        entry = db.querylog.recent()[0]
        assert "\n" not in entry.statement
        assert "  " not in entry.statement
