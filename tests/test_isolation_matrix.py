"""The isolation-anomaly matrix: what snapshot isolation prevents and
what it permits, each pinned by a readable two-session script.

========================  ==========  =================================
anomaly                   under SI    test
========================  ==========  =================================
dirty read                prevented   test_dirty_read_prevented
dirty write               prevented   test_dirty_write_prevented
non-repeatable read       prevented   test_non_repeatable_read_prevented
phantom read              prevented   test_phantom_prevented
lost update               prevented   test_lost_update_prevented
read skew                 prevented   test_read_skew_prevented
write skew                PERMITTED   test_write_skew_permitted
read-committed nrr        PERMITTED   test_read_committed_permits_nrr
========================  ==========  =================================

Write skew is the textbook gap between snapshot isolation and full
serializability (Berenson et al., "A Critique of ANSI SQL Isolation
Levels"): two transactions read overlapping data and write *disjoint*
rows, so first-committer-wins never fires. The test pins it as
PERMITTED on purpose — if the engine ever starts refusing it, that is
a behavior change to document, not silently absorb.
"""

import pytest

from repro import Database, DataType, Options, SerializationError


def make_db():
    db = Database()
    db.create_table("acct", [("id", DataType.INT),
                             ("owner", DataType.STR),
                             ("bal", DataType.INT)])
    db.insert("acct", [(1, "alice", 100), (2, "alice", 100),
                       (3, "bob", 50)])
    return db


def balances(session):
    return dict(
        (i, b) for i, b in
        session.sql("SELECT id, bal FROM acct").rows
    )


class TestPrevented:
    def test_dirty_read_prevented(self):
        """T2 never sees T1's uncommitted write."""
        db = make_db()
        t1, t2 = db.new_session(), db.new_session()
        t1.sql("BEGIN")
        t1.sql("UPDATE acct SET bal = 0 WHERE id = 1")
        assert balances(t2)[1] == 100, "uncommitted write leaked"
        t1.sql("ROLLBACK")
        assert balances(t2)[1] == 100

    def test_dirty_write_prevented(self):
        """T2 cannot overwrite T1's uncommitted write."""
        db = make_db()
        t1, t2 = db.new_session(), db.new_session()
        t1.sql("BEGIN")
        t2.sql("BEGIN")
        t1.sql("UPDATE acct SET bal = 10 WHERE id = 1")
        with pytest.raises(SerializationError):
            t2.sql("UPDATE acct SET bal = 20 WHERE id = 1")
        t2.sql("ROLLBACK")
        t1.sql("COMMIT")
        assert balances(db.new_session())[1] == 10

    def test_non_repeatable_read_prevented(self):
        """T1 reads the same row twice; a concurrent committed update
        must not change what T1 sees in between."""
        db = make_db()
        t1, t2 = db.new_session(), db.new_session()
        t1.sql("BEGIN")
        first = balances(t1)[1]
        t2.sql("UPDATE acct SET bal = 999 WHERE id = 1")  # autocommit
        second = balances(t1)[1]
        t1.sql("COMMIT")
        assert first == second == 100

    def test_phantom_prevented(self):
        """T1's predicate query returns the same rows twice even though
        T2 committed a new matching row in between (SI gives full
        snapshot semantics, not just row-level stability)."""
        db = make_db()
        t1, t2 = db.new_session(), db.new_session()
        t1.sql("BEGIN")
        q = "SELECT id FROM acct WHERE owner = 'alice'"
        first = sorted(t1.sql(q).rows)
        t2.sql("INSERT INTO acct VALUES (4, 'alice', 70)")
        second = sorted(t1.sql(q).rows)
        t1.sql("COMMIT")
        assert first == second == [(1,), (2,)]
        assert sorted(t1.sql(q).rows) == [(1,), (2,), (4,)]

    def test_lost_update_prevented(self):
        """Classic read-modify-write race: both read bal=100, both try
        to add 10. Without protection the final balance is 110; under
        first-committer-wins the loser gets a SerializationError and a
        retry lands on 120."""
        db = make_db()
        t1, t2 = db.new_session(), db.new_session()
        t1.sql("BEGIN")
        t2.sql("BEGIN")
        assert balances(t1)[1] == 100
        assert balances(t2)[1] == 100
        t1.sql("UPDATE acct SET bal = bal + 10 WHERE id = 1")
        with pytest.raises(SerializationError):
            t2.sql("UPDATE acct SET bal = bal + 10 WHERE id = 1")
        t2.sql("ROLLBACK")
        t1.sql("COMMIT")
        # the standard remedy: retry on a fresh snapshot
        t2.sql("BEGIN")
        t2.sql("UPDATE acct SET bal = bal + 10 WHERE id = 1")
        t2.sql("COMMIT")
        assert balances(db.new_session())[1] == 120

    def test_read_skew_prevented(self):
        """T1 reads account 1, T2 moves money 1->2 and commits, T1
        reads account 2: the two reads must come from one snapshot
        (sum constant), never half-old half-new."""
        db = make_db()
        t1, t2 = db.new_session(), db.new_session()
        t1.sql("BEGIN")
        bal1 = balances(t1)[1]
        t2.sql("BEGIN")
        t2.sql("UPDATE acct SET bal = bal - 40 WHERE id = 1")
        t2.sql("UPDATE acct SET bal = bal + 40 WHERE id = 2")
        t2.sql("COMMIT")
        bal2 = balances(t1)[2]
        t1.sql("COMMIT")
        assert bal1 + bal2 == 200, "read skew: inconsistent snapshot"


class TestPermitted:
    def test_write_skew_permitted(self):
        """Both transactions check SUM(alice) >= 120 and each withdraws
        80 from a *different* account. Serially the second withdrawal
        would be refused; under SI both commit (disjoint write sets)
        and the invariant breaks. Pinned as PERMITTED — this is the
        documented SI/serializability gap."""
        db = make_db()
        t1, t2 = db.new_session(), db.new_session()
        t1.sql("BEGIN")
        t2.sql("BEGIN")
        q = "SELECT SUM(bal) AS s FROM acct WHERE owner = 'alice'"
        assert t1.sql(q).rows[0][0] == 200
        assert t2.sql(q).rows[0][0] == 200
        t1.sql("UPDATE acct SET bal = bal - 80 WHERE id = 1")
        t2.sql("UPDATE acct SET bal = bal - 80 WHERE id = 2")  # no conflict
        t1.sql("COMMIT")
        t2.sql("COMMIT")
        final = db.new_session().sql(q).rows[0][0]
        assert final == 40, \
            "write skew outcome changed: engine now blocks it?"

    def test_read_committed_permits_nrr(self):
        """Under isolation='read-committed' the view refreshes per
        statement, so a non-repeatable read is expected behavior."""
        db = make_db()
        t1, t2 = db.new_session(), db.new_session()
        t1.sql("BEGIN", options=Options(isolation="read-committed"))
        first = balances(t1)[1]
        t2.sql("UPDATE acct SET bal = 777 WHERE id = 1")
        second = balances(t1)[1]
        t1.sql("COMMIT")
        assert (first, second) == (100, 777)
