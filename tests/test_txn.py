"""Transaction semantics: atomicity, savepoints, aborted state, and the
plan-cache/catalog-version interplay.

The contracts under test:

- **statement-level atomicity** — a failing statement (bad row mid
  ``INSERT``, failing CTAS query) leaves no partial state, inside or
  outside an explicit transaction;
- **transaction-level atomicity** — ``ROLLBACK`` restores rows, index
  contents, statistics (including lazy planner-triggered rebuilds), and
  catalog *content* exactly;
- **monotonic versions** — rollback never reuses a version number, so a
  plan cached inside an aborted transaction can never be served;
- **PostgreSQL error semantics** — an error inside ``BEGIN`` aborts the
  transaction; every statement then raises ``TransactionAborted`` until
  ``ROLLBACK``; ``COMMIT`` of an aborted transaction rolls back.
"""

import pytest

from repro import (
    BindError,
    Database,
    DataType,
    ReproError,
    TransactionAborted,
    TransactionError,
)
from repro.txn.state import state_dict


def make_db(**configure):
    db = Database()
    if configure:
        db.configure(**configure)
    db.create_table("Emp", [("name", DataType.STR),
                            ("dept", DataType.INT),
                            ("sal", DataType.INT)])
    db.insert("Emp", [("e%d" % i, i % 3, 100 * i) for i in range(12)])
    db.create_index("Emp", "dept")
    db.analyze()
    return db


def snapshot(db):
    return state_dict(db, include_index_entries=True)


def content(db):
    """Logical state minus the version counter (which is deliberately
    NOT restored by rollback)."""
    state = snapshot(db)
    state.pop("version")
    return state


# ----------------------------------------------------- statement atomicity

class TestStatementAtomicity:
    def test_bad_row_mid_batch_inserts_nothing(self):
        db = make_db()
        before = snapshot(db)
        rows = [("ok", 1, 1), ("also-ok", 2, 2), ("bad", "not-int", 3)]
        with pytest.raises(ReproError):
            db.insert("Emp", rows)
        assert snapshot(db) == before  # rows AND index contents AND version

    def test_bad_row_mid_batch_inside_explicit_txn(self):
        db = make_db()
        db.sql("BEGIN")
        db.insert("Emp", [("pre", 0, 0)])
        with pytest.raises(ReproError):
            db.insert("Emp", [("x", 1, 1), ("bad", None, "nope")])
        db.txn.clear_aborted()  # inspect mid-transaction state
        names = [r[0] for r in db.catalog.table("Emp").rows]
        assert "pre" in names and "x" not in names
        db.sql("ROLLBACK")

    def test_failing_ctas_leaves_no_table(self):
        db = make_db()
        before = snapshot(db)
        with pytest.raises(ReproError):
            db.sql("CREATE TABLE Bad AS SELECT nonexistent FROM Emp")
        assert not db.catalog.has_table("Bad")
        assert snapshot(db) == before

    def test_script_statement_atomicity_uses_undo(self):
        db = make_db()
        script = (
            "INSERT INTO Emp VALUES ('s1', 1, 1);"
            "INSERT INTO Emp VALUES ('s2', 2, 2), ('bad', 'x', 3);"
            "INSERT INTO Emp VALUES ('s3', 3, 3);"
        )
        with pytest.raises(ReproError):
            list(db.execute_script(script))
        names = [r[0] for r in db.catalog.table("Emp").rows]
        assert "s1" in names          # earlier statements persist
        assert "s2" not in names      # failing statement fully undone
        assert "s3" not in names      # later statements never ran


# --------------------------------------------------------------- rollback

class TestRollback:
    def test_rollback_restores_rows_and_indexes(self):
        db = make_db()
        before = content(db)
        db.sql("BEGIN")
        db.sql("INSERT INTO Emp VALUES ('tmp', 9, 9)")
        db.sql("ROLLBACK")
        assert content(db) == before

    def test_rollback_restores_ddl(self):
        db = make_db()
        before = content(db)
        db.sql("BEGIN")
        db.sql("CREATE TABLE Scratch (a INT)")
        db.sql("INSERT INTO Scratch VALUES (1)")
        db.sql("CREATE INDEX ON Emp (sal)")
        db.create_view("V", "SELECT name FROM Emp")
        db.sql("ROLLBACK")
        assert content(db) == before
        assert not db.catalog.has_table("Scratch")
        assert not db.catalog.has_view("V")

    def test_rollback_restores_dropped_table_with_stats(self):
        db = make_db()
        before = content(db)
        db.sql("BEGIN")
        db.sql("DROP TABLE Emp")
        assert not db.catalog.has_table("Emp")
        db.sql("ROLLBACK")
        assert content(db) == before  # rows, indexes, AND stats back

    def test_rollback_restores_stats_after_explicit_analyze(self):
        db = make_db()
        before = content(db)
        db.sql("BEGIN")
        db.sql("INSERT INTO Emp VALUES ('tmp', 9, 999999)")
        db.analyze("Emp")  # stats now see the new row
        db.sql("ROLLBACK")
        assert content(db) == before

    def test_rollback_restores_stats_after_lazy_planner_analyze(self):
        """The planner computing stats lazily mid-transaction must be
        undone too — otherwise rolled-back rows leak into estimates."""
        db = Database()
        db.create_table("R", [("x", DataType.INT)])
        db.insert("R", [(i,) for i in range(5)])
        assert not db.catalog.has_stats("R")
        db.sql("BEGIN")
        db.sql("INSERT INTO R VALUES (999)")
        db.sql("SELECT x FROM R WHERE x > 3")  # plans -> lazy analyze
        assert db.catalog.has_stats("R")
        db.sql("ROLLBACK")
        assert not db.catalog.has_stats("R")

    def test_commit_persists(self):
        db = make_db()
        db.sql("BEGIN")
        db.sql("INSERT INTO Emp VALUES ('kept', 1, 1)")
        db.sql("CREATE TABLE Kept (a INT)")
        db.sql("COMMIT")
        assert "kept" in [r[0] for r in db.catalog.table("Emp").rows]
        assert db.catalog.has_table("Kept")


# -------------------------------------------------------------- savepoints

class TestSavepoints:
    def test_partial_rollback(self):
        db = make_db()
        db.sql("BEGIN")
        db.sql("INSERT INTO Emp VALUES ('a', 1, 1)")
        db.sql("SAVEPOINT sp")
        db.sql("INSERT INTO Emp VALUES ('b', 2, 2)")
        db.sql("ROLLBACK TO SAVEPOINT sp")
        db.sql("COMMIT")
        names = [r[0] for r in db.catalog.table("Emp").rows]
        assert "a" in names and "b" not in names

    def test_savepoint_survives_rollback_to_it(self):
        db = make_db()
        db.sql("BEGIN")
        db.sql("SAVEPOINT sp")
        db.sql("INSERT INTO Emp VALUES ('x', 1, 1)")
        db.sql("ROLLBACK TO SAVEPOINT sp")
        db.sql("ROLLBACK TO SAVEPOINT sp")  # still there (PG semantics)
        db.sql("ROLLBACK")

    def test_later_savepoints_die_with_the_rollback(self):
        db = make_db()
        db.sql("BEGIN")
        db.sql("SAVEPOINT outer_sp")
        db.sql("SAVEPOINT inner_sp")
        db.sql("ROLLBACK TO SAVEPOINT outer_sp")
        with pytest.raises(TransactionError):
            db.sql("ROLLBACK TO SAVEPOINT inner_sp")
        db.sql("ROLLBACK")

    def test_release(self):
        db = make_db()
        db.sql("BEGIN")
        db.sql("SAVEPOINT sp")
        db.sql("RELEASE SAVEPOINT sp")
        with pytest.raises(TransactionError):
            db.sql("ROLLBACK TO SAVEPOINT sp")
        db.sql("ROLLBACK")

    def test_savepoint_outside_txn_is_typed(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db.sql("SAVEPOINT sp")
        with pytest.raises(TransactionError):
            db.sql("RELEASE SAVEPOINT sp")

    def test_savepoint_clears_aborted_state(self):
        db = make_db()
        db.sql("BEGIN")
        db.sql("SAVEPOINT sp")
        with pytest.raises(ReproError):
            db.sql("INSERT INTO Emp VALUES ('x', 'bad', 1)")
        with pytest.raises(TransactionAborted):
            db.sql("SELECT name FROM Emp")
        db.sql("ROLLBACK TO SAVEPOINT sp")  # resurrects the transaction
        db.sql("INSERT INTO Emp VALUES ('y', 1, 1)")
        db.sql("COMMIT")
        assert "y" in [r[0] for r in db.catalog.table("Emp").rows]


# ----------------------------------------------------------- aborted state

class TestAbortedState:
    def test_error_aborts_until_rollback(self):
        db = make_db()
        db.sql("BEGIN")
        with pytest.raises(ReproError):
            db.sql("SELECT nope FROM Emp")
        for text in ("SELECT name FROM Emp",
                     "INSERT INTO Emp VALUES ('x', 1, 1)",
                     "SAVEPOINT sp",
                     "BEGIN"):
            with pytest.raises(TransactionAborted):
                db.sql(text)
        db.sql("ROLLBACK")
        db.sql("SELECT name FROM Emp")  # usable again

    def test_commit_of_aborted_txn_rolls_back(self):
        db = make_db()
        before = content(db)
        db.sql("BEGIN")
        db.sql("INSERT INTO Emp VALUES ('x', 1, 1)")
        with pytest.raises(ReproError):
            db.sql("SELECT nope FROM Emp")
        result = db.sql("COMMIT")
        assert result.statement_kind == "rollback"
        assert content(db) == before

    def test_on_error_continue_keeps_txn_usable(self):
        db = make_db()
        db.txn.on_error = "continue"
        db.sql("BEGIN")
        db.sql("INSERT INTO Emp VALUES ('a', 1, 1)")
        with pytest.raises(ReproError):
            db.sql("INSERT INTO Emp VALUES ('b', 'bad', 1)")
        db.sql("INSERT INTO Emp VALUES ('c', 2, 2)")  # no abort
        db.sql("COMMIT")
        names = [r[0] for r in db.catalog.table("Emp").rows]
        assert "a" in names and "b" not in names and "c" in names

    def test_txn_control_misuse_is_typed(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db.sql("COMMIT")
        with pytest.raises(TransactionError):
            db.sql("ROLLBACK")
        db.sql("BEGIN")
        with pytest.raises(TransactionError):
            db.sql("BEGIN")  # no nesting: use SAVEPOINT
        db.sql("ROLLBACK")


# --------------------------------------- plan cache / version (satellite)

class TestPlanCacheVersioning:
    QUERY = "SELECT name FROM Emp WHERE dept = 1"

    def test_plan_cached_inside_aborted_txn_never_served(self):
        """Warm the cache on DDL created inside a transaction, roll the
        DDL back, and re-run: the rolled-back plan must miss."""
        db = make_db()
        db.sql("BEGIN")
        db.sql("CREATE TABLE Tmp (a INT)")
        db.sql("INSERT INTO Tmp VALUES (1)")
        # plan + cache a query against the uncommitted table
        assert db.sql("SELECT a FROM Tmp", use_cache=True).rows == [(1,)]
        cached_version = db.cache_stats()["catalog_version"]
        db.sql("ROLLBACK")
        assert db.catalog.version > cached_version  # never reused
        # the table is gone; the cached plan must not resurrect it
        with pytest.raises(ReproError):
            db.sql("SELECT a FROM Tmp", use_cache=True)

    def test_version_monotonic_across_rollback(self):
        db = make_db()
        v0 = db.catalog.version
        db.sql("BEGIN")
        db.sql("INSERT INTO Emp VALUES ('x', 1, 1)")
        v_inside = db.catalog.version
        assert v_inside > v0
        db.sql("ROLLBACK")
        assert db.catalog.version > v_inside  # restored content, new number

    def test_cached_plan_from_before_txn_misses_after_rollback(self):
        """A pre-transaction cached plan is invalidated by the rollback
        bump (content is identical, but the conservative contract is
        exact-version match) — and re-planning gives the same rows."""
        db = make_db()
        baseline = sorted(db.sql(self.QUERY, use_cache=True).rows)
        hit = db.sql(self.QUERY, use_cache=True)
        assert hit.cached_plan
        db.sql("BEGIN")
        db.sql("INSERT INTO Emp VALUES ('x', 1, 1)")
        db.sql("ROLLBACK")
        replanned = db.sql(self.QUERY, use_cache=True)
        assert not replanned.cached_plan
        assert sorted(replanned.rows) == baseline

    def test_empty_rollback_does_not_burn_a_version(self):
        db = make_db()
        v0 = db.catalog.version
        db.sql("BEGIN")
        db.sql("ROLLBACK")
        assert db.catalog.version == v0

    def test_prepared_statement_replans_after_rollback(self):
        db = make_db()
        stmt = db.prepare("SELECT name FROM Emp WHERE sal > ?")
        baseline = sorted(stmt.execute((500,)).rows)
        db.sql("BEGIN")
        db.sql("INSERT INTO Emp VALUES ('x', 1, 999999)")
        db.sql("ROLLBACK")
        result = stmt.execute((500,))
        assert not result.cached_plan  # version moved -> fresh plan
        assert sorted(result.rows) == baseline


# ------------------------------------------------------- events + metrics

class TestObservability:
    def test_txn_events_have_stable_ids_and_no_query_id(self):
        db = make_db()
        db.event_log.enable()
        db.sql("BEGIN")
        db.sql("INSERT INTO Emp VALUES ('a', 1, 1)")
        db.sql("COMMIT")
        db.sql("BEGIN")
        db.sql("ROLLBACK")
        begins = db.event_log.events("txn_begin")
        commits = db.event_log.events("txn_commit")
        rollbacks = db.event_log.events("txn_rollback")
        # ids are stable and distinct (implicit autocommit transactions
        # consume ids too, so the absolute numbers float)
        first, second = [e["txn"] for e in begins]
        assert first != second
        assert [e["txn"] for e in commits] == [first]
        assert [e["txn"] for e in rollbacks] == [second]
        for event in begins + commits + rollbacks:
            assert "query_id" not in event  # never pollutes query chains

    def test_metrics_count_txn_outcomes(self):
        db = Database()
        db.create_table("R", [("x", DataType.INT)])
        db.sql("BEGIN")
        db.sql("INSERT INTO R VALUES (1)")
        db.sql("COMMIT")
        db.sql("BEGIN")
        db.sql("ROLLBACK")
        db.insert("R", [(2,)])  # implicit/autocommit
        metrics = db.metrics()
        assert metrics["txn_begins_total"]["by_label"]["explicit"] == 2
        assert metrics["txn_commits_total"]["by_label"]["explicit"] == 1
        assert metrics["txn_rollbacks_total"]["by_label"]["explicit"] == 1
        assert metrics["txn_commits_total"]["by_label"]["implicit"] >= 1

    def test_wal_metrics_section_appears_when_attached(self):
        from repro import MemoryStorage, WriteAheadLog
        db = Database()
        assert "wal" not in db.metrics()
        db.configure(durability="commit")
        db.attach_wal(WriteAheadLog(MemoryStorage()))
        db.create_table("R", [("x", DataType.INT)])
        db.insert("R", [(1,)])
        wal_stats = db.metrics()["wal"]
        assert wal_stats["records_written"] >= 4  # 2 ops + 2 commits
        assert wal_stats["syncs"] >= 2


# ------------------------------------------------------------- durability

class TestDurabilityPlumbing:
    def test_durability_off_writes_nothing(self):
        from repro import MemoryStorage, WriteAheadLog
        db = Database()
        wal = WriteAheadLog(MemoryStorage())
        db.attach_wal(wal)  # attached but durability is off
        db.create_table("R", [("x", DataType.INT)])
        db.insert("R", [(1,)])
        assert wal.records() == []

    def test_lazy_does_not_sync_commit_does(self):
        from repro import MemoryStorage, WriteAheadLog
        for level, syncs in (("lazy", 0), ("commit", 1)):
            db = Database()
            db.configure(durability=level)
            db.attach_wal(WriteAheadLog(MemoryStorage()))
            db.create_table("R", [("x", DataType.INT)])
            assert db.txn._wal.stats()["syncs"] == syncs, level

    def test_wal_path_opens_a_file(self, tmp_path):
        path = str(tmp_path / "db.wal")
        db = Database()
        db.configure(durability="commit", wal_path=path)
        db.create_table("R", [("x", DataType.INT)])
        db.insert("R", [(1,)])
        from repro.txn import iter_records, split_header
        with open(path, "rb") as handle:
            body = split_header(handle.read())
        ops = [r["op"] for r, _ in iter_records(body)]
        assert ops == ["create_table", "commit", "insert", "commit"]
        db.txn._wal.close()

    def test_rolled_back_txn_never_reaches_the_wal(self):
        from repro import MemoryStorage, WriteAheadLog
        db = Database()
        db.configure(durability="commit")
        wal = WriteAheadLog(MemoryStorage())
        db.attach_wal(wal)
        db.create_table("R", [("x", DataType.INT)])
        db.sql("BEGIN")
        db.sql("INSERT INTO R VALUES (99)")
        db.sql("ROLLBACK")
        assert [r["op"] for r in wal.records()] == ["create_table",
                                                    "commit"]

    def test_invalid_durability_rejected(self):
        db = Database()
        with pytest.raises(ValueError):
            db.configure(durability="eventually")

    def test_checkpoint_requires_durability_and_no_txn(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db.checkpoint()  # durability off
        db2 = make_db(durability="commit")
        db2.sql("BEGIN")
        with pytest.raises(TransactionError):
            db2.checkpoint()  # uncommitted data in tables
        db2.sql("ROLLBACK")
        record = db2.checkpoint()
        assert record["op"] == "checkpoint"
        assert record["commits"] == db2.txn.wal_commits


# ----------------------------------------------------------- SQL front end

class TestFrontEnd:
    @pytest.mark.parametrize("text,kind", [
        ("BEGIN", "begin"),
        ("BEGIN TRANSACTION", "begin"),
    ])
    def test_begin_spellings(self, text, kind):
        db = make_db()
        assert db.sql(text).statement_kind == kind
        db.sql("ROLLBACK")

    def test_commit_transaction_spelling(self):
        db = make_db()
        db.sql("BEGIN")
        assert db.sql("COMMIT TRANSACTION").statement_kind == "commit"

    def test_rollback_to_without_savepoint_keyword(self):
        db = make_db()
        db.sql("BEGIN")
        db.sql("SAVEPOINT sp")
        db.sql("ROLLBACK TO sp")  # SAVEPOINT keyword is optional
        db.sql("ROLLBACK")

    def test_txn_statements_are_not_bindable(self):
        db = make_db()
        with pytest.raises(BindError):
            db.bind("BEGIN")
        with pytest.raises(BindError):
            db.plan("COMMIT")

    def test_txn_statements_via_execute_script(self):
        db = make_db()
        results = db.execute_script(
            "BEGIN; INSERT INTO Emp VALUES ('s', 1, 1); COMMIT;"
        )
        assert [r.statement_kind for r in results] == \
            ["begin", "insert", "commit"]
        assert "s" in [r[0] for r in db.catalog.table("Emp").rows]

    def test_prepared_txn_statement(self):
        db = make_db()
        stmt = db.prepare("BEGIN")
        assert stmt.execute().statement_kind == "begin"
        db.sql("ROLLBACK")


# --------------------------------------------------------- CTAS atomicity

def test_ctas_is_transactional():
    db = make_db()
    db.sql("BEGIN")
    db.sql("CREATE TABLE Names AS SELECT name FROM Emp")
    assert db.catalog.table("Names").num_rows == 12
    db.sql("ROLLBACK")
    assert not db.catalog.has_table("Names")
