"""Unit tests for physical plan nodes (labels, children, explain)."""

import pytest

from repro import Database, OptimizerConfig
from repro.optimizer.plans import (
    FilterJoinNode,
    JoinMethod,
    PlanNode,
    UnionNode,
)
from repro.storage.schema import DataType, Schema
from tests.test_planner_basic import find_nodes
from repro.workloads import EmpDeptConfig, MOTIVATING_QUERY, fresh_empdept


@pytest.fixture(scope="module")
def db():
    return fresh_empdept(EmpDeptConfig(num_departments=30,
                                       employees_per_department=10))


class TestExplainRendering:
    def test_every_node_renders_a_line(self, db):
        plan, _ = db.plan(MOTIVATING_QUERY)
        text = plan.explain()
        node_count = len(find_nodes(plan, PlanNode))
        assert len(text.splitlines()) == node_count

    def test_indentation_reflects_depth(self, db):
        plan, _ = db.plan("SELECT eid FROM Emp WHERE age < 25")
        lines = plan.explain().splitlines()
        assert not lines[0].startswith(" ")
        assert lines[1].startswith("  ")

    def test_estimates_in_every_line(self, db):
        plan, _ = db.plan(MOTIVATING_QUERY)
        for line in plan.explain().splitlines():
            assert "rows=" in line and "cost=" in line

    def test_filter_join_label_names_strategy(self, db):
        config = OptimizerConfig(forced_view_join="bloom")
        plan, _ = db.plan(MOTIVATING_QUERY, config)
        labels = [n.label() for n in find_nodes(plan, FilterJoinNode)]
        assert any("BloomFilterJoin" in label for label in labels)

    def test_join_method_values(self):
        assert JoinMethod.HASH.value == "hash"
        assert JoinMethod.INL.value == "index-nested-loops"


class TestChildrenTopology:
    def test_children_cover_whole_tree(self, db):
        plan, _ = db.plan(MOTIVATING_QUERY)
        seen = set()
        stack = [plan]
        while stack:
            node = stack.pop()
            assert id(node) not in seen, "plan must be a tree, not a DAG"
            seen.add(id(node))
            stack.extend(node.children())
        assert len(seen) >= 4

    def test_union_node_binary(self):
        schema = Schema.of(("x", DataType.INT))
        left = PlanNode(schema)
        right = PlanNode(schema)
        union = UnionNode(left, right, schema, distinct=True)
        assert union.children() == [left, right]
        assert union.label() == "Union"
        assert UnionNode(left, right, schema, False).label() == "UnionAll"

    def test_filter_join_children_are_outer_and_template(self, db):
        config = OptimizerConfig(forced_view_join="filter_join")
        plan, _ = db.plan(MOTIVATING_QUERY, config)
        node = find_nodes(plan, FilterJoinNode)[0]
        assert node.children() == [node.outer, node.inner_template]
