"""Unit tests for storage.table and storage.index."""

import pytest

from repro.errors import CatalogError
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.schema import DataType, Schema
from repro.storage.table import PAGE_SIZE_BYTES, Table, pages_for


def make_table(rows=100):
    table = Table("T", Schema.of(("k", DataType.INT), ("v", DataType.INT)))
    table.insert_many((i, i % 10) for i in range(rows))
    return table


class TestPagesFor:
    def test_empty_is_one_page(self):
        assert pages_for(0, 8) == 1.0

    def test_small_rowset_is_one_page(self):
        assert pages_for(10, 8) == 1.0

    def test_scales_linearly(self):
        per_page = PAGE_SIZE_BYTES // 8
        assert pages_for(per_page * 3, 8) == pytest.approx(3.0)

    def test_wide_rows_one_per_page(self):
        assert pages_for(5, PAGE_SIZE_BYTES * 2) == 5.0


class TestTable:
    def test_insert_and_count(self):
        table = make_table(25)
        assert table.num_rows == 25

    def test_insert_coerces(self):
        table = Table("T", Schema.of(("x", DataType.FLOAT)))
        table.insert([3])
        assert table.rows[0] == (3.0,)

    def test_insert_rejects_bad_type(self):
        table = Table("T", Schema.of(("x", DataType.INT)))
        with pytest.raises(CatalogError):
            table.insert(["no"])

    def test_num_pages_grows(self):
        small = make_table(10)
        big = make_table(20_000)
        assert big.num_pages > small.num_pages

    def test_index_maintained_on_insert(self):
        table = make_table(10)
        table.create_index("k")
        table.insert((100, 0))
        assert list(table.index_on("k").probe(100)) == [10]

    def test_duplicate_index_rejected(self):
        table = make_table()
        table.create_index("k")
        with pytest.raises(CatalogError):
            table.create_index("k")

    def test_unknown_index_kind(self):
        with pytest.raises(CatalogError):
            make_table().create_index("k", kind="btree2000")


class TestHashIndex:
    def test_probe_hits(self):
        index = HashIndex("v")
        index.bulk_load([(5, 0), (5, 3), (7, 1)])
        assert sorted(index.probe(5)) == [0, 3]

    def test_probe_miss_is_empty(self):
        index = HashIndex("v")
        assert list(index.probe(99)) == []

    def test_len(self):
        index = HashIndex("v")
        index.bulk_load([(1, 0), (1, 1), (2, 2)])
        assert len(index) == 3


class TestSortedIndex:
    def make(self):
        index = SortedIndex("k")
        index.bulk_load([(v, i) for i, v in enumerate([5, 1, 3, 3, 9])])
        return index

    def test_probe_equality(self):
        assert sorted(self.make().probe(3)) == [2, 3]

    def test_probe_range_inclusive(self):
        positions = self.make().probe_range(3, 5)
        values = sorted(positions)
        assert values == [0, 2, 3]  # the two 3s and the 5

    def test_probe_range_exclusive(self):
        positions = self.make().probe_range(3, 9, low_inclusive=False,
                                            high_inclusive=False)
        assert sorted(positions) == [0]  # only the 5

    def test_probe_range_open_ends(self):
        assert len(self.make().probe_range(None, None)) == 5

    def test_in_order(self):
        index = self.make()
        keys = [index._keys[0]]  # sanity of internal order
        assert index._keys == sorted(index._keys)
        assert len(list(index.in_order())) == 5

    def test_incremental_insert_stays_sorted(self):
        index = self.make()
        index.insert(4, 10)
        assert index._keys == sorted(index._keys)
        assert index.probe(4) == [10]

    def test_null_key_rejected(self):
        with pytest.raises(CatalogError):
            SortedIndex("k").insert(None, 0)

    def test_table_sorted_index_range(self):
        table = make_table(50)
        table.create_index("k", kind="sorted")
        positions = table.index_on("k").probe_range(10, 12)
        assert sorted(table.row_at(p)[0] for p in positions) == [10, 11, 12]
