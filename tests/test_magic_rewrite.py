"""Tests for the magic-sets rewriter (Figure 2) and restricted blocks."""

import pytest

from repro import OptimizerConfig
from repro.algebra.relations import FilterSetRelation
from repro.errors import PlanError
from repro.expr.nodes import RuntimeMembership
from repro.optimizer.planner import Planner
from repro.rewrite.magic import (
    bindable_columns,
    magic_rewrite,
    restricted_stored_block,
    restricted_stored_block_lossy,
    restricted_view_block,
    restricted_view_block_lossy,
)
from repro.workloads import MOTIVATING_QUERY

from tests.conftest import reference_motivating_answer


@pytest.fixture()
def block(empdept_db):
    return empdept_db.bind(MOTIVATING_QUERY)


class TestBindableColumns:
    def test_grouped_view_exposes_group_column(self, block):
        view = block.relation("V")
        mapping = bindable_columns(view.block)
        assert mapping == {"did": "E.did"}

    def test_spj_view(self, empdept_db):
        empdept_db_block = empdept_db.bind(
            "SELECT x.did FROM (SELECT did, budget FROM Dept) x"
        )
        mapping = bindable_columns(empdept_db_block.relations[0].block)
        assert mapping == {"did": "Dept.did", "budget": "Dept.budget"}

    def test_computed_output_not_bindable(self, empdept_db):
        q = "SELECT x.s FROM (SELECT sal + 1 AS s FROM Emp) x"
        mapping = bindable_columns(empdept_db.bind(q).relations[0].block)
        assert mapping == {}

    def test_aggregate_output_not_bindable(self, block):
        view = block.relation("V")
        assert "avgsal" not in bindable_columns(view.block)


class TestRestrictedViewBlock:
    def test_adds_filter_relation_and_predicate(self, block):
        view = block.relation("V")
        restricted = restricted_view_block(view, ["did"], "p1")
        kinds = [r.kind for r in restricted.block.relations]
        assert kinds[0] == "filterset"
        assert any("_F.did = E.did" in p.display()
                   for p in restricted.block.predicates)

    def test_same_output_schema(self, block):
        view = block.relation("V")
        restricted = restricted_view_block(view, ["did"], "p1")
        assert restricted.block.output_schema().names() == \
            view.block.output_schema().names()

    def test_unbindable_column_rejected(self, block):
        view = block.relation("V")
        with pytest.raises(PlanError):
            restricted_view_block(view, ["avgsal"], "p1")

    def test_lossy_uses_membership_predicate(self, block):
        view = block.relation("V")
        restricted = restricted_view_block_lossy(view, ["did"], "p1", 0.3)
        membership = [p for p in restricted.block.predicates
                      if isinstance(p, RuntimeMembership)]
        assert len(membership) == 1
        assert membership[0].assumed_selectivity == 0.3
        # no filter-set relation joins the body in the lossy variant
        assert all(r.kind != "filterset" for r in restricted.block.relations)


class TestRestrictedStoredBlock:
    def test_semi_join_block_shape(self, block):
        dept = block.relation("D")
        restricted = restricted_stored_block(dept, ["did"], "p2")
        assert [r.kind for r in restricted.block.relations] == [
            "filterset", "stored",
        ]
        out = restricted.block.output_schema().names()
        assert out == ["did", "budget"]

    def test_local_predicates_pushed(self, block):
        dept = block.relation("D")
        extra = [p for p in block.predicates
                 if p.display() == "D.budget > 100000"]
        restricted = restricted_stored_block(dept, ["did"], "p2", extra)
        assert any("budget" in p.display()
                   for p in restricted.block.predicates)

    def test_lossy_stored(self, block):
        dept = block.relation("D")
        restricted = restricted_stored_block_lossy(dept, ["did"], "p3")
        assert isinstance(restricted.block.predicates[0], RuntimeMembership)

    def test_empty_bound_columns_rejected(self, block):
        dept = block.relation("D")
        with pytest.raises(PlanError):
            restricted_stored_block(dept, [], "p")


class TestMagicRewrite:
    def test_figure2_structure(self, block):
        rewriting = magic_rewrite(block, "V")
        sql = rewriting.sql()
        assert "PartialResult" in sql
        assert "FilterSet" in sql
        assert "RestrictedView" in sql
        assert "DISTINCT" in sql
        assert rewriting.bound_columns == ["did"]

    def test_rewritten_query_equivalent(self, empdept_db, block):
        rewriting = magic_rewrite(block, "V")
        planner = Planner(empdept_db.catalog, OptimizerConfig())
        plan = planner.plan(rewriting.final_block)
        result = empdept_db.run_plan(plan)
        assert sorted(result.rows) == reference_motivating_answer(empdept_db)

    def test_sips_production_subset_dept_only(self, empdept_db, block):
        """Join order 3 of Figure 3: filter from big departments only."""
        rewriting = magic_rewrite(block, "V", production_aliases=["D"])
        planner = Planner(empdept_db.catalog, OptimizerConfig())
        plan = planner.plan(rewriting.final_block)
        result = empdept_db.run_plan(plan)
        assert sorted(
            (r[0], r[1], r[2]) for r in result.rows
        ) == reference_motivating_answer(empdept_db)

    def test_sips_production_subset_emp_only(self, empdept_db, block):
        """Join order 4: filter from young employees only."""
        rewriting = magic_rewrite(block, "V", production_aliases=["E"])
        planner = Planner(empdept_db.catalog, OptimizerConfig())
        plan = planner.plan(rewriting.final_block)
        result = empdept_db.run_plan(plan)
        assert sorted(result.rows) == reference_motivating_answer(empdept_db)

    def test_rewrite_of_non_view_rejected(self, block):
        with pytest.raises(PlanError):
            magic_rewrite(block, "E")

    def test_unknown_production_alias_rejected(self, block):
        with pytest.raises(PlanError):
            magic_rewrite(block, "V", production_aliases=["Z"])

    def test_rewritten_sql_reparses(self, empdept_db, block):
        """The emitted SQL text must itself be executable."""
        rewriting = magic_rewrite(block, "V")
        script_db = empdept_db
        # register the rewriting's views under fresh names and run it
        for name, blk in [
            ("PartialResult", rewriting.partial_result),
            ("FilterSet", rewriting.filter_block),
            ("RestrictedView", rewriting.restricted_view),
        ]:
            script_db.catalog.create_view(name, blk.display_sql())
        try:
            result = script_db.sql(rewriting.final_block.display_sql())
            assert sorted(result.rows) == \
                reference_motivating_answer(script_db)
        finally:
            for name in ("PartialResult", "FilterSet", "RestrictedView"):
                script_db.catalog.drop_view(name)


class TestFilterAliasCollision:
    def test_user_alias_underscore_f_does_not_collide(self, empdept_db):
        """A view body using the alias _F must not break the filter
        join's internal filter-set relation."""
        empdept_db.create_view(
            "WeirdAlias",
            "SELECT _F.did, AVG(_F.sal) AS avgsal FROM Emp _F "
            "GROUP BY _F.did",
        )
        from repro import OptimizerConfig
        try:
            result = empdept_db.sql(
                "SELECT D.did, V.avgsal FROM Dept D, WeirdAlias V "
                "WHERE D.did = V.did AND D.budget > 100000",
                config=OptimizerConfig(forced_view_join="filter_join"),
            )
            baseline = empdept_db.sql(
                "SELECT D.did, V.avgsal FROM Dept D, WeirdAlias V "
                "WHERE D.did = V.did AND D.budget > 100000",
                config=OptimizerConfig(forced_view_join="full"),
            )
            assert sorted(result.rows) == sorted(baseline.rows)
        finally:
            empdept_db.catalog.drop_view("WeirdAlias")


class TestRecursiveViewRejection:
    def test_figure2_rewrite_of_recursive_view_is_typed_error(self):
        """Figure-2 magic rewriting is defined over non-recursive views;
        applying it to a recursive view must raise the typed
        RecursiveViewError (not a generic PlanError), pointing at the
        planner's fixpoint candidates instead."""
        import repro
        from repro import DataType, RecursiveViewError

        db = repro.connect()
        db.create_table("Edge", [("src", DataType.INT), ("dst", DataType.INT)])
        db.insert("Edge", [(1, 2), (2, 3)])
        db.analyze()
        db.create_view(
            "tc",
            "SELECT src, dst FROM Edge"
            " UNION SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src",
            column_aliases=("x", "y"),
            recursive=True,
        )
        block = db.bind("SELECT E.src, T.y FROM Edge E, tc T"
                        " WHERE E.dst = T.x AND E.src = 1")
        with pytest.raises(RecursiveViewError) as exc:
            magic_rewrite(block, "T")
        assert isinstance(exc.value, PlanError)  # stays inside the taxonomy
        assert exc.value.view_name == "tc"
        assert "fixpoint" in str(exc.value)
