"""Decision-support integration battery over the star schema.

Every query runs under multiple optimizer configurations and is checked
against the naive reference interpreter; the Zipf-skewed variant
stresses the estimator without being allowed to change answers.
"""

import pytest

from repro import OptimizerConfig
from repro.workloads.star import StarConfig, fresh_star
from tests.reference_engine import evaluate_block_naive

CONFIGS = [
    OptimizerConfig(),
    OptimizerConfig(forced_view_join="filter_join"),
    OptimizerConfig(enable_filter_join=False, enable_bloom_filter=False),
    OptimizerConfig(memory_pages=4),
]

QUERIES = [
    # dimension filter + aggregate view
    "SELECT C.cust_id, V.total_spend FROM Customer C, CustSpend V "
    "WHERE C.cust_id = V.cust_id AND C.segment = 2",
    # two dimensions through the fact table
    "SELECT C.region, P.category, S.amount FROM Customer C, Sales S, "
    "Product P WHERE C.cust_id = S.cust_id AND S.prod_id = P.prod_id "
    "AND P.price > 400 AND C.segment = 1",
    # view restricted by IN list
    "SELECT V.prod_id, V.total_qty FROM ProductVolume V, Product P "
    "WHERE V.prod_id = P.prod_id AND P.category IN ('toys', 'food')",
    # grouped rollup over a join
    "SELECT C.region, SUM(S.amount) AS revenue FROM Customer C, Sales S "
    "WHERE C.cust_id = S.cust_id GROUP BY C.region",
    # HAVING over the rollup
    "SELECT S.store_id, COUNT(*) AS n FROM Sales S GROUP BY S.store_id "
    "HAVING COUNT(*) > 10",
    # two views in one query
    "SELECT V.cust_id, V.total_spend, W.revenue FROM CustSpend V, "
    "Sales S, StoreRevenue W WHERE V.cust_id = S.cust_id "
    "AND S.store_id = W.store_id AND S.amount > 1800",
]


@pytest.fixture(scope="module")
def uniform_db():
    return fresh_star(StarConfig(num_customers=60, num_products=25,
                                 num_stores=6, num_sales=400, seed=51))


@pytest.fixture(scope="module")
def skewed_db():
    return fresh_star(StarConfig(num_customers=60, num_products=25,
                                 num_stores=6, num_sales=400,
                                 zipf_skew=1.1, seed=52))


_expected_cache = {}


def check(db, query, config):
    key = (id(db), query)
    if key not in _expected_cache:
        block = db.bind(query)
        _expected_cache[key] = sorted(
            map(repr, evaluate_block_naive(block)))
    result = db.sql(query, config=config)
    assert sorted(map(repr, result.rows)) == _expected_cache[key], query


@pytest.mark.parametrize("query_index", range(len(QUERIES)))
@pytest.mark.parametrize("config_index", range(len(CONFIGS)))
def test_uniform_star(uniform_db, query_index, config_index):
    check(uniform_db, QUERIES[query_index], CONFIGS[config_index])


@pytest.mark.parametrize("query_index", range(len(QUERIES)))
def test_skewed_star_cost_based(skewed_db, query_index):
    check(skewed_db, QUERIES[query_index], CONFIGS[0])


def test_skew_does_not_change_plans_correctness(skewed_db):
    """Even when the estimator is most stressed (Zipf fact table), all
    strategies agree."""
    from repro.harness.runners import run_strategies
    run_strategies(skewed_db, QUERIES[0])  # raises on any disagreement
