"""Unit tests for the catalog (tables, views, sites, statistics)."""

import pytest

from repro.errors import CatalogError
from repro.storage.catalog import Catalog, compute_table_stats
from repro.storage.schema import DataType, Schema


def make_catalog():
    catalog = Catalog()
    table = catalog.create_table(
        "Emp", Schema.of(("eid", DataType.INT), ("sal", DataType.INT)))
    table.insert_many((i, 1000 * (i % 10)) for i in range(100))
    return catalog


class TestRelations:
    def test_create_and_lookup(self):
        catalog = make_catalog()
        assert catalog.table("Emp").num_rows == 100
        assert catalog.table("emp").name == "Emp"  # case-insensitive

    def test_duplicate_rejected(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError):
            catalog.create_table("EMP", Schema.of(("x", DataType.INT)))

    def test_view_name_conflicts_with_table(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError):
            catalog.create_view("Emp", "SELECT 1")

    def test_drop_table(self):
        catalog = make_catalog()
        catalog.drop_table("Emp")
        assert not catalog.has_table("Emp")
        with pytest.raises(CatalogError):
            catalog.table("Emp")

    def test_drop_unknown(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("X")
        with pytest.raises(CatalogError):
            Catalog().drop_view("X")

    def test_views_listed(self):
        catalog = make_catalog()
        catalog.create_view("V", "SELECT eid FROM Emp",
                            column_aliases=["e"])
        assert [v.name for v in catalog.views()] == ["V"]
        assert catalog.view("v").column_aliases == ["e"]

    def test_has_relation(self):
        catalog = make_catalog()
        catalog.create_view("V", "SELECT eid FROM Emp")
        assert catalog.has_relation("Emp")
        assert catalog.has_relation("V")
        assert not catalog.has_relation("Zed")


class TestSites:
    def test_site_roundtrip(self):
        catalog = make_catalog()
        catalog.set_table_site("Emp", "mars")
        assert catalog.site_for_table("Emp") == "mars"
        catalog.set_table_site("Emp", None)
        assert catalog.site_for_table("Emp") is None

    def test_site_for_unknown_table(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError):
            catalog.set_table_site("Nope", "x")


class TestStatistics:
    def test_lazy_stats(self):
        catalog = make_catalog()
        assert not catalog.has_stats("Emp")
        stats = catalog.stats("Emp")
        assert stats.num_rows == 100
        assert catalog.has_stats("Emp")

    def test_stats_column_details(self):
        catalog = make_catalog()
        stats = catalog.stats("Emp")
        sal = stats.column("sal")
        assert sal.num_distinct == 10
        assert sal.min_value == 0
        assert sal.max_value == 9000
        assert sal.histogram is not None
        assert sal.frequencies is not None

    def test_null_fraction(self):
        catalog = Catalog()
        table = catalog.create_table(
            "N", Schema.of(("x", DataType.INT)))
        table.insert_many([(1,), (None,), (None,), (4,)])
        stats = catalog.stats("N")
        assert stats.column("x").null_fraction == pytest.approx(0.5)

    def test_empty_table_stats(self):
        catalog = Catalog()
        catalog.create_table("E", Schema.of(("x", DataType.INT)))
        stats = catalog.stats("E")
        assert stats.num_rows == 0
        assert stats.column("x").histogram is None

    def test_drop_clears_stats(self):
        catalog = make_catalog()
        catalog.stats("Emp")
        catalog.drop_table("Emp")
        catalog.create_table("Emp", Schema.of(("z", DataType.INT)))
        stats = catalog.stats("Emp")
        assert stats.num_rows == 0

    def test_selectivity_helpers(self):
        catalog = make_catalog()
        sal = catalog.stats("Emp").column("sal")
        assert sal.selectivity_eq(1000) == pytest.approx(0.1)
        assert sal.selectivity_cmp("<", 5000) == pytest.approx(0.5)
        assert sal.selectivity_cmp("!=", 1000) == pytest.approx(0.9)
