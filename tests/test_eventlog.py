"""The structured query event log: lifecycle chains, JSON-lines
export, and the distributed retry/degradation events."""

import io
import json
import random

import pytest

from repro import Database, DataType, EventLog, Options
from repro.distributed import DistributedDatabase, distributed_config
from repro.distributed.network import FaultPlan, RetryPolicy
from repro.obs.log import QUERY_EVENT_ORDER


def _tiny_db():
    db = Database()
    db.create_table("T", [("a", DataType.INT)])
    db.insert("T", [(i,) for i in range(10)])
    db.analyze()
    return db


class TestEventLogUnit:
    def test_disabled_by_default_and_emit_is_noop(self):
        log = EventLog()
        assert not log.enabled
        assert log.emit("query_start", query_id="q1") is None
        assert len(log) == 0

    def test_enable_emit_filter(self):
        log = EventLog()
        log.enable()
        qid = log.new_query_id()
        log.emit("query_start", query_id=qid, kind="select")
        log.emit("query_end", query_id=qid, status="ok")
        log.emit("query_start", query_id=log.new_query_id())
        assert len(log) == 3
        assert [e["event"] for e in log.events(query_id=qid)] == \
            ["query_start", "query_end"]
        assert len(log.events(event="query_start")) == 2

    def test_ring_buffer_ages_out(self):
        log = EventLog(capacity=5)
        log.enable()
        for i in range(9):
            log.emit("execute", query_id="q%d" % i)
        assert len(log) == 5
        assert log.events()[0]["query_id"] == "q4"

    def test_jsonl_round_trip(self):
        log = EventLog()
        log.enable()
        log.emit("parse", query_id="q1", seconds=0.001)
        log.emit("error", query_id="q1", message='with "quotes"')
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[1]["message"] == 'with "quotes"'

    def test_sink_receives_json_lines(self):
        sink = io.StringIO()
        log = EventLog()
        log.enable(sink)
        log.emit("execute", query_id="q1", rows=3)
        record = json.loads(sink.getvalue())
        assert record["event"] == "execute" and record["rows"] == 3

    def test_render_empty_and_tail(self):
        log = EventLog()
        assert "no events" in log.render()
        log.enable()
        log.emit("query_start", query_id="q1", kind="select")
        assert "query_start" in log.render()


class TestDatabaseThreading:
    def test_successful_query_chain(self):
        db = _tiny_db()
        db.event_log.enable()
        result = db.sql("SELECT a FROM T")
        assert result.query_id == "q1"
        chain = [e["event"] for e in db.event_log.events(query_id="q1")]
        assert chain == ["query_start", "parse", "optimize",
                         "execute", "query_end"]
        order = {name: i for i, name in enumerate(QUERY_EVENT_ORDER)}
        assert chain == sorted(chain, key=order.__getitem__)

    def test_optimize_event_carries_planner_counters(self):
        db = _tiny_db()
        db.event_log.enable()
        db.sql("SELECT a FROM T WHERE a > 3")
        (opt,) = db.event_log.events(event="optimize")
        assert opt["plans_considered"] >= 1
        assert opt["memo_entries"] >= 1

    def test_plan_cache_hit_and_miss_events(self):
        db = _tiny_db()
        db.configure(use_cache=True)
        db.event_log.enable()
        db.sql("SELECT a FROM T")
        db.sql("SELECT a FROM T")
        outcomes = [e["outcome"]
                    for e in db.event_log.events(event="plan_cache")]
        assert outcomes == ["miss", "hit"]
        # only the miss planned from scratch, so only it optimized
        optimized = db.event_log.events(event="optimize")
        assert len(optimized) == 1
        assert optimized[0]["query_id"] == "q1"

    def test_error_event_then_end(self):
        db = _tiny_db()
        db.event_log.enable()
        with pytest.raises(Exception):
            db.sql("SELECT nope FROM Missing M")
        events = db.event_log.events(query_id="q1")
        assert [e["event"] for e in events[-2:]] == \
            ["error", "query_end"]
        assert events[-1]["status"] == "error"
        assert events[-2]["error"]

    def test_query_ids_increment_and_off_means_none(self):
        db = _tiny_db()
        db.event_log.enable()
        first = db.sql("SELECT a FROM T")
        second = db.sql("SELECT a FROM T")
        assert (first.query_id, second.query_id) == ("q1", "q2")
        db.event_log.disable()
        assert db.sql("SELECT a FROM T").query_id is None

    def test_ddl_statements_logged_too(self):
        db = _tiny_db()
        db.event_log.enable()
        db.sql("CREATE TABLE U (x INT)")
        (start,) = db.event_log.events(event="query_start")
        assert start["kind"] == "create_table"


def _distributed_db():
    rng = random.Random(1)
    db = DistributedDatabase(distributed_config(1.0, 0.001))
    db.create_table("Orders", [("oid", DataType.INT),
                               ("cid", DataType.INT),
                               ("total", DataType.INT)])
    db.create_table("Cust", [("cid", DataType.INT),
                             ("name", DataType.STR)], site="siteB")
    db.insert("Orders", [
        (i, rng.randint(1, 50), rng.randint(1, 1000))
        for i in range(1, 301)
    ])
    db.insert("Cust", [(c, "n%d" % c) for c in range(1, 51)])
    db.analyze()
    return db


QUERY = ("SELECT O.oid, C.name FROM Orders O, Cust C "
         "WHERE O.cid = C.cid AND O.total > 900")


class TestDistributedEvents:
    def test_degradation_event_names_site(self):
        db = _distributed_db()
        db.event_log.enable()
        db.set_fault_plan(FaultPlan(down_sites=frozenset({"siteB"})),
                          seed=1,
                          retry_policy=RetryPolicy(max_attempts=2))
        db.sql(QUERY)
        (event,) = db.event_log.events(event="degradation")
        assert event["site"] == "siteB"
        assert event["attempts"] >= 1

    def test_retry_event_counts_network_retries(self):
        db = _distributed_db()
        db.event_log.enable()
        db.set_fault_plan(FaultPlan(drop_rate=0.5), seed=1,
                          retry_policy=RetryPolicy(max_attempts=10))
        result = db.sql(QUERY)
        events = db.event_log.events(event="retry")
        assert events, "lossy network produced no retry events"
        assert events[0]["retries"] >= 1
        assert events[0]["query_id"] == result.query_id
