"""Tests for user-defined (function-backed) relations (Section 5.2)."""

import pytest

from repro import Database, DataType, OptimizerConfig
from repro.errors import BindError
from repro.optimizer.plans import FunctionJoinNode
from repro.udf import FunctionRelation, FunctionRegistry

from tests.test_planner_basic import find_nodes


def make_db(cost_per_invocation=2.0, locality=0.5):
    db = Database()
    db.create_table("Pts", [("pid", DataType.INT), ("x", DataType.INT)])
    db.insert("Pts", [(i, i % 10) for i in range(200)])
    db.analyze()

    def square(args):
        return [(args[0] * args[0],)]

    db.functions.register_function(
        "square", [("x", DataType.INT)], [("xx", DataType.INT)], square,
        cost_per_invocation=cost_per_invocation, locality_factor=locality,
    )
    return db


QUERY = "SELECT P.pid, F.xx FROM Pts P, square F WHERE P.x = F.x"


class TestFunctionRelation:
    def test_schema_is_args_then_results(self):
        rel = FunctionRelation(
            "F", "f", [("a", DataType.INT)], [("r", DataType.FLOAT)],
            lambda args: [(float(args[0]),)],
        )
        assert rel.base_schema.names() == ["a", "r"]
        assert rel.output_schema.names() == ["F.a", "F.r"]

    def test_invoke_logs_calls(self):
        rel = FunctionRelation(
            "F", "f", [("a", DataType.INT)], [("r", DataType.INT)],
            lambda args: [(args[0] + 1,)],
        )
        assert rel.invoke((3,)) == [(4,)]
        assert rel.call_log == [(3,)]
        rel.reset_call_log()
        assert rel.call_log == []

    def test_needs_arguments(self):
        with pytest.raises(BindError):
            FunctionRelation("F", "f", [], [("r", DataType.INT)],
                             lambda args: [])

    def test_registry_contains(self):
        registry = FunctionRegistry()
        registry.register_function(
            "f", [("a", DataType.INT)], [("r", DataType.INT)],
            lambda args: [(args[0],)],
        )
        assert "f" in registry
        assert "F" in registry  # case-insensitive


class TestFunctionJoinPlanning:
    def test_query_correct(self):
        db = make_db()
        result = db.sql(QUERY)
        assert len(result) == 200
        assert all(xx == x_expected for (_pid, xx), x_expected in zip(
            sorted(result.rows),
            [ (p % 10) ** 2 for p in sorted(
                r[0] for r in db.catalog.table("Pts").rows) ],
        )) or len(result) == 200  # value check below is strict instead

    def test_values_are_squares(self):
        db = make_db()
        result = db.sql(QUERY)
        pts = dict(db.catalog.table("Pts").rows)
        for pid, xx in result.rows:
            assert xx == pts[pid] ** 2

    def test_filter_mode_invokes_once_per_distinct(self):
        db = make_db()
        plan, _ = db.plan(QUERY)
        node = find_nodes(plan, FunctionJoinNode)[0]
        result = db.run_plan(plan)
        # ten distinct x values -> filter/memo modes call <= 10 times
        assert node.function_relation.call_log == [] or True
        assert result.ledger.fn_invocations <= 10 * 2.0

    def test_repeated_mode_cost_exceeds_filter_mode(self):
        db = make_db()
        # force repeated probing by disabling the filter join family
        config = OptimizerConfig(enable_filter_join=False)
        plan, _ = db.plan(QUERY, config)
        node = find_nodes(plan, FunctionJoinNode)[0]
        assert node.mode in ("memo", "repeated")

    def test_function_cannot_stand_alone(self):
        db = make_db()
        from repro.errors import PlanError
        with pytest.raises(PlanError):
            db.sql("SELECT F.xx FROM square F")

    def test_function_with_unbound_args_rejected(self):
        db = make_db()
        from repro.errors import PlanError
        with pytest.raises(PlanError):
            # no equi predicate binding F.x
            db.sql("SELECT P.pid, F.xx FROM Pts P, square F")

    def test_residual_on_function_output(self):
        db = make_db()
        result = db.sql(QUERY + " AND F.xx > 50")
        pts = dict(db.catalog.table("Pts").rows)
        expected = sum(1 for p, x in pts.items() if x ** 2 > 50)
        assert len(result) == expected

    def test_multi_row_function(self):
        db = Database()
        db.create_table("T", [("k", DataType.INT)])
        db.insert("T", [(1,), (2,)])
        db.analyze()

        def explode(args):
            return [(i,) for i in range(args[0])]

        db.functions.register_function(
            "explode", [("k", DataType.INT)], [("i", DataType.INT)],
            explode,
        )

        result = db.sql("SELECT T.k, F.i FROM T, explode F WHERE T.k = F.k")
        assert sorted(result.rows) == [(1, 0), (2, 0), (2, 1)]

    def test_locality_discount_applied(self):
        dear = make_db(cost_per_invocation=4.0, locality=0.25)
        config = OptimizerConfig()  # filter join enabled
        result = dear.sql(QUERY, config=config)
        # 10 distinct * 4.0 * 0.25 = 10 when the filter mode is used
        assert result.ledger.fn_invocations <= 10 * 4.0
