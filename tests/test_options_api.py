"""The redesigned public API: Options, connect(), and the legacy-kwarg
deprecation shim.

Covers the resolution chain (BUILTIN <- db.defaults <- per-call options
<- legacy kwargs), configure()/session() scoping, the once-per-call-site
DeprecationWarning, and the stable ``repro`` facade surface.
"""

import warnings

import pytest

import repro
from repro import Database, DataType, Options
from repro.options import BUILTIN, warn_legacy_kwargs


def _tiny_db():
    db = Database()
    db.create_table("T", [("a", DataType.INT), ("b", DataType.INT)])
    db.insert("T", [(i, i * 2) for i in range(50)])
    db.analyze()
    return db


Q = "SELECT T.a FROM T WHERE T.b > 10"


# ------------------------------------------------------------- Options value


class TestOptions:
    def test_defaults_are_inherit(self):
        opts = Options()
        assert all(v is None for v in opts.as_dict().values())

    def test_resolved_fills_builtins(self):
        resolved = Options().resolved()
        assert resolved.trace is False
        assert resolved.use_cache is False
        assert resolved.engine == "iterator"
        assert resolved.timeout is None  # genuinely "unlimited"

    def test_merged_layers_non_none_fields(self):
        base = Options(trace=True, timeout=5.0)
        over = Options(timeout=1.0, engine="vector")
        merged = base.merged(over)
        assert merged.trace is True
        assert merged.timeout == 1.0
        assert merged.engine == "vector"
        assert base.merged(None) is base

    def test_validation(self):
        with pytest.raises(ValueError):
            Options(engine="warp")
        with pytest.raises(ValueError):
            Options(timeout=0)
        with pytest.raises(ValueError):
            Options(memory_budget_bytes=-1)

    def test_immutable(self):
        with pytest.raises(Exception):
            Options().trace = True

    def test_builtin_is_fully_specified_for_flags(self):
        assert BUILTIN.trace is False
        assert BUILTIN.use_cache is False
        assert BUILTIN.engine == "iterator"


# --------------------------------------------------- configure() / session()


class TestDatabaseDefaults:
    def test_configure_sets_defaults(self):
        db = _tiny_db()
        db.configure(engine="vector", trace=True)
        assert db.defaults.engine == "vector"
        result = db.sql(Q)
        assert result.trace is not None  # default trace applied

    def test_configure_rejects_unknown_keys(self):
        db = _tiny_db()
        with pytest.raises(TypeError):
            db.configure(warp_factor=9)

    def test_session_scopes_and_restores(self):
        db = _tiny_db()
        db.configure(engine="vector")
        with db.session(engine="iterator", trace=True) as scoped:
            assert scoped is db
            assert db.defaults.engine == "iterator"
            assert db.defaults.trace is True
        assert db.defaults.engine == "vector"
        assert db.defaults.trace is None

    def test_session_restores_on_error(self):
        db = _tiny_db()
        with pytest.raises(RuntimeError):
            with db.session(trace=True):
                raise RuntimeError("boom")
        assert db.defaults.trace is None

    def test_per_call_options_beat_defaults(self):
        db = _tiny_db()
        db.configure(trace=True)
        result = db.sql(Q, options=Options(trace=False))
        assert result.trace is None

    def test_legacy_property_views(self):
        db = _tiny_db()
        db.tracing = True
        assert db.defaults.trace is True
        db.default_timeout = 3.5
        assert db.defaults.timeout == 3.5
        db.tracing = False
        db.default_timeout = None
        assert db.defaults.timeout is None


# ------------------------------------------------------------------ connect()


class TestConnect:
    def test_local_connect_with_options(self):
        db = repro.connect(engine="vector", use_cache=True)
        assert isinstance(db, Database)
        assert db.defaults.engine == "vector"
        assert db.defaults.use_cache is True

    def test_distributed_connect(self):
        db = repro.connect(sites=["tokyo", "paris"])
        from repro.distributed import DistributedDatabase
        assert isinstance(db, DistributedDatabase)
        assert db.sites == ["paris", "tokyo"]

    def test_plan_cache_size_passthrough(self):
        local = repro.connect(plan_cache_size=7)
        assert local.plan_cache.capacity == 7
        dist = repro.connect(sites=["a"], plan_cache_size=7)
        assert dist.plan_cache.capacity == 7

    def test_facade_exports_resolve(self):
        missing = [name for name in repro.__all__
                   if not hasattr(repro, name)]
        assert missing == []
        # the redesigned surface is part of the contract
        for name in ("connect", "Options", "QueryResult", "ReproError",
                     "ExecutionError", "QueryTimeout", "ResourceExhausted"):
            assert name in repro.__all__


# --------------------------------------------------------- deprecation shim


class TestLegacyKwargShim:
    def test_legacy_kwargs_still_bind(self):
        db = _tiny_db()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            traced = db.sql(Q, trace=True)
            cached = db.sql(Q, use_cache=True)
            warm = db.sql(Q, use_cache=True)
        assert traced.trace is not None
        assert cached.cached_plan is False
        assert warm.cached_plan is True

    def test_legacy_kwargs_warn(self):
        db = _tiny_db()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            db.sql(Q, trace=True)
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert "trace=" in str(caught[0].message)
        assert "Options" in str(caught[0].message)

    def test_warns_once_per_call_site(self):
        db = _tiny_db()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):
                db.sql(Q, use_cache=True)  # one site, five calls
        assert len(caught) == 1

    def test_distinct_sites_warn_separately(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_legacy_kwargs(["timeout"], stacklevel=2)
            warn_legacy_kwargs(["timeout"], stacklevel=2)
        # distinct lines in this file -> two warnings
        assert len(caught) == 2

    def test_options_path_is_warning_free(self):
        db = _tiny_db()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            db.sql(Q, options=Options(trace=True, use_cache=True))
            db.configure(engine="vector")
            db.sql(Q)

    def test_legacy_and_options_compose(self):
        """Per-call options win over legacy kwargs, which win over
        defaults."""
        db = _tiny_db()
        db.configure(trace=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = db.sql(Q, trace=True, options=Options(trace=False))
        assert result.trace is None

    def test_execute_script_shim(self):
        db = _tiny_db()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = db.execute_script(
                "SELECT T.a FROM T; SELECT T.b FROM T;", use_cache=True)
        assert len(results) == 2
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)


# ------------------------------------------------------------ engine option


class TestEngineOption:
    def test_unknown_engine_rejected_at_options(self):
        with pytest.raises(ValueError):
            Options(engine="gpu")

    def test_run_plan_rejects_unknown_engine(self):
        from repro.errors import PlanError
        db = _tiny_db()
        plan, planner = db.plan(Q)
        with pytest.raises(PlanError):
            db.run_plan(plan, planner.metrics, engine="gpu")

    def test_engine_default_applies_to_sql(self):
        db = _tiny_db()
        base = db.sql(Q)
        db.configure(engine="vector")
        vec = db.sql(Q)
        assert vec.rows == base.rows
        assert vec.ledger.as_dict() == base.ledger.as_dict()
