"""Chaos property: under ANY fault schedule, a distributed query either
returns exactly the fault-free result or raises a typed ReproError.

This is the acceptance test for the resilience layer. Two hundred
seeded schedules derive a random :class:`FaultPlan` (drop / truncate /
latency rates, hard-down sites, transient fail-first bursts) and an
optional per-query deadline, then run a three-site join and check:

- **no wrong answers** — any rows returned match the fault-free
  baseline exactly;
- **no raw exceptions** — every failure is a ``ReproError`` subclass
  (``QueryTimeout`` or ``SiteUnavailable``);
- **no hangs** — deadlines use the simulated clock, so even a
  30-second latency schedule finishes in milliseconds.

The sweep also asserts (once, over the whole run) that the three
interesting regimes all occurred: clean success under faults
(retry-then-succeed), deadline aborts, and site-down degradation that
fell back to a live placement and still produced exact rows.
"""

import os
import random

import pytest

from repro import DataType, QueryTimeout, ReproError, SiteUnavailable
from repro.distributed import (
    DistributedDatabase,
    FaultPlan,
    RetryPolicy,
    distributed_config,
)

QUERY = ("SELECT L.v, W.w FROM Local L, East E, West W "
         "WHERE L.k = E.k AND E.e = W.e")

# CI's dedicated chaos job runs a quick sweep (CHAOS_SCHEDULES=10);
# the default in-tree run covers the full 200.
N_SCHEDULES = int(os.environ.get("CHAOS_SCHEDULES", "200"))


def build_db():
    rng = random.Random(41)
    db = DistributedDatabase(distributed_config(2.0, 0.005))
    db.create_table("Local", [("k", DataType.INT), ("v", DataType.INT)])
    db.create_table("East", [("k", DataType.INT), ("e", DataType.INT)],
                    site="east")
    db.create_table("West", [("e", DataType.INT), ("w", DataType.INT)],
                    site="west")
    db.insert("Local", [(rng.randint(1, 30), i) for i in range(60)])
    db.insert("East", [(k % 40 + 1, k % 12) for k in range(150)])
    db.insert("West", [(e % 12, e) for e in range(80)])
    db.create_index("East", "k")
    db.analyze()
    return db


@pytest.fixture(scope="module")
def db():
    return build_db()


@pytest.fixture(scope="module")
def baseline(db):
    return sorted(db.sql(QUERY).rows)


def restore(db):
    """Reset site status and fault injection between schedules."""
    for site in list(db.down_sites):
        db.mark_site_up(site)
    db.set_fault_plan(None)
    db.network.retry_policy = RetryPolicy()
    db.degradation_events.clear()


def schedule_for_seed(seed):
    """Derive a fault plan + optional deadline from one seed."""
    rng = random.Random(seed)
    kwargs = {}
    if rng.random() < 0.6:
        kwargs["drop_rate"] = rng.choice([0.01, 0.05, 0.2, 0.6])
    if rng.random() < 0.4:
        kwargs["truncate_rate"] = rng.choice([0.01, 0.1, 0.4])
    if rng.random() < 0.5:
        kwargs["latency_rate"] = rng.choice([0.05, 0.3, 1.0])
        kwargs["latency_seconds"] = rng.choice([0.01, 0.25, 2.0, 30.0])
    if rng.random() < 0.2:
        kwargs["down_sites"] = frozenset(
            rng.sample(["east", "west"], rng.choice([1, 1, 2])))
    if rng.random() < 0.3:
        kwargs["fail_first"] = {rng.choice(["east", "west"]):
                                rng.choice([1, 2, 3, 10])}
    timeout = rng.choice([None, None, None, 0.05, 0.5, 5.0])
    use_cache = rng.random() < 0.5
    return FaultPlan(**kwargs), timeout, use_cache


# Shared across the parametrized sweep so the final test can assert all
# three regimes occurred at least once.
OUTCOMES = {"clean_under_faults": 0, "timeout": 0,
            "degraded_exact": 0, "unavailable": 0}


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_chaos_schedule(db, baseline, seed):
    plan, timeout, use_cache = schedule_for_seed(seed)
    restore(db)
    db.set_fault_plan(plan, seed=seed)
    try:
        result = db.sql(QUERY, timeout=timeout, use_cache=use_cache)
    except QueryTimeout:
        OUTCOMES["timeout"] += 1
    except SiteUnavailable:
        OUTCOMES["unavailable"] += 1
    except ReproError as exc:  # pragma: no cover - would be a bug
        pytest.fail("unexpected typed error %r under seed %d"
                    % (exc, seed))
    else:
        # The chaos property: rows are exactly the fault-free answer.
        assert sorted(result.rows) == baseline, \
            "wrong answer under fault schedule seed %d" % seed
        if db.degradation_events:
            OUTCOMES["degraded_exact"] += 1
        elif plan.active:
            OUTCOMES["clean_under_faults"] += 1
    finally:
        restore(db)


def test_all_regimes_exercised():
    """Runs after the sweep: the 200 schedules must have hit every
    interesting regime at least once."""
    if N_SCHEDULES < 200:
        pytest.skip("regime coverage is only asserted on the full sweep")
    assert OUTCOMES["clean_under_faults"] > 0, OUTCOMES
    assert OUTCOMES["timeout"] > 0, OUTCOMES
    assert OUTCOMES["degraded_exact"] > 0, OUTCOMES


# ------------------------------------------------- targeted regressions

def test_retry_then_succeed_exact_rows(db, baseline):
    """Transient drops are retried behind the caller's back: the query
    succeeds with exact rows and the retries show up in the stats."""
    restore(db)
    db.set_fault_plan(FaultPlan(fail_first={"east": 2}), seed=0)
    result = db.sql(QUERY)
    assert sorted(result.rows) == baseline
    assert db.network.stats.retries >= 2
    assert not db.degradation_events
    restore(db)


def test_deadline_abort_is_prompt_and_typed(db):
    """A schedule of 30-second latency spikes against a 0.2s deadline
    aborts with QueryTimeout — instantly, because the clock is
    simulated."""
    restore(db)
    db.set_fault_plan(FaultPlan(latency_rate=1.0, latency_seconds=30.0),
                      seed=0)
    with pytest.raises(QueryTimeout) as exc_info:
        db.sql(QUERY, timeout=0.2)
    assert exc_info.value.elapsed >= 0.2
    restore(db)


def test_site_down_reoptimizes_to_replica(db, baseline):
    """When the primary site dies mid-query, degradation re-optimizes
    onto the registered replica — a live placement — and the rows are
    exact."""
    restore(db)
    db.add_replica("East", "west")
    db.set_fault_plan(FaultPlan(down_sites=frozenset({"east"})), seed=0)
    result = db.sql(QUERY)
    assert sorted(result.rows) == baseline
    assert [e.site for e in db.degradation_events] == ["east"]
    assert "west" in db.degradation_events[0].fallback_sites
    assert db.site_of("East") == "west"
    restore(db)
    assert db.site_of("East") == "east"


def test_site_down_schedule_with_cached_plan(db, baseline):
    """A cached plan must never ship to a site that has since died:
    warm the cache fault-free, kill the site, re-run with the cache on
    — the catalog version bump forces a re-plan and the rows stay
    exact."""
    restore(db)
    db.sql(QUERY, use_cache=True)
    db.set_fault_plan(FaultPlan(down_sites=frozenset({"east"})), seed=0)
    result = db.sql(QUERY, use_cache=True)
    assert sorted(result.rows) == baseline
    assert db.degradation_events
    restore(db)


# -------------------------------- site failure mid-transaction regime

def test_transient_site_failure_mid_txn_is_invisible():
    """A transient site failure during a query inside an explicit
    transaction is retried behind the caller's back — the transaction is
    NOT aborted (internal retries are not user-visible statement
    failures) and COMMIT keeps everything."""
    db = build_db()
    clean = sorted(db.sql(QUERY).rows)
    db.sql("BEGIN")
    db.insert("Local", [(999, 999)])
    db.set_fault_plan(FaultPlan(fail_first={"east": 2}), seed=0)
    result = db.sql(QUERY)
    assert sorted(result.rows) == clean
    status = db.txn.status()
    assert status["active"] and not status["aborted"], status
    db.sql("COMMIT")
    assert (999, 999) in db.catalog.table("Local").rows


def test_site_down_mid_txn_degrades_and_commit_succeeds():
    """The primary site dies in the middle of an explicit transaction:
    the coordinator degrades onto the replica, the transaction stays
    usable, and the commit lands — with the degradation recorded."""
    db = build_db()
    clean = sorted(db.sql(QUERY).rows)
    db.add_replica("East", "west")
    db.sql("BEGIN")
    db.insert("Local", [(777, 777)])
    db.set_fault_plan(FaultPlan(down_sites=frozenset({"east"})), seed=0)
    result = db.sql(QUERY)
    assert sorted(result.rows) == clean
    status = db.txn.status()
    assert status["active"] and not status["aborted"], status
    assert [e.site for e in db.degradation_events] == ["east"]
    db.sql("COMMIT")
    assert (777, 777) in db.catalog.table("Local").rows


def test_rollback_after_site_failure_mid_txn_is_clean():
    """ROLLBACK after a mid-transaction site failure undoes the
    transaction's writes completely; the degradation bookkeeping (a
    coordinator-level fact, not transactional state) survives."""
    db = build_db()
    before = list(db.catalog.table("Local").rows)
    db.add_replica("East", "west")
    db.sql("BEGIN")
    db.insert("Local", [(555, 555)])
    db.set_fault_plan(FaultPlan(down_sites=frozenset({"east"})), seed=0)
    db.sql(QUERY)
    db.sql("ROLLBACK")
    assert db.catalog.table("Local").rows == before
    assert db.degradation_events
    status = db.txn.status()
    assert not status["active"] and not status["aborted"], status


# ------------------------------------- recursive fixpoint under chaos

from repro import FixpointLimitExceeded  # noqa: E402
from repro.workloads import GraphConfig, build_graph, tc_query  # noqa: E402

RECURSIVE_QUERY = tc_query("WHERE x = 1")
N_RECURSIVE = max(10, N_SCHEDULES // 4)


def build_recursive_db():
    db = DistributedDatabase(distributed_config(2.0, 0.005))
    build_graph(db, GraphConfig("tree", num_nodes=30, branching=3),
                site="west")
    return db


@pytest.fixture(scope="module")
def rec_db():
    return build_recursive_db()


@pytest.fixture(scope="module")
def rec_baseline(rec_db):
    return sorted(rec_db.sql(RECURSIVE_QUERY).rows)


REC_OUTCOMES = {"exact_under_faults": 0, "timeout": 0, "degraded_exact": 0}


@pytest.mark.parametrize("seed", range(N_RECURSIVE))
def test_chaos_recursive_schedule(rec_db, rec_baseline, seed):
    """The chaos property extended to fixpoints: a distributed
    transitive-closure query under any fault schedule returns exactly
    the fault-free closure or raises a typed error — never a wrong or
    partial closure, even when a site dies between iterations."""
    plan, timeout, use_cache = schedule_for_seed(seed + 5_000)
    restore(rec_db)
    rec_db.set_fault_plan(plan, seed=seed)
    try:
        result = rec_db.sql(RECURSIVE_QUERY, timeout=timeout,
                            use_cache=use_cache)
    except QueryTimeout:
        REC_OUTCOMES["timeout"] += 1
    except (SiteUnavailable, FixpointLimitExceeded):
        pass
    except ReproError as exc:  # pragma: no cover - would be a bug
        pytest.fail("unexpected typed error %r under seed %d" % (exc, seed))
    else:
        assert sorted(result.rows) == rec_baseline, \
            "wrong closure under fault schedule seed %d" % seed
        if rec_db.degradation_events:
            REC_OUTCOMES["degraded_exact"] += 1
        elif plan.active:
            REC_OUTCOMES["exact_under_faults"] += 1
    finally:
        restore(rec_db)


def test_recursive_regimes_exercised():
    if N_SCHEDULES < 200:
        pytest.skip("regime coverage is only asserted on the full sweep")
    assert REC_OUTCOMES["exact_under_faults"] > 0, REC_OUTCOMES
    assert REC_OUTCOMES["timeout"] > 0, REC_OUTCOMES


def test_deadline_interrupts_fixpoint_iterations(rec_db):
    """A latency storm against a short deadline must abort the fixpoint
    *between row batches inside an iteration*, not only at iteration
    boundaries — the deadline check rides the per-row CPU charge."""
    restore(rec_db)
    rec_db.set_fault_plan(FaultPlan(latency_rate=1.0, latency_seconds=30.0),
                          seed=0)
    with pytest.raises(QueryTimeout) as exc_info:
        rec_db.sql(RECURSIVE_QUERY, timeout=0.2)
    assert exc_info.value.elapsed >= 0.2
    restore(rec_db)


def test_site_down_recursive_degrades_to_exact_rows(rec_db, rec_baseline):
    restore(rec_db)
    rec_db.set_fault_plan(FaultPlan(down_sites=frozenset({"west"})), seed=0)
    result = rec_db.sql(RECURSIVE_QUERY)
    assert sorted(result.rows) == rec_baseline
    assert [e.site for e in rec_db.degradation_events] == ["west"]
    restore(rec_db)
