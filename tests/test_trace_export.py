"""Export-format tests: the Chrome-trace span export (unique ids,
valid parent/child pairing, file round-trip) and the optimizer
search-trace JSON export round-trip."""

import json

import pytest

from repro import Database, DataType, Options, OptimizerTrace
from repro.workloads import MOTIVATING_QUERY, build_empdept


@pytest.fixture(scope="module")
def traced(empdept_db):
    result = empdept_db.sql(MOTIVATING_QUERY,
                            options=Options(trace=True))
    assert result.trace is not None
    return result.trace


class TestChromeTrace:
    def test_span_ids_unique_across_phases(self, traced):
        events = traced.to_chrome_trace()
        ids = [e["args"]["span_id"] for e in events]
        assert len(ids) == len(set(ids)), "duplicate span ids"
        # phases and operators share one id space
        kinds = {e["args"]["kind"] for e in events}
        assert {"query", "phase", "operator"} <= kinds

    def test_event_pairing_valid(self, traced):
        """Every non-root event names an existing parent, the root has
        none, and every 'X' slice fits inside its parent's slice."""
        events = traced.to_chrome_trace()
        by_id = {e["args"]["span_id"]: e for e in events}
        roots = [e for e in events if "parent_id" not in e["args"]]
        assert len(roots) == 1 and roots[0]["name"] == "query"
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            parent_id = event["args"].get("parent_id")
            if parent_id is None:
                continue
            parent = by_id[parent_id]
            assert event["ts"] >= parent["ts"] - 1e-6
            assert (event["ts"] + event["dur"]
                    <= parent["ts"] + parent["dur"] + 1e-3)

    def test_tree_rebuilds_from_ids(self, traced):
        events = traced.to_chrome_trace()
        children = {}
        for event in events:
            parent_id = event["args"].get("parent_id")
            if parent_id is not None:
                children.setdefault(parent_id, []).append(event)
        root = next(e for e in events if "parent_id" not in e["args"])
        # phases hang off the root, in the span tree's phase order
        phase_names = [c["name"]
                       for c in children[root["args"]["span_id"]]]
        assert "execute" in phase_names

    def test_round_trip_file_load(self, traced, tmp_path):
        path = traced.save_chrome_trace(str(tmp_path / "trace.json"))
        loaded = json.load(open(path))
        assert loaded == traced.to_chrome_trace()
        assert all("span_id" in e["args"] for e in loaded)

    def test_operator_events_keep_estimates(self, traced):
        ops = [e for e in traced.to_chrome_trace()
               if e["args"]["kind"] == "operator"]
        assert ops
        assert all("est_rows" in e["args"] for e in ops)
        assert all("cost_ledger" in e["args"] for e in ops)


class TestSearchTraceExport:
    def test_json_file_round_trip(self, empdept_db, tmp_path):
        trace = OptimizerTrace()
        empdept_db.plan(MOTIVATING_QUERY, search=trace)
        path = tmp_path / "search.json"
        path.write_text(trace.to_json_str())
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(trace.to_json_str())
        assert loaded["format"] == "repro-search-trace/v1"
        assert loaded["metrics"]["plans_considered"] == \
            len(loaded["records"])

    def test_records_serialize_all_fields(self, empdept_db):
        trace = OptimizerTrace()
        empdept_db.plan(MOTIVATING_QUERY, search=trace)
        record = json.loads(trace.to_json_str())["records"][0]
        for key in ("seq", "aliases", "method", "cost", "verdict",
                    "sort_order", "site", "chosen"):
            assert key in record
