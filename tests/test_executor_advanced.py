"""Advanced executor tests: filter joins, nested iteration, shipping,
spill charging, function joins — exercised directly on operators."""

import pytest

from repro.executor.operators import (
    FilterJoinOp,
    FunctionJoinOp,
    NestedIterationOp,
    ShipOp,
    SortOp,
    ValuesOp,
)
from repro.executor.runtime import RuntimeContext, TempTable
from repro.storage.schema import DataType, Schema
from repro.udf import FunctionRelation

KV = Schema.of(("k", DataType.INT), ("v", DataType.INT))
KW = Schema.of(("k", DataType.INT), ("w", DataType.INT))
K = Schema.of(("k", DataType.INT))


def ctx(memory_pages=16):
    return RuntimeContext(memory_pages=memory_pages)


class _FilterSetEcho:
    """A fake 'restricted inner': emits (k, k*10) for each filter key."""

    def __init__(self, context, param_id):
        self.ctx = context
        self.param_id = param_id
        self.schema = KW
        self.run_count = 0

    def rows(self):
        self.run_count += 1
        temp = self.ctx.filter_set(self.param_id)
        for (key,) in temp.rows:
            yield (key, key * 10)


class TestFilterJoinOp:
    def make(self, context, outer_rows, lossy=False, ship=False,
             materialize=True):
        outer = ValuesOp(context, outer_rows, KV)
        template = _FilterSetEcho(context, "p")
        op = FilterJoinOp(
            context, outer, template, "p",
            bind_positions=[0], filter_schema=K,
            final_outer_positions=[0], final_inner_positions=[0],
            residual=None,
            schema=KV.concat(KW.qualified("I")),
            materialize_production=materialize, lossy=lossy,
            ship_filter=ship,
        )
        return op, template

    def test_exact_filter_join(self):
        context = ctx()
        op, template = self.make(context, [(1, 0), (1, 1), (2, 2)])
        rows = sorted(op.rows())
        assert rows == [(1, 0, 1, 10), (1, 1, 1, 10), (2, 2, 2, 20)]
        # the template ran once with a deduplicated 2-key filter
        assert template.run_count == 1
        assert len(context.filter_sets["p"].rows) == 2

    def test_null_keys_excluded_from_filter(self):
        context = ctx()
        op, _t = self.make(context, [(None, 0), (3, 1)])
        assert sorted(op.rows()) == [(3, 1, 3, 30)]
        assert len(context.filter_sets["p"].rows) == 1

    def test_components_sum_to_ledger_delta(self):
        context = ctx()
        op, _t = self.make(context, [(i % 5, i) for i in range(50)])
        before = context.ledger.snapshot()
        list(op.rows())
        total = context.ledger.delta(before).total(context.params)
        component_sum = sum(op.measured_components.values())
        assert component_sum == pytest.approx(total, rel=1e-6)

    def test_recompute_mode_runs_outer_twice(self):
        context = ctx()
        counter = {"runs": 0}

        class CountingValues(ValuesOp):
            def rows(self_inner):
                counter["runs"] += 1
                return super().rows()

        outer = CountingValues(context, [(1, 0)], KV)
        template = _FilterSetEcho(context, "p")
        op = FilterJoinOp(
            context, outer, template, "p", [0], K, [0], [0], None,
            KV.concat(KW.qualified("I")), materialize_production=False,
        )
        list(op.rows())
        assert counter["runs"] == 2  # production + final-join pass

    def test_ship_filter_charges_network(self):
        context = ctx()
        op, _t = self.make(context, [(1, 0)], ship=True)
        list(op.rows())
        assert context.ledger.net_msgs >= 1

    def test_lossy_binds_bloom(self):
        context = ctx()
        outer = ValuesOp(context, [(1, 0), (2, 1)], KV)

        class MembershipEcho:
            """Emits every candidate key that passes the membership."""

            def __init__(self, inner_ctx):
                self.ctx = inner_ctx
                self.schema = KW

            def rows(self):
                membership = self.ctx.membership("p")
                for key in range(10):
                    if key in membership:
                        yield (key, key * 10)

        op = FilterJoinOp(
            context, outer, MembershipEcho(context), "p", [0], K,
            [0], [0], None, KV.concat(KW.qualified("I")), lossy=True,
            bloom_bits=4096,
        )
        rows = sorted(op.rows())
        # false positives from the bloom are removed by the final join
        assert rows == [(1, 0, 1, 10), (2, 1, 2, 20)]


class TestNestedIterationOp:
    def test_runs_template_per_outer_row(self):
        context = ctx()
        outer = ValuesOp(context, [(1, 0), (2, 1), (1, 2)], KV)
        template = _FilterSetEcho(context, "q")
        op = NestedIterationOp(
            context, outer, template, "q", [0], K, None,
            KV.concat(KW.qualified("I")),
        )
        rows = list(op.rows())
        assert template.run_count == 3  # duplicates NOT deduplicated
        assert (1, 0, 1, 10) in rows and (1, 2, 1, 10) in rows

    def test_null_binding_skipped(self):
        context = ctx()
        outer = ValuesOp(context, [(None, 0)], KV)
        template = _FilterSetEcho(context, "q")
        op = NestedIterationOp(
            context, outer, template, "q", [0], K, None,
            KV.concat(KW.qualified("I")),
        )
        assert list(op.rows()) == []
        assert template.run_count == 0


class TestShipAndSpill:
    def test_ship_charges_messages_and_bytes(self):
        context = ctx()
        op = ShipOp(context, ValuesOp(context, [(1, 2)] * 100, KV))
        assert len(op.to_list()) == 100
        assert context.ledger.net_msgs >= 1
        assert context.ledger.net_bytes == pytest.approx(
            100 * KV.row_width())

    def test_sort_spill_charges_io(self):
        small_ctx = RuntimeContext(memory_pages=1)
        rows = [(i % 97, i) for i in range(5000)]
        op = SortOp(small_ctx, ValuesOp(small_ctx, rows, KV), [(0, True)])
        result = op.to_list()
        assert [r[0] for r in result] == sorted(r[0] for r in rows)
        assert small_ctx.ledger.page_writes > 0

    def test_sort_no_spill_in_memory(self):
        big_ctx = RuntimeContext(memory_pages=1000)
        rows = [(i % 7, i) for i in range(100)]
        op = SortOp(big_ctx, ValuesOp(big_ctx, rows, KV), [(0, True)])
        op.to_list()
        assert big_ctx.ledger.page_writes == 0


class TestFunctionJoinOp:
    def make_fn(self):
        return FunctionRelation(
            "G", "g", [("k", DataType.INT)], [("r", DataType.INT)],
            lambda args: [(args[0] + 100,)],
            cost_per_invocation=2.0, locality_factor=0.5,
        )

    def schema_for(self, fn):
        return KV.concat(fn.output_schema)

    def test_repeated_invokes_per_row(self):
        context = ctx()
        fn = self.make_fn()
        outer = ValuesOp(context, [(1, 0), (1, 1)], KV)
        op = FunctionJoinOp(context, outer, fn, [0], "repeated", None,
                            self.schema_for(fn))
        rows = list(op.rows())
        assert len(fn.call_log) == 2
        assert rows[0] == (1, 0, 1, 101)

    def test_memo_deduplicates(self):
        context = ctx()
        fn = self.make_fn()
        outer = ValuesOp(context, [(1, 0), (1, 1), (2, 2)], KV)
        op = FunctionJoinOp(context, outer, fn, [0], "memo", None,
                            self.schema_for(fn))
        assert len(list(op.rows())) == 3
        assert len(fn.call_log) == 2

    def test_filter_mode_sorted_consecutive(self):
        context = ctx()
        fn = self.make_fn()
        outer = ValuesOp(context, [(3, 0), (1, 1), (2, 2), (3, 3)], KV)
        op = FunctionJoinOp(context, outer, fn, [0], "filter", None,
                            self.schema_for(fn))
        assert len(list(op.rows())) == 4
        assert fn.call_log == [(1,), (2,), (3,)]  # sorted, consecutive

    def test_filter_mode_locality_discount(self):
        repeated_ctx, filter_ctx = ctx(), ctx()
        rows = [(1, i) for i in range(4)]
        for mode, context in (("repeated", repeated_ctx),
                              ("filter", filter_ctx)):
            fn = self.make_fn()
            op = FunctionJoinOp(context, ValuesOp(context, rows, KV),
                                fn, [0], mode, None, self.schema_for(fn))
            list(op.rows())
        assert repeated_ctx.ledger.fn_invocations == pytest.approx(8.0)
        assert filter_ctx.ledger.fn_invocations == pytest.approx(1.0)

    def test_null_args_skipped(self):
        context = ctx()
        fn = self.make_fn()
        op = FunctionJoinOp(context, ValuesOp(context, [(None, 0)], KV),
                            fn, [0], "repeated", None,
                            self.schema_for(fn))
        assert list(op.rows()) == []
        assert fn.call_log == []


class TestOptimizedNestedIteration:
    def test_consecutive_duplicates_reuse_probe(self):
        context = ctx()
        outer = ValuesOp(context, [(1, 0), (1, 1), (2, 2), (1, 3)], KV)
        template = _FilterSetEcho(context, "q")
        op = NestedIterationOp(
            context, outer, template, "q", [0], K, None,
            KV.concat(KW.qualified("I")),
        )
        rows = list(op.rows())
        assert len(rows) == 4
        # keys arrive 1,1,2,1: the consecutive pair shares one probe
        assert template.run_count == 3

    def test_sorted_outer_probes_once_per_distinct(self):
        context = ctx()
        outer = ValuesOp(
            context, sorted([(k % 3, i) for i, k in
                             enumerate(range(12))]), KV,
        )
        template = _FilterSetEcho(context, "q")
        op = NestedIterationOp(
            context, outer, template, "q", [0], K, None,
            KV.concat(KW.qualified("I")),
        )
        assert len(list(op.rows())) == 12
        assert template.run_count == 3  # one per distinct key


class TestPlannerOptimizedIteration:
    def test_sorted_variant_considered_and_correct(self):
        from repro import Database, OptimizerConfig
        from repro.storage.schema import DataType as DT

        db = Database()
        db.create_table("O", [("k", DT.INT), ("v", DT.INT)])
        db.insert("O", [(i % 4, i) for i in range(200)])
        db.analyze()
        db.create_view(
            "VAgg", "SELECT O.k, COUNT(*) AS n FROM O GROUP BY O.k")
        config = OptimizerConfig(forced_view_join="nested_iteration")
        result = db.sql(
            "SELECT O.v, V.n FROM O, VAgg V WHERE O.k = V.k",
            config=config,
        )
        assert len(result) == 200
        assert all(n == 50 for (_v, n) in result.rows)
