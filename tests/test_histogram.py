"""Unit tests for stats.histogram."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatsError
from repro.stats.histogram import EquiWidthHistogram, FrequencyHistogram


class TestEquiWidthBasics:
    def test_empty_raises(self):
        with pytest.raises(StatsError):
            EquiWidthHistogram.build([])

    def test_all_nulls_raises(self):
        with pytest.raises(StatsError):
            EquiWidthHistogram.build([None, None])

    def test_single_value(self):
        hist = EquiWidthHistogram.build([5, 5, 5])
        assert hist.selectivity_eq(5) == pytest.approx(1.0)
        assert hist.selectivity_eq(6) == 0.0

    def test_uniform_equality(self):
        hist = EquiWidthHistogram.build(list(range(100)), num_buckets=10)
        assert hist.selectivity_eq(50) == pytest.approx(0.01, abs=0.005)

    def test_lt_midpoint(self):
        hist = EquiWidthHistogram.build(list(range(1000)), num_buckets=20)
        assert hist.selectivity_lt(500) == pytest.approx(0.5, abs=0.03)

    def test_lt_below_min(self):
        hist = EquiWidthHistogram.build(list(range(10, 20)))
        assert hist.selectivity_lt(5) == 0.0

    def test_lt_above_max(self):
        hist = EquiWidthHistogram.build(list(range(10, 20)))
        assert hist.selectivity_lt(100) == 1.0

    def test_gt_complements_lt(self):
        hist = EquiWidthHistogram.build(list(range(100)))
        total = hist.selectivity_lt(30, inclusive=True) + hist.selectivity_gt(30)
        assert total == pytest.approx(1.0, abs=0.02)

    def test_range(self):
        hist = EquiWidthHistogram.build(list(range(100)), num_buckets=10)
        sel = hist.selectivity_range(20, 40)
        assert sel == pytest.approx(0.21, abs=0.05)

    def test_range_full(self):
        hist = EquiWidthHistogram.build(list(range(100)))
        assert hist.selectivity_range(None, None) == pytest.approx(1.0)

    def test_skewed_distribution(self):
        values = [1] * 90 + list(range(2, 12))
        hist = EquiWidthHistogram.build(values, num_buckets=10)
        assert hist.selectivity_eq(1) > 0.5


class TestEquiWidthProperties:
    @given(st.lists(st.integers(-10_000, 10_000), min_size=1, max_size=300),
           st.integers(-10_000, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_selectivities_in_unit_interval(self, values, probe):
        hist = EquiWidthHistogram.build(values)
        for sel in (
            hist.selectivity_eq(probe),
            hist.selectivity_lt(probe),
            hist.selectivity_gt(probe),
            hist.selectivity_range(probe, probe + 10),
        ):
            assert 0.0 <= sel <= 1.0

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_lt_is_monotone(self, values):
        hist = EquiWidthHistogram.build(values)
        points = sorted({min(values) - 1, max(values) + 1,
                         (min(values) + max(values)) // 2})
        sels = [hist.selectivity_lt(p) for p in points]
        assert sels == sorted(sels)


class TestFrequencyHistogram:
    def test_exact_equality(self):
        hist = FrequencyHistogram.build(["a", "a", "b", None])
        assert hist.selectivity_eq("a") == pytest.approx(2 / 3)
        assert hist.selectivity_eq("b") == pytest.approx(1 / 3)
        assert hist.selectivity_eq("z") == 0.0

    def test_num_distinct(self):
        hist = FrequencyHistogram.build([1, 2, 2, 3])
        assert hist.num_distinct == 3

    def test_empty_returns_none(self):
        assert FrequencyHistogram.build([]) is None
        assert FrequencyHistogram.build([None]) is None

    def test_too_many_distinct_returns_none(self):
        values = list(range(FrequencyHistogram.MAX_TRACKED + 10))
        assert FrequencyHistogram.build(values) is None
