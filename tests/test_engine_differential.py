"""Engine differential suite: vector vs iterator execution.

The vectorized batch engine is a second lowering target over the same
operator tree, and its contract is strict: for every query in the golden
corpus it must return **byte-identical rows** and charge an **identical
cost ledger** (same pages, CPU, messages, invocations — to the last
fraction), under every optimizer regime, including UDF, distributed,
fault-injected, traced, and memory-budgeted paths. Plans are chosen
before the engine is, so golden plans cannot move either.

The corpus is imported from ``test_plan_golden`` — the same 20 queries x
3 regimes that snapshot the planner — so any query added there is
automatically covered here.
"""

import pytest

from repro import Database, DataType, Options, QueryTimeout, ResourceExhausted
from repro.distributed import DistributedDatabase, distributed_config
from repro.distributed.network import FaultPlan, RetryPolicy

from tests.test_plan_golden import (
    REGIMES,
    WORKLOADS,
    _distributed_db,
    _regime_config,
)

ENGINES = ("iterator", "vector")

_DB_CACHE = {}


def _db(workload):
    # one database per workload for the whole module: queries are pure
    # SELECTs, so runs under both engines see identical state
    if workload not in _DB_CACHE:
        _DB_CACHE[workload] = WORKLOADS[workload][0]()
    return _DB_CACHE[workload]


def _run(db, sql, config, engine, **fields):
    return db.sql(sql, config=config,
                  options=Options(engine=engine, **fields))


@pytest.mark.parametrize("regime", sorted(REGIMES))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_rows_and_ledger_identical(workload, regime):
    """The core differential: byte-identical rows, identical ledger,
    identical plan, for every (workload, regime, query) triple."""
    db = _db(workload)
    config = _regime_config(db, REGIMES[regime])
    for key, sql in WORKLOADS[workload][1]:
        base = _run(db, sql, config, "iterator")
        vec = _run(db, sql, config, "vector")
        label = "%s/%s/%s" % (workload, regime, key)
        assert vec.rows == base.rows, label
        assert vec.ledger.as_dict() == base.ledger.as_dict(), (
            label, _ledger_diff(base, vec))
        # engine choice happens after planning: plans must be identical
        assert vec.plan.explain() == base.plan.explain(), label


def _ledger_diff(base, vec):
    a, b = base.ledger.as_dict(), vec.ledger.as_dict()
    return {k: (a[k], b.get(k)) for k in a if a[k] != b.get(k)}


def test_traced_runs_match_untraced_ledger():
    """Tracing must not perturb either engine's charges, the span trees
    must reconcile, and vector spans carry real batch counters."""
    db = _db("star")
    config = _regime_config(db, REGIMES["default"])
    _key, sql = WORKLOADS["star"][1][4]  # sales_by_region aggregate
    plain = {e: _run(db, sql, config, e) for e in ENGINES}
    traced = {e: _run(db, sql, config, e, trace=True) for e in ENGINES}
    for engine in ENGINES:
        assert traced[engine].rows == plain[engine].rows
        assert (traced[engine].ledger.as_dict()
                == plain[engine].ledger.as_dict())
        traced[engine].trace.reconcile(traced[engine].ledger)
    # both engines attribute per-operator work to the same span tree
    it_spans = traced["iterator"].trace.operator_root.to_dict()
    vec_spans = traced["vector"].trace.operator_root.to_dict()
    assert _span_shape(it_spans) == _span_shape(vec_spans)
    assert _total_batches(vec_spans) > 0
    assert _total_batches(it_spans) == 0


def _span_shape(span):
    return (span["name"], span["actual_rows"],
            [_span_shape(child) for child in span.get("children", [])])


def _total_batches(span):
    return (span.get("batches", 0)
            + sum(_total_batches(c) for c in span.get("children", [])))


def _fresh_faulty_db():
    db = _distributed_db()
    db.set_fault_plan(
        FaultPlan(drop_rate=0.3, truncate_rate=0.1),
        seed=42,
        retry_policy=RetryPolicy(max_attempts=8, base_delay=0.01),
    )
    return db


def test_fault_injected_runs_identical():
    """Retries under an identical fault schedule charge identically:
    shipping drains fully before transfer, so the injector's RNG sees
    the same message sequence from both engines."""
    _key, sql = WORKLOADS["distributed"][1][0]
    results = {}
    for engine in ENGINES:
        db = _fresh_faulty_db()  # fresh injector RNG per engine
        config = _regime_config(db, {})
        results[engine] = (_run(db, sql, config, engine),
                           db.network.stats.as_dict())
    base, base_stats = results["iterator"]
    vec, vec_stats = results["vector"]
    assert vec.rows == base.rows
    assert vec.ledger.as_dict() == base.ledger.as_dict()
    assert vec_stats == base_stats  # same retries, same drops


def test_memory_budget_parity():
    """A budget that kills the hash build kills it under both engines;
    a sufficient one yields identical ledgers."""
    db = _db("star")
    config = _regime_config(db, REGIMES["low_memory_hash_only"])
    _key, sql = WORKLOADS["star"][1][3]  # three_way join
    for engine in ENGINES:
        with pytest.raises(ResourceExhausted):
            _run(db, sql, config, engine, memory_budget_bytes=1024)
    ok = {e: _run(db, sql, config, e, memory_budget_bytes=64 * 1024 * 1024)
          for e in ENGINES}
    assert ok["vector"].rows == ok["iterator"].rows
    assert (ok["vector"].ledger.as_dict()
            == ok["iterator"].ledger.as_dict())


def test_deadline_parity():
    """Both engines honor the cooperative deadline (the vector engine
    counts bulk CPU steps toward the same check cadence)."""
    db = _db("star")
    config = _regime_config(db, {})
    sql = ("SELECT C.region, SUM(S.amount) AS revenue "
           "FROM Sales S, Customer C WHERE S.cust_id = C.cust_id "
           "GROUP BY C.region")
    for engine in ENGINES:
        with pytest.raises(QueryTimeout):
            _run(db, sql, config, engine, timeout=1e-9)


def test_udf_invocation_counts_identical():
    """FunctionJoin invocation charges (the paper's AvailCost_F side
    effects) are engine-independent."""
    db = _db("udf")
    config = _regime_config(db, {})
    for _key, sql in WORKLOADS["udf"][1]:
        base = _run(db, sql, config, "iterator")
        vec = _run(db, sql, config, "vector")
        assert vec.rows == base.rows
        assert (vec.ledger.as_dict()["fn_invocations"]
                == base.ledger.as_dict()["fn_invocations"])


def test_prepared_statement_vector_engine():
    """The prepared/plan-cache path respects Options.engine too."""
    db = _db("empdept")
    stmt = db.prepare("SELECT E.eid, E.sal FROM Emp E WHERE E.sal > ?")
    base = stmt.execute([50000])
    vec = stmt.execute([50000], options=Options(engine="vector"))
    assert vec.rows == base.rows
    assert vec.ledger.as_dict() == base.ledger.as_dict()
    assert vec.cached_plan


def test_degraded_failover_parity():
    """Site-loss degradation (mark down, re-optimize, retry) produces
    the same answer and the same degradation events under both engines."""
    _key, sql = WORKLOADS["distributed"][1][2]  # remote_agg
    results = {}
    for engine in ENGINES:
        db = _distributed_db()
        db.add_site("siteC")
        db.catalog.add_replica("Cust", "siteC")
        db.set_fault_plan(
            FaultPlan(down_sites=frozenset({"siteB"})), seed=0,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001),
        )
        config = _regime_config(db, {})
        result = db.sql(sql, config=config, options=Options(engine=engine))
        results[engine] = (result,
                           [(e.site, e.fallback_sites)
                            for e in db.degradation_events])
    base, base_events = results["iterator"]
    vec, vec_events = results["vector"]
    assert vec.rows == base.rows
    assert vec.ledger.as_dict() == base.ledger.as_dict()
    assert vec_events == base_events and base_events
