"""Tests for the Database façade: DDL, DML, scripts, EXPLAIN, errors."""

import pytest

from repro import (
    CatalogError,
    Database,
    DataType,
    OptimizerConfig,
    ReproError,
    SqlSyntaxError,
)


class TestDdl:
    def test_create_table_via_sql(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT, s VARCHAR(20), f FLOAT, b BOOLEAN)")
        table = db.catalog.table("T")
        assert table.schema.names() == ["a", "s", "f", "b"]

    def test_duplicate_table_rejected(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        with pytest.raises(CatalogError):
            db.sql("CREATE TABLE T (a INT)")

    def test_create_view_and_query(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        db.sql("INSERT INTO T VALUES (1), (2), (3)")
        db.sql("CREATE VIEW Big AS SELECT a FROM T WHERE a > 1")
        assert sorted(db.sql("SELECT a FROM Big").rows) == [(2,), (3,)]

    def test_view_name_collision_rejected(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        with pytest.raises(CatalogError):
            db.sql("CREATE VIEW T AS SELECT a FROM T")

    def test_drop_table_and_view(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        db.sql("CREATE VIEW V AS SELECT a FROM T")
        db.sql("DROP VIEW V")
        db.sql("DROP TABLE T")
        assert not db.catalog.has_table("T")
        assert not db.catalog.has_view("V")

    def test_create_index_via_sql(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        db.sql("CREATE INDEX ON T (a)")
        assert db.catalog.table("T").index_on("a") is not None


class TestDml:
    def test_insert_returns_count(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        result = db.sql("INSERT INTO T VALUES (1), (2)")
        assert result.rows == [(2,)]

    def test_insert_type_checked(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        with pytest.raises(CatalogError):
            db.sql("INSERT INTO T VALUES ('nope')")

    def test_null_insert_and_filter(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        db.sql("INSERT INTO T VALUES (1), (NULL)")
        assert db.sql("SELECT a FROM T WHERE a = 1").rows == [(1,)]


class TestScripts:
    def test_script_executes_in_order(self):
        db = Database()
        results = db.execute_script("""
            CREATE TABLE T (a INT, b INT);
            INSERT INTO T VALUES (1, 10), (2, 20), (3, 30);
            SELECT a FROM T WHERE b >= 20 ORDER BY a;
        """)
        assert len(results) == 3
        assert results[2].rows == [(2,), (3,)]

    def test_script_statement_kinds(self):
        db = Database()
        results = db.execute_script(
            "CREATE TABLE T (a INT); INSERT INTO T VALUES (1);"
        )
        assert results[0].statement_kind == "create table"
        assert results[1].statement_kind == "insert"


class TestQueryResult:
    def make(self):
        db = Database()
        db.execute_script("""
            CREATE TABLE T (a INT, b INT);
            INSERT INTO T VALUES (1, 10), (2, 20);
        """)
        db.analyze()
        return db

    def test_columns_and_dicts(self):
        result = self.make().sql("SELECT a, b FROM T ORDER BY a")
        assert result.columns == ["a", "b"]
        assert result.to_dicts() == [{"a": 1, "b": 10}, {"a": 2, "b": 20}]

    def test_iteration_and_len(self):
        result = self.make().sql("SELECT a FROM T")
        assert len(result) == 2
        assert sorted(result) == [(1,), (2,)]

    def test_measured_cost_positive(self):
        result = self.make().sql("SELECT a FROM T")
        assert result.measured_cost() > 0

    def test_metrics_attached(self):
        result = self.make().sql("SELECT a FROM T")
        assert result.metrics is not None
        assert result.metrics.plans_considered >= 1


class TestExplain:
    def test_explain_statement(self):
        db = Database()
        db.execute_script(
            "CREATE TABLE T (a INT); INSERT INTO T VALUES (1);"
        )
        result = db.sql("EXPLAIN SELECT a FROM T")
        assert result.statement_kind == "explain"
        assert any("SeqScan" in row[0] for row in result.rows)

    def test_explain_helper(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        text = db.explain("SELECT a FROM T")
        assert "Project" in text


class TestErrors:
    def test_syntax_error(self):
        with pytest.raises(SqlSyntaxError):
            Database().sql("SELEC a FROM T")

    def test_unsupported_config_validated(self):
        with pytest.raises(ValueError):
            Database(OptimizerConfig(parametric_classes=1))

    def test_config_per_query_override(self):
        db = Database()
        db.execute_script(
            "CREATE TABLE T (a INT); INSERT INTO T VALUES (1);"
        )
        result = db.sql("SELECT a FROM T",
                        config=OptimizerConfig(enable_filter_join=False))
        assert result.rows == [(1,)]


class TestStatsLifecycle:
    def test_stats_lazy_computed(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        db.sql("INSERT INTO T VALUES (1), (2)")
        # no explicit analyze: planning must still work
        assert db.sql("SELECT a FROM T WHERE a = 1").rows == [(1,)]

    def test_analyze_refreshes(self):
        db = Database()
        db.sql("CREATE TABLE T (a INT)")
        db.sql("INSERT INTO T VALUES (1)")
        db.analyze()
        before = db.catalog.stats("T").num_rows
        db.sql("INSERT INTO T VALUES (2), (3)")
        db.analyze("T")
        after = db.catalog.stats("T").num_rows
        assert (before, after) == (1, 3)
