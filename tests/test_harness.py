"""Tests for the experiment harness (report, runners, registry)."""

import pytest

from repro import OptimizerConfig
from repro.harness.report import ExperimentResult, TextTable, format_value
from repro.harness.runners import (
    STRATEGIES,
    frozenset_rows,
    plan_only,
    run_query,
    run_strategies,
)
from repro.workloads import EmpDeptConfig, MOTIVATING_QUERY, fresh_empdept

TINY = EmpDeptConfig(num_departments=20, employees_per_department=8,
                     seed=88)


class TestTextTable:
    def test_render_plain(self):
        table = TextTable(["a", "bb"], title="t")
        table.add_row(1, 2.5)
        text = table.render()
        assert "t" in text and "2.500" in text

    def test_render_markdown(self):
        table = TextTable(["a", "b"])
        table.add_row("x", None)
        text = table.render(markdown=True)
        assert text.startswith("| a")
        assert "| x" in text and "-" in text

    def test_arity_checked(self):
        table = TextTable(["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(0.0) == "0"
        assert format_value(1234.6) == "1235"
        assert format_value(12.34) == "12.3"
        assert format_value(1.2345) == "1.234"
        assert format_value("x") == "x"


class TestExperimentResult:
    def test_render_contains_sections(self):
        result = ExperimentResult("X1", "Title", "Claim text")
        table = TextTable(["c"])
        table.add_row(1)
        result.add_table(table)
        result.add_finding("a finding")
        plain = result.render()
        md = result.render(markdown=True)
        assert "X1" in plain and "Claim text" in plain
        assert "a finding" in plain
        assert md.startswith("## X1")


class TestRunners:
    def test_run_query_returns_estimates_and_measurements(self):
        db = fresh_empdept(TINY)
        measured = run_query(db, MOTIVATING_QUERY)
        assert measured.estimated_cost > 0
        assert measured.measured_cost > 0
        assert measured.metrics.plans_considered > 0
        assert measured.optimize_seconds >= 0

    def test_plan_only_does_not_execute(self):
        db = fresh_empdept(TINY)
        plan, planner, seconds = plan_only(db, MOTIVATING_QUERY)
        assert plan.est_cost > 0
        assert seconds >= 0

    def test_run_strategies_checks_agreement(self):
        db = fresh_empdept(TINY)
        outputs = run_strategies(db, MOTIVATING_QUERY)
        assert set(outputs) == set(STRATEGIES)
        row_sets = {frozenset_rows(m.rows) for m in outputs.values()}
        assert len(row_sets) == 1

    def test_frozenset_rows_preserves_duplicates(self):
        assert frozenset_rows([(1,), (1,)]) != frozenset_rows([(1,)])
        assert frozenset_rows([(1,), (2,)]) == frozenset_rows([(2,), (1,)])


class TestRegistry:
    def test_all_experiments_have_contract(self):
        from repro.harness.experiments import ALL_EXPERIMENTS
        seen_ids = set()
        for module in ALL_EXPERIMENTS:
            assert module.EXPERIMENT_ID not in seen_ids
            seen_ids.add(module.EXPERIMENT_ID)
            assert module.TITLE
            assert module.PAPER_CLAIM
            assert callable(module.run)

    def test_registry_covers_design_index(self):
        from repro.harness.experiments import ALL_EXPERIMENTS
        ids = {m.EXPERIMENT_ID for m in ALL_EXPERIMENTS}
        for required in ("F1/F2", "F3", "T1", "F4", "F5", "F6",
                         "C1", "C2", "C3", "C4", "C5", "C6", "C7",
                         "E1", "E2", "E3"):
            assert required in ids


class TestExperimentSmoke:
    """Fast experiments run end-to-end in quick mode."""

    @pytest.mark.parametrize("module_name", [
        "table1", "c5_udf", "fig4",
    ])
    def test_quick_run_produces_tables(self, module_name):
        import importlib
        module = importlib.import_module(
            "repro.harness.experiments.%s" % module_name
        )
        result = module.run(quick=True)
        assert result.tables
        assert result.findings
        assert result.render(markdown=True)


class TestCompareCli:
    def test_compare_runs_and_agrees(self, tmp_path):
        from repro.harness.compare import main

        setup = tmp_path / "setup.sql"
        setup.write_text("""
            CREATE TABLE A (x INT, y INT);
            CREATE TABLE B (x INT, z INT);
            CREATE VIEW VAgg AS (
                SELECT B.x, COUNT(*) AS n FROM B GROUP BY B.x);
            INSERT INTO A VALUES (1, 10), (2, 20), (1, 30);
            INSERT INTO B VALUES (1, 0), (1, 1), (3, 2);
        """)
        import contextlib, io
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = main([
                "SELECT A.y, V.n FROM A, VAgg V WHERE A.x = V.x",
                "--setup", str(setup),
            ])
        assert code == 0
        text = out.getvalue()
        assert "Strategy comparison" in text
        assert "cost-based" in text
        assert "Cost-based plan:" in text
