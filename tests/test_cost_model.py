"""Unit tests for the optimizer's cost formulas (optimizer.cost)."""

import pytest

from repro.ledger import CostParams
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.cost import CostModel


def model(memory_pages=16, **config_kwargs):
    return CostModel(OptimizerConfig(memory_pages=memory_pages,
                                     **config_kwargs))


class TestScans:
    def test_seq_scan_charges_pages_and_cpu(self):
        ledger = model().seq_scan(10, 500)
        assert ledger.page_reads == 10
        assert ledger.tuple_cpu == 500

    def test_empty_table_still_one_page(self):
        assert model().seq_scan(0, 0).page_reads == 1.0

    def test_index_probe_unclustered_uses_yao(self):
        m = model()
        few = m.index_probe(10_000, 100, 5).page_reads
        many = m.index_probe(10_000, 100, 500).page_reads
        assert few < many <= 101.0

    def test_index_probe_clustered_contiguous(self):
        m = model()
        clustered = m.index_probe(10_000, 100, 500, clustered=True,
                                  row_width=40).page_reads
        scattered = m.index_probe(10_000, 100, 500).page_reads
        assert clustered < scattered


class TestMaterializeAndSort:
    def test_materialize_in_memory_no_io(self):
        ledger = model(memory_pages=100).materialize(100, 40)
        assert ledger.page_writes == 0
        assert ledger.tuple_cpu == 100

    def test_materialize_spills(self):
        ledger = model(memory_pages=4).materialize(100_000, 40)
        assert ledger.page_writes > 4

    def test_rescan_mirrors_materialize(self):
        m = model(memory_pages=4)
        write = m.materialize(100_000, 40)
        read = m.rescan(100_000, 40)
        assert read.page_reads == pytest.approx(write.page_writes)

    def test_sort_in_memory_cpu_only(self):
        ledger = model(memory_pages=1000).sort(1000, 8)
        assert ledger.page_reads == 0
        assert ledger.tuple_cpu > 1000  # n log n

    def test_sort_external_charges_passes(self):
        ledger = model(memory_pages=4).sort(200_000, 40)
        assert ledger.page_reads > 0
        assert ledger.page_writes == ledger.page_reads

    def test_dedup_sorted_discount(self):
        m = model()
        assert m.dedup(1000, sorted_input=True).tuple_cpu < \
            m.dedup(1000, sorted_input=False).tuple_cpu


class TestJoins:
    def test_hash_join_no_spill_in_memory(self):
        ledger = model(memory_pages=100).hash_join(100, 16, 100, 50)
        assert ledger.page_reads == 0
        assert ledger.page_writes == 0

    def test_hash_join_spill_charges_both_sides(self):
        ledger = model(memory_pages=2).hash_join(50_000, 40, 50_000, 100)
        assert ledger.page_writes > 0
        assert ledger.page_reads == ledger.page_writes

    def test_nlj_cpu_quadratic(self):
        m = model()
        small = m.block_nested_loops(10, 8, 10, 8, 5).tuple_cpu
        big = m.block_nested_loops(100, 8, 100, 8, 5).tuple_cpu
        assert big > small * 50  # ~quadratic growth

    def test_merge_join_linear(self):
        ledger = model().merge_join(1000, 1000, 100)
        assert ledger.tuple_cpu == 2100

    def test_inl_scales_with_outer(self):
        m = model()
        one = m.index_nested_loops(1, 10_000, 100, 5, 5)
        hundred = m.index_nested_loops(100, 10_000, 100, 5, 500)
        assert hundred.page_reads == pytest.approx(
            one.page_reads * 100, rel=0.01)


class TestNetworkAndFunctions:
    def test_ship_message_count(self):
        config = OptimizerConfig(message_payload_bytes=1000)
        m = CostModel(config)
        ledger = m.ship(100, 25)  # 2500 bytes -> 3 messages
        assert ledger.net_msgs == 3
        assert ledger.net_bytes == 2500

    def test_ship_minimum_one_message(self):
        assert model().ship(0, 10).net_msgs == 1

    def test_ship_bloom_fixed_size(self):
        config = OptimizerConfig(bloom_bits=8 * 1024)
        ledger = CostModel(config).ship_bloom()
        assert ledger.net_bytes == 1024
        assert ledger.net_msgs == 1

    def test_function_invocations_locality(self):
        m = model()
        plain = m.function_invocations(10, 2.0)
        discounted = m.function_invocations(10, 2.0, consecutive=True,
                                            locality_factor=0.5)
        assert discounted.fn_invocations == plain.fn_invocations / 2


class TestBloomFpr:
    def test_fpr_monotone_in_keys(self):
        m = model()
        rates = [m.bloom_false_positive_rate(n)
                 for n in (10, 100, 1000, 100_000)]
        assert rates == sorted(rates)
        assert 0.0 <= rates[0] < rates[-1] <= 1.0

    def test_fpr_zero_for_empty(self):
        assert model().bloom_false_positive_rate(0) == 0.0

    def test_bigger_filter_lower_fpr(self):
        small = CostModel(OptimizerConfig(bloom_bits=512))
        large = CostModel(OptimizerConfig(bloom_bits=1024 * 1024))
        assert large.bloom_false_positive_rate(1000) < \
            small.bloom_false_positive_rate(1000)


class TestScalar:
    def test_scalar_uses_params(self):
        params = CostParams(page_read_weight=2.0, tuple_cpu_weight=0.0)
        config = OptimizerConfig(cost_params=params)
        m = CostModel(config)
        ledger = m.seq_scan(10, 1000)
        assert m.scalar(ledger) == 20.0
