"""Seeded concurrent-schedule differential: the engine's MVCC vs an
independent snapshot-isolation interpreter, over 200+ random schedules.

Each seed generates 2-4 sessions, each running a program of explicit
transactions (reads, predicate updates, deletes, inserts, ending in
COMMIT or ROLLBACK, some under ``read-committed``). The driver
interleaves the programs statement by statement — the engine executes
statements atomically under the database lock, so statement granularity
is exactly the real concurrency model — and checks, at every step,
against :class:`SIOracle`, a ~60-line dict-based interpreter of
snapshot isolation with first-committer-wins:

- every read returns exactly the oracle's snapshot view (no dirty
  reads, no non-repeatable reads, no phantoms — and no *missing* rows
  either: the check is equality, not containment);
- every update/delete reports the same matched-row count;
- a ``SerializationError`` is raised when and only when the oracle
  declares a write-write conflict (lost updates are impossible; write
  skew is permitted by both sides, by construction);
- after all programs finish, the committed table state matches the
  oracle's committed store exactly, and the MVCC machinery is fully
  drained (no live snapshots, no unfrozen commits, no version-tracking
  leaks).

The oracle is deliberately primitive — deep-copied dict snapshots, a
lock table, commit stamps — so that any divergence indicts the engine's
clever representation (version chains, freeze horizons, visible-row
caches), not the spec.
"""

import random

import pytest

from repro import Database, DataType, Options, SerializationError

N_SEEDS = 220
BASE_ROWS = [(i, 10 * i) for i in range(1, 9)]


# ------------------------------------------------------------- the oracle

class Conflict(Exception):
    """The oracle's verdict: this write must raise SerializationError."""


class SIOracle:
    """Snapshot isolation over a dict, first-committer-wins, no-wait.

    State: ``committed`` (id -> val), ``stamps`` (id -> commit sequence
    of the last committed write), ``locks`` (id -> session holding an
    uncommitted write), and per-open-transaction views.
    """

    def __init__(self, rows):
        self.committed = dict(rows)
        self.stamps = {}
        self.seq = 0
        self.locks = {}
        self.txns = {}

    # -- lifecycle

    def begin(self, key, mode="snapshot"):
        self.txns[key] = {
            "view": dict(self.committed),
            "seq": self.seq,
            "mode": mode,
            "writes": set(),
        }

    def commit(self, key):
        txn = self.txns.pop(key)
        self.seq += 1
        for row_id in txn["writes"]:
            del self.locks[row_id]
            self.stamps[row_id] = self.seq
            if row_id in txn["view"]:
                self.committed[row_id] = txn["view"][row_id]
            else:
                self.committed.pop(row_id, None)

    def rollback(self, key):
        txn = self.txns.pop(key)
        for row_id in txn["writes"]:
            del self.locks[row_id]

    # -- statements

    def _view(self, key):
        """The statement-time view: pinned for snapshot transactions,
        refreshed (committed + own writes) under read-committed."""
        txn = self.txns[key]
        if txn["mode"] == "read-committed":
            view = dict(self.committed)
            for row_id in txn["writes"]:
                if row_id in txn["view"]:
                    view[row_id] = txn["view"][row_id]
                else:
                    view.pop(row_id, None)
            txn["view"] = view
        return txn["view"]

    def read(self, key, pred):
        return sorted((i, v) for i, v in self._view(key).items()
                      if pred(i, v))

    def _check_writable(self, key, matched):
        """First-committer-wins over the rows this statement matched."""
        txn = self.txns[key]
        for row_id in matched:
            holder = self.locks.get(row_id)
            if holder is not None and holder != key:
                raise Conflict(row_id)
            if txn["mode"] != "read-committed" and \
                    self.stamps.get(row_id, 0) > txn["seq"]:
                raise Conflict(row_id)

    def update(self, key, pred, value):
        txn = self.txns[key]
        view = self._view(key)
        matched = [i for i, v in view.items() if pred(i, v)]
        self._check_writable(key, matched)
        for row_id in matched:
            view[row_id] = value
            self.locks[row_id] = key
            txn["writes"].add(row_id)
        return len(matched)

    def delete(self, key, pred):
        txn = self.txns[key]
        view = self._view(key)
        matched = [i for i, v in view.items() if pred(i, v)]
        self._check_writable(key, matched)
        for row_id in matched:
            del view[row_id]
            self.locks[row_id] = key
            txn["writes"].add(row_id)
        return len(matched)

    def insert(self, key, row_id, value):
        txn = self.txns[key]
        self._view(key)[row_id] = value
        self.locks[row_id] = key
        txn["writes"].add(row_id)


# ------------------------------------------------------ schedule generator

def _predicate(rng):
    """A (sql, lambda) pair over (id, val) — generated together so the
    engine and the oracle evaluate the same condition."""
    kind = rng.randrange(4)
    if kind == 0:
        k = rng.randint(1, 10)
        return "id = %d" % k, (lambda i, v, k=k: i == k)
    if kind == 1:
        k = rng.randint(1, 9)
        return "id >= %d" % k, (lambda i, v, k=k: i >= k)
    if kind == 2:
        k = rng.randint(2, 9)
        return "id < %d" % k, (lambda i, v, k=k: i < k)
    x = rng.randint(0, 120)
    return "val < %d" % x, (lambda i, v, x=x: v < x)


def generate_programs(seed):
    """Per-session statement programs: [[action, ...], ...]."""
    rng = random.Random(seed)
    n_sessions = rng.randint(2, 4)
    programs = []
    for session in range(n_sessions):
        program = []
        insert_ids = iter(range((session + 1) * 1000,
                                (session + 1) * 1000 + 50))
        for _ in range(rng.randint(1, 3)):
            mode = ("read-committed" if rng.random() < 0.2
                    else "snapshot")
            program.append(("begin", mode))
            for _ in range(rng.randint(1, 5)):
                roll = rng.random()
                if roll < 0.35:
                    program.append(("read",) + _predicate(rng))
                elif roll < 0.70:
                    program.append(("update",) + _predicate(rng)
                                   + (rng.randint(0, 99),))
                elif roll < 0.85:
                    program.append(("delete",) + _predicate(rng))
                else:
                    program.append(("insert", next(insert_ids),
                                    rng.randint(0, 99)))
            program.append(("commit",) if rng.random() < 0.7
                           else ("rollback",))
        programs.append(program)
    return programs, rng


# ------------------------------------------------------------- the driver

def drive(seed):
    programs, rng = generate_programs(seed)
    db = Database()
    db.create_table("acct", [("id", DataType.INT),
                             ("val", DataType.INT)])
    db.insert("acct", BASE_ROWS)
    oracle = SIOracle(BASE_ROWS)
    sessions = [db.new_session("w%d" % i) for i in range(len(programs))]
    cursors = [0] * len(programs)
    in_txn = [False] * len(programs)

    def step(at):
        action = programs[at][cursors[at]]
        cursors[at] += 1
        session, key = sessions[at], at
        kind = action[0]
        if kind == "begin":
            session.sql("BEGIN", options=Options(isolation=action[1]))
            oracle.begin(key, action[1])
            in_txn[at] = True
        elif kind == "commit":
            session.sql("COMMIT")
            oracle.commit(key)
            in_txn[at] = False
        elif kind == "rollback":
            session.sql("ROLLBACK")
            oracle.rollback(key)
            in_txn[at] = False
        elif kind == "read":
            _, sql, pred = action
            got = sorted(session.sql(
                "SELECT id, val FROM acct WHERE %s" % sql).rows)
            expected = oracle.read(key, pred)
            assert got == expected, (
                "seed %d session %d read %r: engine %r != oracle %r"
                % (seed, at, sql, got, expected))
        elif kind == "insert":
            _, row_id, value = action
            session.sql("INSERT INTO acct VALUES (%d, %d)"
                        % (row_id, value))
            oracle.insert(key, row_id, value)
        else:
            if kind == "update":
                _, sql, pred, value = action
                stmt = "UPDATE acct SET val = %d WHERE %s" % (value, sql)
            else:
                _, sql, pred = action
                stmt = "DELETE FROM acct WHERE %s" % sql
            try:
                expected = (oracle.update(key, pred, value)
                            if kind == "update"
                            else oracle.delete(key, pred))
            except Conflict:
                with pytest.raises(SerializationError):
                    session.sql(stmt)
                # the engine aborts the transaction; both sides roll
                # back and the rest of this transaction is skipped
                session.sql("ROLLBACK")
                oracle.rollback(key)
                in_txn[at] = False
                program = programs[at]
                while cursors[at] < len(program) and \
                        program[cursors[at]][0] != "begin":
                    cursors[at] += 1
                return
            got = session.sql(stmt).rows[0][0]
            assert got == expected, (
                "seed %d session %d %r: engine matched %d, oracle %d"
                % (seed, at, stmt, got, expected))

    while True:
        ready = [i for i in range(len(programs))
                 if cursors[i] < len(programs[i])]
        if not ready:
            break
        step(rng.choice(ready))

    # no transaction left open, by construction
    assert not any(in_txn)
    final = sorted(db.sql("SELECT id, val FROM acct").rows)
    assert final == sorted(oracle.committed.items()), (
        "seed %d final state: engine %r != oracle %r"
        % (seed, final, sorted(oracle.committed.items())))
    # the MVCC machinery must be fully drained
    mvcc = db.txn.status()["mvcc"]
    assert mvcc["live"] == []
    assert mvcc["unfrozen_commits"] == 0
    table = db.catalog.table("acct")
    assert not table._writers and not table._deleters
    for session in sessions:
        session.close()


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_concurrent_schedule_matches_si_oracle(seed):
    drive(seed)


def test_schedules_exercise_conflicts_and_commits():
    """Meta-check: across all seeds the generator actually produces
    conflicts, commits, rollbacks, and both isolation modes — a
    differential that never hits a conflict proves nothing."""
    conflicts = commits = rollbacks = rc = 0
    for seed in range(N_SEEDS):
        programs, _ = generate_programs(seed)
        for program in programs:
            for action in program:
                if action[0] == "commit":
                    commits += 1
                elif action[0] == "rollback":
                    rollbacks += 1
                elif action[0] == "begin" and \
                        action[1] == "read-committed":
                    rc += 1
    # conflicts can only be counted by driving; sample a band of seeds
    for seed in range(40):
        programs, rng = generate_programs(seed)
        oracle = SIOracle(BASE_ROWS)
        db = Database()
        db.create_table("acct", [("id", DataType.INT),
                                 ("val", DataType.INT)])
        db.insert("acct", BASE_ROWS)
        sessions = [db.new_session() for _ in programs]
        cursors = [0] * len(programs)
        try:
            while any(c < len(p) for c, p in zip(cursors, programs)):
                ready = [i for i in range(len(programs))
                         if cursors[i] < len(programs[i])]
                at = rng.choice(ready)
                action = programs[at][cursors[at]]
                cursors[at] += 1
                try:
                    if action[0] == "begin":
                        sessions[at].sql(
                            "BEGIN",
                            options=Options(isolation=action[1]))
                    elif action[0] == "commit":
                        sessions[at].sql("COMMIT")
                    elif action[0] == "rollback":
                        sessions[at].sql("ROLLBACK")
                    elif action[0] == "read":
                        sessions[at].sql(
                            "SELECT id FROM acct WHERE %s" % action[1])
                    elif action[0] == "update":
                        sessions[at].sql(
                            "UPDATE acct SET val = %d WHERE %s"
                            % (action[3], action[1]))
                    elif action[0] == "delete":
                        sessions[at].sql(
                            "DELETE FROM acct WHERE %s" % action[1])
                    else:
                        sessions[at].sql(
                            "INSERT INTO acct VALUES (%d, %d)"
                            % (action[1], action[2]))
                except SerializationError:
                    conflicts += 1
                    sessions[at].sql("ROLLBACK")
                    while cursors[at] < len(programs[at]) and \
                            programs[at][cursors[at]][0] != "begin":
                        cursors[at] += 1
        finally:
            for session in sessions:
                session.close()
    assert commits > 200 and rollbacks > 50
    assert rc > 10, "read-committed mode never generated"
    assert conflicts > 3, "schedules too tame: no conflicts observed"
