"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.parser import parse, parse_script, parse_select


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_select("SELECT a, b FROM T")
        assert len(stmt.select_items) == 2
        assert isinstance(stmt.from_items[0], ast.AstTableRef)
        assert stmt.from_items[0].name == "T"

    def test_star(self):
        stmt = parse_select("SELECT * FROM T")
        assert stmt.select_items[0].star

    def test_aliases(self):
        stmt = parse_select("SELECT a AS x, b y FROM T u")
        assert stmt.select_items[0].alias == "x"
        assert stmt.select_items[1].alias == "y"
        assert stmt.from_items[0].alias == "u"

    def test_where_precedence(self):
        stmt = parse_select("SELECT a FROM T WHERE a = 1 OR b = 2 AND c = 3")
        where = stmt.where
        assert isinstance(where, ast.AstBoolean)
        assert where.op == "OR"
        assert isinstance(where.args[1], ast.AstBoolean)
        assert where.args[1].op == "AND"

    def test_not(self):
        stmt = parse_select("SELECT a FROM T WHERE NOT a = 1")
        assert stmt.where.op == "NOT"

    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT a FROM T WHERE a + 2 * 3 = 7")
        comparison = stmt.where
        left = comparison.left
        assert isinstance(left, ast.AstArithmetic)
        assert left.op == "+"
        assert isinstance(left.right, ast.AstArithmetic)
        assert left.right.op == "*"

    def test_parenthesized_expression(self):
        stmt = parse_select("SELECT a FROM T WHERE (a + 2) * 3 = 7")
        assert stmt.where.left.op == "*"

    def test_group_by_having(self):
        stmt = parse_select(
            "SELECT d, AVG(s) FROM T GROUP BY d HAVING AVG(s) > 10"
        )
        assert stmt.group_by[0].name == "d"
        assert isinstance(stmt.having, ast.AstComparison)

    def test_count_star(self):
        stmt = parse_select("SELECT COUNT(*) FROM T")
        call = stmt.select_items[0].expr
        assert isinstance(call, ast.AstFuncCall)
        assert call.star
        assert call.name == "count"

    def test_order_by(self):
        stmt = parse_select("SELECT a FROM T ORDER BY a DESC, b")
        assert stmt.order_by[0][1] is False
        assert stmt.order_by[1][1] is True

    def test_limit(self):
        assert parse_select("SELECT a FROM T LIMIT 5").limit == 5

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM T").distinct

    def test_subquery_in_from(self):
        stmt = parse_select("SELECT x.a FROM (SELECT a FROM T) x")
        sub = stmt.from_items[0]
        assert isinstance(sub, ast.AstSubqueryRef)
        assert sub.alias == "x"

    def test_qualified_columns(self):
        stmt = parse_select("SELECT E.did FROM Emp E WHERE E.age < 30")
        assert stmt.select_items[0].expr == ast.AstColumn("E", "did")

    def test_negative_literal(self):
        stmt = parse_select("SELECT a FROM T WHERE a > -5")
        assert stmt.where.right == ast.AstLiteral(-5)

    def test_string_and_bool_literals(self):
        stmt = parse_select(
            "SELECT a FROM T WHERE s = 'x' AND f = TRUE AND g = FALSE"
        )
        args = stmt.where.args
        assert args[0].right == ast.AstLiteral("x")
        assert args[1].right == ast.AstLiteral(True)
        assert args[2].right == ast.AstLiteral(False)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM T extra stuff ~")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT a")


class TestDdlParsing:
    def test_create_table(self):
        stmt = parse("CREATE TABLE T (a INT, b VARCHAR(10), c FLOAT)")
        assert isinstance(stmt, ast.CreateTableStmt)
        assert [(c.name, c.type_name) for c in stmt.columns] == [
            ("a", "int"), ("b", "str"), ("c", "float"),
        ]

    def test_create_view_captures_text(self):
        stmt = parse("CREATE VIEW V AS (SELECT a FROM T)")
        assert isinstance(stmt, ast.CreateViewStmt)
        assert stmt.select_text.startswith("SELECT")
        assert "FROM T" in stmt.select_text

    def test_create_view_column_aliases(self):
        stmt = parse("CREATE VIEW V (x, y) AS SELECT a, b FROM T")
        assert stmt.column_aliases == ["x", "y"]

    def test_create_index(self):
        stmt = parse("CREATE INDEX ON T (a) sorted")
        assert isinstance(stmt, ast.CreateIndexStmt)
        assert (stmt.table, stmt.column, stmt.kind) == ("T", "a", "sorted")

    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO T VALUES (1, 'a'), (2, NULL)")
        assert stmt.rows == [[1, "a"], [2, None]]

    def test_insert_negative_number(self):
        stmt = parse("INSERT INTO T VALUES (-3, -2.5)")
        assert stmt.rows == [[-3, -2.5]]

    def test_drop(self):
        assert parse("DROP TABLE T").kind == "table"
        assert parse("DROP VIEW V").kind == "view"

    def test_explain(self):
        stmt = parse("EXPLAIN SELECT a FROM T")
        assert isinstance(stmt, ast.ExplainStmt)


class TestScripts:
    def test_multiple_statements(self):
        script = """
        CREATE TABLE T (a INT);
        INSERT INTO T VALUES (1);
        SELECT a FROM T;
        """
        statements = parse_script(script)
        assert len(statements) == 3
        assert isinstance(statements[2], ast.SelectStmt)

    def test_empty_script(self):
        assert parse_script("") == []

    def test_semicolons_optional_at_end(self):
        assert len(parse_script("SELECT a FROM T")) == 1
