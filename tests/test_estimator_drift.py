"""Estimator accuracy and drift-report tests.

Two claims: (1) after ``analyze``, per-operator cardinality estimates on
the trained EmpDept/star workloads stay within documented q-error
bounds — base-table scans are near-exact (the histograms were built
from exactly this data), whole plans stay within an order of magnitude
even through aggregation views; (2) when a table's statistics go stale
(grown and skewed after the last ``analyze``), ``drift_report()`` ranks
its operators first, so the report genuinely names where to point the
next ``analyze``.
"""

import pytest

from repro import Database, DataType
from repro.obs.drift import DriftRecorder, DriftSample
from repro.obs.trace import q_error
from repro.workloads import (
    EmpDeptConfig,
    MOTIVATING_QUERY,
    StarConfig,
    fresh_empdept,
    fresh_star,
)

#: scan estimates on freshly-analyzed data must be near-exact
SCAN_Q_BOUND = 1.5
#: whole-plan bound on EmpDept (filter-set assumptions add slack)
EMPDEPT_Q_BOUND = 5.0
#: whole-plan bound on star (group-count estimates through views)
STAR_Q_BOUND = 20.0

EMPDEPT_QUERIES = [
    MOTIVATING_QUERY,
    "SELECT E.eid, E.sal FROM Emp E WHERE E.age < 30",
    "SELECT E.eid, D.budget FROM Emp E, Dept D "
    "WHERE E.did = D.did AND D.budget > 100000",
    "SELECT E.did, AVG(E.sal) AS avgsal FROM Emp E GROUP BY E.did",
]

STAR_QUERIES = [
    "SELECT C.region, V.total_spend FROM Customer C, CustSpend V "
    "WHERE C.cust_id = V.cust_id AND C.segment = 1",
    "SELECT C.region, SUM(S.amount) AS revenue "
    "FROM Sales S, Customer C WHERE S.cust_id = C.cust_id "
    "GROUP BY C.region",
    "SELECT P.category, V.total_qty FROM Product P, ProductVolume V "
    "WHERE P.prod_id = V.prod_id AND P.price > 400",
]


def _scan_q_errors(trace):
    return [
        span.q_error for span in trace.operator_spans()
        if span.node_type == "SeqScanNode" and span.q_error is not None
    ]


class TestQErrorFunction:
    def test_symmetric_and_clamped(self):
        assert q_error(10, 10) == 1.0
        assert q_error(10, 40) == 4.0
        assert q_error(40, 10) == 4.0
        # sub-row estimates and zero actuals clamp to 1 instead of
        # dividing by zero
        assert q_error(0.3, 0) == 1.0
        assert q_error(0, 100) == 100.0


class TestTrainedWorkloadBounds:
    @pytest.fixture(scope="class")
    def empdept(self):
        return fresh_empdept(EmpDeptConfig(
            num_departments=40, employees_per_department=15,
            big_fraction=0.2, young_fraction=0.3, seed=11,
        ))

    @pytest.fixture(scope="class")
    def star(self):
        return fresh_star(StarConfig(num_sales=1500, seed=7))

    def test_empdept_q_errors_bounded(self, empdept):
        for query in EMPDEPT_QUERIES:
            trace = empdept.sql(query, trace=True).trace
            assert trace.max_q_error <= EMPDEPT_Q_BOUND, query
            for q in _scan_q_errors(trace):
                assert q <= SCAN_Q_BOUND, query

    def test_star_q_errors_bounded(self, star):
        for query in STAR_QUERIES:
            trace = star.sql(query, trace=True).trace
            assert trace.max_q_error <= STAR_Q_BOUND, query
            for q in _scan_q_errors(trace):
                assert q <= SCAN_Q_BOUND, query

    def test_drift_report_reflects_trained_accuracy(self, empdept):
        empdept.drift.clear()
        for query in EMPDEPT_QUERIES:
            empdept.sql(query, trace=True)
        report = empdept.drift_report()
        assert report.groups, "traced queries must populate the recorder"
        assert report.worst.max_q_error <= EMPDEPT_Q_BOUND
        # a report renders with its ranking columns
        text = report.render()
        assert "max q-err" in text and "rank" in text


class TestMisstatedTableRanking:
    def _db_with_stale_table(self):
        db = Database()
        db.create_table("Good", [("a", DataType.INT),
                                 ("b", DataType.INT)])
        db.create_table("Stale", [("a", DataType.INT),
                                  ("b", DataType.INT)])
        rows = [(i % 10, i % 7) for i in range(100)]
        db.insert("Good", rows)
        db.insert("Stale", rows)
        db.analyze()
        # grow + skew Stale *after* analyze: its statistics now
        # deliberately mis-state the data
        db.insert("Stale", [(3, i % 7) for i in range(2000)])
        return db

    def test_drift_report_ranks_misstated_table_first(self):
        db = self._db_with_stale_table()
        for _ in range(3):
            db.sql("SELECT G.b FROM Good G WHERE G.a = 3", trace=True)
            db.sql("SELECT S.b FROM Stale S WHERE S.a = 3", trace=True)
        report = db.drift_report()
        assert report.worst is not None
        # the top group references the stale table (its Project span
        # shares the scan's q-error and may win the alphabetical
        # tie-break, hence alias-or-name)
        assert "Stale" in report.worst.operator or \
            "(S." in report.worst.operator
        assert any("Stale" in g.operator for g in report.groups[:2])
        assert report.worst.max_q_error > 10
        # every group naming the fresh table ranks strictly below every
        # group naming the stale one
        ranks = {g.operator: i for i, g in enumerate(report.groups)}
        stale_ranks = [i for op, i in ranks.items() if "Stale" in op
                       or "(S." in op]
        good_ranks = [i for op, i in ranks.items() if "Good" in op
                      or "(G." in op]
        assert stale_ranks and good_ranks
        assert max(stale_ranks) < min(good_ranks)

    def test_reanalyze_restores_accuracy(self):
        db = self._db_with_stale_table()
        db.sql("SELECT S.b FROM Stale S WHERE S.a = 3", trace=True)
        assert db.drift_report().worst.max_q_error > 10
        db.analyze()
        db.drift.clear()
        trace = db.sql("SELECT S.b FROM Stale S WHERE S.a = 3",
                       trace=True).trace
        assert trace.max_q_error <= SCAN_Q_BOUND


class TestRecorderMechanics:
    def test_ring_buffer_evicts_oldest(self):
        recorder = DriftRecorder(window=3)
        for i in range(5):
            recorder.record(DriftSample(
                "op%d" % i, "SeqScanNode", "q", est_rows=10,
                actual_rows=10 * (i + 1),
            ))
        assert len(recorder) == 3
        report = recorder.report()
        names = {g.operator for g in report.groups}
        assert names == {"op2", "op3", "op4"}

    def test_ranking_breaks_ties_by_mean(self):
        recorder = DriftRecorder()
        # same max q-error (4.0) but different means
        for actual in (40, 40):
            recorder.record(DriftSample("hot", "T", "q", 10, actual))
        for actual in (40, 10):
            recorder.record(DriftSample("cool", "T", "q", 10, actual))
        groups = recorder.report().groups
        assert [g.operator for g in groups] == ["hot", "cool"]

    def test_empty_report_renders(self):
        report = DriftRecorder().report()
        assert report.worst is None
        assert "no traced queries" in report.render()
        assert report.empty
        assert report.as_dict()["empty"] is True

    def test_group_mean_q_error_with_zero_samples(self):
        from repro.obs.drift import DriftGroup

        group = DriftGroup("SeqScan(T)", "SeqScanNode")
        assert group.samples == 0
        # the zero-sample mean is the neutral q-error, not a ZeroDivision
        assert group.mean_q_error == 1.0
        assert group.as_dict()["mean_q_error"] == 1.0

    def test_populated_report_not_empty(self):
        recorder = DriftRecorder()
        recorder.record(DriftSample("op", "T", "q", 10, 20))
        report = recorder.report()
        assert not report.empty
        assert "no traced queries" not in report.render()
