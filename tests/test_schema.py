"""Unit tests for storage.schema."""

import pytest

from repro.errors import CatalogError
from repro.storage.schema import Column, DataType, Schema


def make_schema():
    return Schema.of(("did", DataType.INT), ("name", DataType.STR),
                     ("budget", DataType.FLOAT), ("active", DataType.BOOL))


class TestDataType:
    def test_coerce_int(self):
        assert DataType.INT.coerce(7) == 7
        assert DataType.INT.coerce(7.0) == 7

    def test_coerce_float_from_int(self):
        assert DataType.FLOAT.coerce(3) == 3.0
        assert isinstance(DataType.FLOAT.coerce(3), float)

    def test_coerce_none_passes_through(self):
        for dtype in DataType:
            assert dtype.coerce(None) is None

    def test_coerce_bool_rejects_int(self):
        with pytest.raises(CatalogError):
            DataType.BOOL.coerce(1)

    def test_coerce_int_rejects_bool(self):
        with pytest.raises(CatalogError):
            DataType.INT.coerce(True)

    def test_coerce_str_rejects_number(self):
        with pytest.raises(CatalogError):
            DataType.STR.coerce(12)

    def test_coerce_int_rejects_text(self):
        with pytest.raises(CatalogError):
            DataType.INT.coerce("twelve")

    def test_default_widths(self):
        assert DataType.INT.default_width == 4
        assert DataType.FLOAT.default_width == 8
        assert DataType.BOOL.default_width == 1


class TestColumn:
    def test_width_defaults_from_type(self):
        assert Column("x", DataType.INT).width == 4

    def test_explicit_width_kept(self):
        assert Column("x", DataType.STR, width=100).width == 100

    def test_renamed_preserves_type_and_width(self):
        col = Column("x", DataType.STR, width=64).renamed("y")
        assert col.name == "y"
        assert col.dtype == DataType.STR
        assert col.width == 64


class TestSchema:
    def test_len_and_names(self):
        schema = make_schema()
        assert len(schema) == 4
        assert schema.names() == ["did", "name", "budget", "active"]

    def test_index_of(self):
        schema = make_schema()
        assert schema.index_of("did") == 0
        assert schema.index_of("active") == 3

    def test_index_of_unknown_raises(self):
        with pytest.raises(CatalogError):
            make_schema().index_of("nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            Schema.of(("a", DataType.INT), ("a", DataType.INT))

    def test_row_width_sums_columns(self):
        schema = Schema.of(("a", DataType.INT), ("b", DataType.FLOAT))
        assert schema.row_width() == 12

    def test_row_width_never_zero(self):
        assert Schema(()).row_width() == 1

    def test_project_reorders(self):
        schema = make_schema().project(["budget", "did"])
        assert schema.names() == ["budget", "did"]
        assert schema.column("budget").dtype == DataType.FLOAT

    def test_concat(self):
        left = Schema.of(("a", DataType.INT))
        right = Schema.of(("b", DataType.INT))
        assert left.concat(right).names() == ["a", "b"]

    def test_concat_collision_raises(self):
        left = Schema.of(("a", DataType.INT))
        with pytest.raises(CatalogError):
            left.concat(left)

    def test_qualified(self):
        schema = Schema.of(("a", DataType.INT)).qualified("T")
        assert schema.names() == ["T.a"]

    def test_validate_row_coerces(self):
        schema = Schema.of(("a", DataType.INT), ("b", DataType.FLOAT))
        assert schema.validate_row([1, 2]) == (1, 2.0)

    def test_validate_row_arity_mismatch(self):
        schema = Schema.of(("a", DataType.INT))
        with pytest.raises(CatalogError):
            schema.validate_row([1, 2])

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())

    def test_has_column(self):
        schema = make_schema()
        assert schema.has_column("name")
        assert not schema.has_column("xyz")
