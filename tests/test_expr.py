"""Unit + property tests for the expression language."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BindError, ExecutionError
from repro.expr.aggregates import Accumulator, AggregateSpec
from repro.expr.nodes import (
    Arithmetic,
    BooleanExpr,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    RuntimeMembership,
    conjoin,
    conjuncts,
    is_equijoin,
)
from repro.storage.schema import DataType, Schema

SCHEMA = Schema.of(("a", DataType.INT), ("b", DataType.INT),
                   ("s", DataType.STR))


def run(expr: Expr, row):
    return expr.resolve(SCHEMA).eval(row)


class TestBasicEval:
    def test_column_and_literal(self):
        assert run(ColumnRef("b"), (1, 2, "x")) == 2
        assert run(Literal(5), (0, 0, "")) == 5

    def test_comparisons(self):
        expr = Comparison("<", ColumnRef("a"), ColumnRef("b"))
        assert run(expr, (1, 2, "")) is True
        assert run(expr, (2, 1, "")) is False

    def test_all_comparison_ops(self):
        cases = {"=": False, "!=": True, "<": True, "<=": True,
                 ">": False, ">=": False}
        for op, expected in cases.items():
            expr = Comparison(op, Literal(1), Literal(2))
            assert run(expr, ()) is expected, op

    def test_arithmetic(self):
        expr = Arithmetic("+", ColumnRef("a"),
                          Arithmetic("*", ColumnRef("b"), Literal(10)))
        assert run(expr, (1, 2, "")) == 21

    def test_division_is_float(self):
        assert run(Arithmetic("/", Literal(7), Literal(2)), ()) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            run(Arithmetic("/", Literal(1), Literal(0)), ())

    def test_unresolved_column_raises(self):
        with pytest.raises(ExecutionError):
            ColumnRef("a").eval((1,))

    def test_unknown_operator_rejected(self):
        with pytest.raises(BindError):
            Comparison("~~", Literal(1), Literal(2))
        with pytest.raises(BindError):
            Arithmetic("%", Literal(1), Literal(2))


class TestThreeValuedLogic:
    def test_null_comparison_is_unknown(self):
        expr = Comparison("=", ColumnRef("a"), Literal(1))
        assert run(expr, (None, 0, "")) is None

    def test_and_false_dominates_null(self):
        expr = BooleanExpr("AND", [
            Comparison("=", ColumnRef("a"), Literal(1)),
            Comparison("=", ColumnRef("b"), Literal(1)),
        ])
        assert run(expr, (None, 2, "")) is False  # second arg is False

    def test_and_null_when_undetermined(self):
        expr = BooleanExpr("AND", [
            Comparison("=", ColumnRef("a"), Literal(1)),
            Comparison("=", ColumnRef("b"), Literal(1)),
        ])
        assert run(expr, (None, 1, "")) is None

    def test_or_true_dominates_null(self):
        expr = BooleanExpr("OR", [
            Comparison("=", ColumnRef("a"), Literal(1)),
            Comparison("=", ColumnRef("b"), Literal(1)),
        ])
        assert run(expr, (None, 1, "")) is True

    def test_not_null_is_null(self):
        expr = BooleanExpr("NOT", [Comparison("=", ColumnRef("a"),
                                              Literal(1))])
        assert run(expr, (None, 0, "")) is None

    def test_null_arithmetic_propagates(self):
        expr = Arithmetic("+", ColumnRef("a"), Literal(1))
        assert run(expr, (None, 0, "")) is None


class TestTransforms:
    def test_rename_columns(self):
        expr = Comparison("=", ColumnRef("x"), ColumnRef("y"))
        renamed = expr.rename_columns({"x": "T.x"})
        assert renamed.display() == "T.x = y"

    def test_flipped(self):
        expr = Comparison("<", ColumnRef("a"), ColumnRef("b"))
        assert expr.flipped().display() == "b > a"

    def test_columns_collects_all(self):
        expr = BooleanExpr("AND", [
            Comparison("=", ColumnRef("a"), ColumnRef("b")),
            Comparison(">", ColumnRef("s"), Literal("x")),
        ])
        assert expr.columns() == {"a", "b", "s"}

    def test_display_roundtrip_equality(self):
        e1 = Comparison("=", ColumnRef("a"), Literal(1))
        e2 = Comparison("=", ColumnRef("a"), Literal(1))
        assert e1 == e2
        assert hash(e1) == hash(e2)

    def test_conjuncts_flattens_nested_ands(self):
        expr = BooleanExpr("AND", [
            Comparison("=", ColumnRef("a"), Literal(1)),
            BooleanExpr("AND", [
                Comparison("=", ColumnRef("b"), Literal(2)),
                Comparison("=", ColumnRef("s"), Literal("x")),
            ]),
        ])
        assert len(conjuncts(expr)) == 3

    def test_conjoin_inverse_of_conjuncts(self):
        parts = [Comparison("=", ColumnRef("a"), Literal(i))
                 for i in range(3)]
        assert conjuncts(conjoin(parts)) == parts

    def test_conjoin_empty_is_none(self):
        assert conjoin([]) is None

    def test_is_equijoin(self):
        assert is_equijoin(Comparison("=", ColumnRef("a"), ColumnRef("b")))
        assert not is_equijoin(Comparison("<", ColumnRef("a"),
                                          ColumnRef("b")))
        assert not is_equijoin(Comparison("=", ColumnRef("a"), Literal(1)))


class TestRuntimeMembership:
    def test_eval_against_set(self):
        expr = RuntimeMembership("p", [ColumnRef("a")]).resolve(SCHEMA)
        expr.membership = {1, 2}
        assert expr.eval((1, 0, "")) is True
        assert expr.eval((9, 0, "")) is False

    def test_multi_column_key(self):
        expr = RuntimeMembership(
            "p", [ColumnRef("a"), ColumnRef("b")]
        ).resolve(SCHEMA)
        expr.membership = {(1, 2)}
        assert expr.eval((1, 2, "")) is True
        assert expr.eval((2, 1, "")) is False

    def test_unbound_raises(self):
        expr = RuntimeMembership("p", [ColumnRef("a")]).resolve(SCHEMA)
        with pytest.raises(ExecutionError):
            expr.eval((1, 0, ""))

    def test_rename_preserves_param(self):
        expr = RuntimeMembership("p", [ColumnRef("a")])
        renamed = expr.rename_columns({"a": "T.a"})
        assert renamed.param_id == "p"
        assert renamed.columns() == {"T.a"}


class TestComparisonProperties:
    @given(st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=100, deadline=None)
    def test_matches_python_semantics(self, x, y):
        ops = {"=": x == y, "!=": x != y, "<": x < y, "<=": x <= y,
               ">": x > y, ">=": x >= y}
        for op, expected in ops.items():
            assert run(Comparison(op, Literal(x), Literal(y)), ()) is expected

    @given(st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=50, deadline=None)
    def test_flip_preserves_semantics(self, x, y):
        for op in ("<", "<=", ">", ">=", "=", "!="):
            expr = Comparison(op, Literal(x), Literal(y))
            assert run(expr, ()) is run(expr.flipped(), ())


class TestAggregates:
    def test_count_star_counts_nulls(self):
        acc = Accumulator("count", count_star=True)
        for v in (1, None, 3):
            acc.add(v)
        assert acc.result() == 3

    def test_count_column_skips_nulls(self):
        acc = Accumulator("count")
        for v in (1, None, 3):
            acc.add(v)
        assert acc.result() == 2

    def test_count_distinct(self):
        acc = Accumulator("count", distinct=True)
        for v in (1, 1, None, 3):
            acc.add(v)
        assert acc.result() == 2

    def test_sum_skips_nulls(self):
        acc = Accumulator("sum")
        for v in (1, None, 3):
            acc.add(v)
        assert acc.result() == 4

    def test_avg(self):
        acc = Accumulator("avg")
        for v in (2, 4):
            acc.add(v)
        assert acc.result() == 3.0

    def test_min_max(self):
        lo, hi = Accumulator("min"), Accumulator("max")
        for v in (5, 1, 9):
            lo.add(v)
            hi.add(v)
        assert lo.result() == 1
        assert hi.result() == 9

    def test_empty_group_semantics(self):
        assert Accumulator("count").result() == 0
        assert Accumulator("sum").result() is None
        assert Accumulator("avg").result() is None

    def test_spec_output_types(self):
        schema = Schema.of(("x", DataType.INT))
        assert AggregateSpec("avg", ColumnRef("x"), "a").output_dtype(
            schema) == DataType.FLOAT
        assert AggregateSpec("sum", ColumnRef("x"), "s").output_dtype(
            schema) == DataType.INT
        assert AggregateSpec("min", ColumnRef("x"), "m").output_dtype(
            schema) == DataType.INT
        assert AggregateSpec("count", None, "c").output_dtype(
            schema) == DataType.INT

    def test_spec_validation(self):
        with pytest.raises(BindError):
            AggregateSpec("median", ColumnRef("x"), "m")
        with pytest.raises(BindError):
            AggregateSpec("sum", None, "s")
