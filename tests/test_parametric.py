"""Tests for the Section-4.2 parametric inner costing."""

import pytest

from repro import OptimizerConfig
from repro.optimizer.parametric import ParametricInnerCoster
from repro.optimizer.planner import Planner
from repro.optimizer.plans import PlanNode
from repro.rewrite.magic import RestrictedInner, restricted_view_block
from repro.workloads import MOTIVATING_QUERY


class _FakePlan(PlanNode):
    def __init__(self, cost, rows):
        from repro.storage.schema import Schema
        super().__init__(Schema(()))
        self.est_cost = cost
        self.est_rows = rows


def make_coster(num_classes=4, enabled=True, domain=1000.0,
                cost_fn=lambda f: 10 + f, rows_fn=lambda f: 2 * f):
    calls = []

    def builder(assumed_rows, assumed_sel):
        calls.append(assumed_rows)
        from repro.storage.schema import Schema
        return RestrictedInner(assumed_rows, None, Schema(()), [])

    def plan_fn(block_marker):
        # block_marker is the assumed_rows smuggled through builder
        f = float(block_marker)
        return _FakePlan(cost_fn(f), rows_fn(f))

    coster = ParametricInnerCoster(builder, plan_fn, domain,
                                   num_classes=num_classes,
                                   enabled=enabled)
    coster.param_id = "t"
    coster._calls = calls
    return coster


class TestAnchors:
    def test_anchor_count_matches_classes(self):
        coster = make_coster(num_classes=4)
        assert len(coster.anchor_cardinalities()) == 4

    def test_anchors_span_domain_geometrically(self):
        coster = make_coster(num_classes=4, domain=1000.0)
        anchors = coster.anchor_cardinalities()
        assert anchors[0] == 1
        assert anchors[-1] == 1000
        assert anchors == sorted(anchors)

    def test_classes_planned_once(self):
        coster = make_coster()
        coster.estimate(10)
        coster.estimate(500)
        coster.estimate(3)
        assert coster.nested_optimizations == 4  # one per class only

    def test_knob_controls_nested_optimizations(self):
        small = make_coster(num_classes=2)
        large = make_coster(num_classes=8)
        small.estimate(10)
        large.estimate(10)
        assert small.nested_optimizations == 2
        assert large.nested_optimizations == 8


class TestLineFit:
    def test_linear_rows_recovered_exactly(self):
        coster = make_coster(rows_fn=lambda f: 3 * f + 7)
        _, rows = coster.estimate(250)
        assert rows == pytest.approx(3 * 250 + 7, rel=0.01)

    def test_rows_never_negative(self):
        coster = make_coster(rows_fn=lambda f: 0.0)
        _, rows = coster.estimate(10)
        assert rows >= 0.0

    def test_cost_interpolates_between_classes(self):
        coster = make_coster(cost_fn=lambda f: f, domain=1000.0)
        coster.ensure_classes()
        anchors = sorted(c.anchor_rows for c in coster.classes)
        midpoint = (anchors[1] + anchors[2]) / 2
        cost, _ = coster.estimate(midpoint)
        # linear cost function -> interpolation recovers it exactly
        assert cost == pytest.approx(midpoint)

    def test_cost_clamps_outside_grid(self):
        coster = make_coster(cost_fn=lambda f: f, domain=1000.0)
        coster.ensure_classes()
        anchors = sorted(c.anchor_rows for c in coster.classes)
        low_cost, _ = coster.estimate(0.5)
        high_cost, _ = coster.estimate(10 * anchors[-1])
        assert low_cost == pytest.approx(anchors[0])
        assert high_cost == pytest.approx(anchors[-1])

    def test_disabled_mode_replans_every_call(self):
        coster = make_coster(enabled=False)
        coster.estimate(10)
        coster.estimate(20)
        coster.estimate(30)
        assert coster.nested_optimizations == 3

    def test_disabled_mode_exact(self):
        coster = make_coster(enabled=False, cost_fn=lambda f: f * 2,
                             rows_fn=lambda f: f + 1)
        cost, rows = coster.estimate(17)
        assert cost == 34
        assert rows == 18


class TestIntegrationWithPlanner:
    def test_coster_cached_per_view_and_columns(self, empdept_db):
        _, planner = empdept_db.plan(MOTIVATING_QUERY)
        keys = list(planner._costers)
        assert len(keys) == len(set(keys))
        # exact + lossy variants for the view, plus stored semi-joins
        assert any(k[2] is False for k in keys)

    def test_nested_optimizations_bounded(self, empdept_db):
        config = OptimizerConfig(parametric_classes=3)
        _, planner = empdept_db.plan(MOTIVATING_QUERY, config)
        # each coster plans at most 3 anchors; a handful of costers exist
        per_coster = [c.nested_optimizations
                      for c in planner._costers.values()]
        assert all(n <= 3 for n in per_coster)

    def test_template_matches_estimate_class(self, empdept_db):
        _, planner = empdept_db.plan(MOTIVATING_QUERY)
        for coster in planner._costers.values():
            if not coster.classes:
                continue
            template = coster.template_for(1.0)
            assert template is coster.classes[0].plan
