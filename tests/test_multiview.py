"""Multi-view queries: the paper's Section-2.1 open question.

Several virtual relations in one block: the DP must order them, give
each inner a filter set from its prefix, and stay correct under every
strategy. Also covers views over views feeding filter sets to each
other ("should Emp be used to generate a filter set for DepAvgSal, or
vice-versa?").
"""

import collections

import pytest

from repro import OptimizerConfig
from repro.optimizer.plans import FilterJoinNode
from repro.workloads import EmpDeptConfig, fresh_empdept

from tests.test_planner_basic import find_nodes

TWO_VIEW_QUERY = """
SELECT D.did, V.avgsal, H.heads
FROM Dept D, DepAvgSal V, DeptHeads H
WHERE D.did = V.did AND D.did = H.did AND D.budget > 100000
"""


@pytest.fixture(scope="module")
def db():
    database = fresh_empdept(EmpDeptConfig(
        num_departments=60, employees_per_department=15, seed=77,
    ))
    database.create_view(
        "DeptHeads",
        "SELECT E.did, COUNT(*) AS heads FROM Emp E GROUP BY E.did",
    )
    database.create_view(
        "RichDepts",
        "SELECT V.did, V.avgsal FROM DepAvgSal V "
        "WHERE V.avgsal > 80000",
    )
    return database


def reference_two_views(db):
    emp = db.catalog.table("Emp").rows
    dept = dict(db.catalog.table("Dept").rows)
    sal = collections.defaultdict(list)
    for (_e, did, s, _a) in emp:
        sal[did].append(s)
    return sorted(
        (did, sum(v) / len(v), len(v))
        for did, v in sal.items() if dept[did] > 100_000
    )


class TestTwoViews:
    def test_cost_based_correct(self, db):
        result = db.sql(TWO_VIEW_QUERY)
        assert sorted(result.rows) == reference_two_views(db)

    @pytest.mark.parametrize("mode", [
        "full", "nested_iteration", "filter_join", "bloom",
    ])
    def test_every_forced_strategy_correct(self, db, mode):
        config = OptimizerConfig(forced_view_join=mode)
        result = db.sql(TWO_VIEW_QUERY, config=config)
        assert sorted(result.rows) == reference_two_views(db)

    def test_forced_filter_join_cascades(self, db):
        config = OptimizerConfig(forced_view_join="filter_join")
        plan, _ = db.plan(TWO_VIEW_QUERY, config)
        assert len(find_nodes(plan, FilterJoinNode)) == 2

    def test_each_view_gets_own_filter_param(self, db):
        config = OptimizerConfig(forced_view_join="filter_join")
        plan, _ = db.plan(TWO_VIEW_QUERY, config)
        params = {node.param_id
                  for node in find_nodes(plan, FilterJoinNode)}
        assert len(params) == 2


class TestViewOverView:
    def test_view_of_view_queryable(self, db):
        result = db.sql("SELECT R.did FROM RichDepts R")
        emp = db.catalog.table("Emp").rows
        sal = collections.defaultdict(list)
        for (_e, did, s, _a) in emp:
            sal[did].append(s)
        expected = sorted(
            (did,) for did, v in sal.items() if sum(v) / len(v) > 80000
        )
        assert sorted(result.rows) == expected

    def test_join_with_nested_view_all_strategies(self, db):
        query = ("SELECT D.did, R.avgsal FROM Dept D, RichDepts R "
                 "WHERE D.did = R.did AND D.budget > 100000")
        reference = None
        for mode in (None, "full", "filter_join"):
            config = (OptimizerConfig(forced_view_join=mode)
                      if mode else OptimizerConfig())
            result = db.sql(query, config=config)
            rows = sorted(result.rows)
            if reference is None:
                reference = rows
            assert rows == reference

    def test_mixed_view_and_table_three_way(self, db):
        query = """
            SELECT E.eid, V.avgsal
            FROM Emp E, Dept D, DepAvgSal V
            WHERE E.did = D.did AND D.did = V.did
              AND E.age < 25 AND D.budget > 100000
        """
        result = db.sql(query)
        emp = db.catalog.table("Emp").rows
        dept = dict(db.catalog.table("Dept").rows)
        sal = collections.defaultdict(list)
        for (_e, did, s, _a) in emp:
            sal[did].append(s)
        expected = sorted(
            (eid, sum(sal[did]) / len(sal[did]))
            for (eid, did, _s, age) in emp
            if age < 25 and dept[did] > 100_000
        )
        assert sorted(result.rows) == expected
