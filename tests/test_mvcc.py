"""MVCC core semantics: snapshots, version visibility, conflict
detection, freezing, and vacuum.

The contracts under test:

- **snapshot pinning** — an explicit transaction reads the database as
  of its BEGIN for its whole life, regardless of what commits around
  it (``isolation="snapshot"``); ``read-committed`` instead refreshes
  the view per statement;
- **read-own-writes** — a transaction always sees its own uncommitted
  inserts/updates/deletes, while no other session does;
- **first-committer-wins** — the second writer to touch a visible row
  version gets a typed :class:`SerializationError` immediately (no-wait)
  and the first writer's work survives;
- **version lifecycle** — committed versions freeze once no live
  snapshot can need them; vacuum compacts frozen-dead versions and
  is refused only while transactions are open; indexes never leak
  invisible versions;
- **fast path** — a quiesced table (no in-flight versions) serves its
  raw row list, byte-identical to the pre-MVCC representation.
"""

import pytest

from repro import (
    CatalogError,
    Database,
    DataType,
    SerializationError,
    TransactionError,
)
from repro.storage.mvcc import FROZEN


def make_db():
    db = Database()
    db.create_table("t", [("id", DataType.INT), ("v", DataType.INT)])
    db.insert("t", [(i, 10 * i) for i in range(1, 6)])
    return db


def rows(session_or_db, sql="SELECT * FROM t"):
    return sorted(session_or_db.sql(sql).rows)


# ------------------------------------------------------- snapshot reads

class TestSnapshotIsolation:
    def test_uncommitted_insert_invisible_to_other_session(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        s1.sql("INSERT INTO t VALUES (6, 60)")
        assert (6, 60) in rows(s1)
        assert (6, 60) not in rows(s2)
        assert (6, 60) not in rows(db)
        s1.sql("COMMIT")
        assert (6, 60) in rows(s2)

    def test_snapshot_pinned_across_concurrent_commit(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        before = rows(s1)
        s2.sql("INSERT INTO t VALUES (7, 70)")  # autocommit
        assert rows(s1) == before, "snapshot must not move mid-txn"
        s1.sql("COMMIT")
        assert (7, 70) in rows(s1)

    def test_uncommitted_delete_invisible_to_other_session(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        s1.sql("DELETE FROM t WHERE id = 1")
        assert (1, 10) not in rows(s1)
        assert (1, 10) in rows(s2)
        s1.sql("ROLLBACK")
        assert (1, 10) in rows(s1)

    def test_update_leaves_old_version_for_pinned_snapshot(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s2.sql("BEGIN")
        pinned = rows(s2)
        s1.sql("UPDATE t SET v = 999 WHERE id = 3")
        assert rows(s2) == pinned
        s2.sql("COMMIT")
        assert (3, 999) in rows(s2)

    def test_read_committed_sees_commits_per_statement(self):
        db = make_db()
        s1 = db.new_session()
        s2 = db.new_session()
        from repro import Options
        s1.sql("BEGIN", options=Options(isolation="read-committed"))
        assert (8, 80) not in rows(s1)
        s2.sql("INSERT INTO t VALUES (8, 80)")
        assert (8, 80) in rows(s1), \
            "read-committed refreshes the view every statement"
        s1.sql("COMMIT")

    def test_aggregates_respect_snapshot(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        assert s1.sql("SELECT COUNT(*) AS n FROM t").rows == [(5,)]
        s2.sql("INSERT INTO t VALUES (9, 90)")
        assert s1.sql("SELECT COUNT(*) AS n FROM t").rows == [(5,)]
        s1.sql("COMMIT")
        assert s1.sql("SELECT COUNT(*) AS n FROM t").rows == [(6,)]


# ------------------------------------------------------ own-write reads

class TestReadOwnWrites:
    def test_txn_sees_own_update(self):
        db = make_db()
        s1 = db.new_session()
        s1.sql("BEGIN")
        s1.sql("UPDATE t SET v = 111 WHERE id = 1")
        assert (1, 111) in rows(s1)
        assert (1, 10) not in rows(s1)
        s1.sql("ROLLBACK")
        assert (1, 10) in rows(s1)

    def test_implicit_statement_sees_own_writes_mid_statement(self):
        # CTAS both reads and writes in one implicit transaction
        db = make_db()
        db.sql("CREATE TABLE t2 AS SELECT id, v FROM t WHERE id <= 2")
        assert sorted(db.sql("SELECT * FROM t2").rows) == \
            [(1, 10), (2, 20)]

    def test_savepoint_rewind_restores_own_view(self):
        db = make_db()
        s1 = db.new_session()
        s1.sql("BEGIN")
        s1.sql("SAVEPOINT a")
        s1.sql("UPDATE t SET v = 0 WHERE id = 2")
        assert (2, 0) in rows(s1)
        s1.sql("ROLLBACK TO a")
        assert (2, 20) in rows(s1)
        s1.sql("COMMIT")
        assert (2, 20) in rows(db)


# ------------------------------------------------- write-write conflicts

class TestFirstCommitterWins:
    def test_concurrent_update_same_row_conflicts(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        s2.sql("BEGIN")
        s1.sql("UPDATE t SET v = 1 WHERE id = 1")
        with pytest.raises(SerializationError) as info:
            s2.sql("UPDATE t SET v = 2 WHERE id = 1")
        assert info.value.table == "t"
        s2.sql("ROLLBACK")
        s1.sql("COMMIT")
        assert (1, 1) in rows(db)

    def test_update_vs_delete_conflicts(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        s2.sql("BEGIN")
        s1.sql("DELETE FROM t WHERE id = 2")
        with pytest.raises(SerializationError):
            s2.sql("UPDATE t SET v = 5 WHERE id = 2")
        s2.sql("ROLLBACK")
        s1.sql("COMMIT")

    def test_committed_first_writer_still_conflicts_pinned_snapshot(self):
        # s1 commits before s2 writes: s2's snapshot predates the
        # commit, so its write still loses (lost-update prevention)
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s2.sql("BEGIN")
        rows(s2)  # pin
        s1.sql("UPDATE t SET v = 1 WHERE id = 1")  # autocommit wins
        with pytest.raises(SerializationError):
            s2.sql("UPDATE t SET v = 2 WHERE id = 1")
        s2.sql("ROLLBACK")
        assert (1, 1) in rows(db)

    def test_disjoint_rows_do_not_conflict(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        s2.sql("BEGIN")
        s1.sql("UPDATE t SET v = 1 WHERE id = 1")
        s2.sql("UPDATE t SET v = 2 WHERE id = 2")
        s1.sql("COMMIT")
        s2.sql("COMMIT")
        state = rows(db)
        assert (1, 1) in state and (2, 2) in state

    def test_serialization_failure_aborts_transaction(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        s2.sql("BEGIN")
        s1.sql("UPDATE t SET v = 1 WHERE id = 1")
        with pytest.raises(SerializationError):
            s2.sql("UPDATE t SET v = 2 WHERE id = 1")
        from repro import TransactionAborted
        with pytest.raises(TransactionAborted):
            s2.sql("SELECT * FROM t")
        s2.sql("ROLLBACK")
        s1.sql("COMMIT")

    def test_conflict_metric_counts(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        s2.sql("BEGIN")
        s1.sql("UPDATE t SET v = 1 WHERE id = 1")
        with pytest.raises(SerializationError):
            s2.sql("DELETE FROM t WHERE id = 1")
        s2.sql("ROLLBACK")
        s1.sql("COMMIT")
        metrics = db.metrics()
        assert metrics["txn_serialization_failures_total"]["total"] == 1


# ------------------------------------------------- version lifecycle

class TestVersionLifecycle:
    def test_quiesced_table_serves_raw_rows(self):
        db = make_db()
        table = db.catalog.table("t")
        assert table.rows is table._rows, \
            "no in-flight versions -> zero-overhead fast path"

    def test_autocommit_update_with_no_snapshots_freezes_eagerly(self):
        db = make_db()
        db.sql("UPDATE t SET v = 0 WHERE id = 1")
        table = db.catalog.table("t")
        # the old version is frozen-dead immediately; nothing tracks it
        assert not table._writers and not table._deleters
        assert table.dead_versions == 1
        assert db.txn.status()["mvcc"]["unfrozen_commits"] == 0

    def test_commit_freezes_once_older_snapshot_departs(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s2.sql("BEGIN")
        rows(s2)  # pin a snapshot older than s1's commit
        s1.sql("BEGIN")
        s1.sql("UPDATE t SET v = 1 WHERE id = 1")
        s1.sql("COMMIT")
        assert db.txn.status()["mvcc"]["unfrozen_commits"] == 1
        s2.sql("COMMIT")  # departure unblocks the freeze
        assert db.txn.status()["mvcc"]["unfrozen_commits"] == 0
        table = db.catalog.table("t")
        assert not table._writers

    def test_vacuum_reclaims_dead_versions(self):
        db = make_db()
        db.sql("UPDATE t SET v = v + 1")  # 5 dead versions
        table = db.catalog.table("t")
        assert table.dead_versions == 5
        assert table.physical_count == 10
        report = db.vacuum()
        assert report == {"t": 5}
        assert table.dead_versions == 0
        assert table.physical_count == 5
        assert rows(db) == [(i, 10 * i + 1) for i in range(1, 6)]

    def test_vacuum_refused_with_open_transaction(self):
        db = make_db()
        s1 = db.new_session()
        s1.sql("BEGIN")
        s1.sql("UPDATE t SET v = 0 WHERE id = 1")
        with pytest.raises(TransactionError):
            db.vacuum()
        s1.sql("ROLLBACK")
        db.vacuum()

    def test_auto_vacuum_kicks_in_past_thresholds(self):
        db = Database()
        db.create_table("big", [("id", DataType.INT)])
        db.insert("big", [(i,) for i in range(200)])
        db.sql("UPDATE big SET id = id + 1000")  # 200 dead versions
        table = db.catalog.table("big")
        assert table.dead_versions == 0, \
            "auto-vacuum reclaims once dead >= 64 and >= 25%"
        assert table.physical_count == 200

    def test_index_probe_skips_invisible_versions(self):
        db = make_db()
        db.create_index("t", "id")
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        s1.sql("UPDATE t SET v = 999 WHERE id = 3")
        # s2 probes the index; the new (uncommitted) version of id=3
        # is physically indexed but must stay invisible
        assert s2.sql("SELECT v FROM t WHERE id = 3").rows == [(30,)]
        assert s1.sql("SELECT v FROM t WHERE id = 3").rows == [(999,)]
        s1.sql("COMMIT")
        assert s2.sql("SELECT v FROM t WHERE id = 3").rows == [(999,)]

    def test_cluster_refused_with_inflight_versions(self):
        db = make_db()
        db.create_index("t", "id", kind="sorted")
        s1 = db.new_session()
        s1.sql("BEGIN")
        s1.sql("INSERT INTO t VALUES (6, 60)")
        with pytest.raises(CatalogError):
            db.catalog.table("t").cluster_by("id")
        s1.sql("ROLLBACK")
        db.catalog.table("t").cluster_by("id")

    def test_rollback_of_explicit_insert_leaves_no_versions(self):
        db = make_db()
        s1 = db.new_session()
        s1.sql("BEGIN")
        s1.sql("INSERT INTO t VALUES (6, 60)")
        s1.sql("INSERT INTO t VALUES (7, 70)")
        s1.sql("ROLLBACK")
        table = db.catalog.table("t")
        assert table.physical_count == 5
        assert not table._writers and not table._xmaxs

    def test_frozen_constant_is_zero(self):
        # the sentinel doubles as "visible to all" (xmin) and
        # "dead to all" (xmax); real txn ids start at 1
        assert FROZEN == 0


# ------------------------------------------------------ session handles

class TestSessions:
    def test_sessions_are_independent_transactions(self):
        db = make_db()
        s1, s2 = db.new_session(), db.new_session()
        s1.sql("BEGIN")
        assert s1.in_transaction
        assert not s2.in_transaction
        s2.sql("BEGIN")
        s1.sql("COMMIT")
        assert not s1.in_transaction
        assert s2.in_transaction
        s2.sql("ROLLBACK")

    def test_close_rolls_back_open_transaction(self):
        db = make_db()
        s1 = db.new_session()
        s1.sql("BEGIN")
        s1.sql("INSERT INTO t VALUES (6, 60)")
        s1.close()
        assert (6, 60) not in rows(db)
        with pytest.raises(TransactionError):
            s1.sql("SELECT 1 AS x")

    def test_context_manager_closes(self):
        db = make_db()
        with db.new_session("worker") as s:
            assert s.name == "worker"
            s.sql("BEGIN")
        assert db.txn.status()["sessions"] == 1

    def test_default_session_unaffected_by_named_sessions(self):
        db = make_db()
        s1 = db.new_session()
        s1.sql("BEGIN")
        # db.sql runs on the default session: autocommit, sees old state
        db.sql("INSERT INTO t VALUES (6, 60)")
        assert (6, 60) in rows(db)
        assert (6, 60) not in rows(s1)
        s1.sql("COMMIT")

    def test_checkpoint_refused_while_any_session_open(self):
        db = make_db()
        db.configure(durability="lazy")
        db.sql("INSERT INTO t VALUES (6, 60)")
        s1 = db.new_session()
        s1.sql("BEGIN")
        s1.sql("INSERT INTO t VALUES (7, 70)")
        with pytest.raises(TransactionError):
            db.checkpoint()
        s1.sql("COMMIT")
        db.checkpoint()

    def test_options_isolation_validated(self):
        from repro import Options
        with pytest.raises(Exception):
            Options(isolation="chaotic")
        assert Options(isolation="snapshot").isolation == "snapshot"
