"""Tests for the versioned, LRU-bounded plan cache.

Covers hit/miss/invalidation/eviction accounting, key normalization,
per-config keying, the disabled (capacity 0) mode, and — the critical
safety property — that after any random interleaving of DDL, statistics
updates, and queries, a cached plan never executes against a newer
catalog version and always produces the same answer as a fresh-planned
run.
"""

import random

import pytest

from repro import Database, DataType, OptimizerConfig
from repro.distributed.database import DistributedDatabase
from repro.plancache import PlanCache, cache_key, normalize_statement


def small_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table("T1", [("a", DataType.INT), ("b", DataType.INT)])
    db.create_table("T2", [("a", DataType.INT), ("d", DataType.INT)])
    db.insert("T1", [(i % 7, i) for i in range(50)])
    db.insert("T2", [(i % 7, i % 3) for i in range(30)])
    db.create_view("V1",
                   "SELECT T2.a, COUNT(*) AS n FROM T2 GROUP BY T2.a")
    db.analyze()
    return db


QUERIES = [
    "SELECT T1.a, T1.b FROM T1 WHERE T1.b > 25",
    "SELECT T1.b, T2.d FROM T1, T2 WHERE T1.a = T2.a",
    "SELECT T1.b, V1.n FROM T1, V1 WHERE T1.a = V1.a",
    "SELECT T1.a, COUNT(*) AS n FROM T1 GROUP BY T1.a",
]


class TestAccounting:
    def test_hit_miss_counters(self):
        db = small_db()
        handle = db.prepare(QUERIES[0])
        stats = db.cache_stats()
        assert stats == dict(stats, misses=1, hits=0)
        for _ in range(4):
            handle.execute()
        stats = db.cache_stats()
        assert stats["hits"] == 4
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["hit_rate"] == pytest.approx(0.8)

    def test_invalidation_counted_and_replans(self):
        db = small_db()
        handle = db.prepare(QUERIES[0])
        handle.execute()
        db.sql("CREATE TABLE Extra (x INT)")
        result = handle.execute()
        assert result.cached_plan is False  # re-planned, not served stale
        stats = db.cache_stats()
        assert stats["invalidations"] == 1
        # and the fresh entry serves hits again
        assert handle.execute().cached_plan is True

    def test_prepare_twice_shares_the_entry(self):
        db = small_db()
        first = db.prepare(QUERIES[1])
        second = db.prepare(QUERIES[1])
        assert first.plan is second.plan
        assert db.cache_stats()["misses"] == 1

    def test_normalization_ignores_whitespace_and_keyword_case(self):
        db = small_db()
        db.prepare("SELECT T1.a, T1.b FROM T1 WHERE T1.b > 25")
        db.prepare("select  T1.a,T1.b\n FROM T1   where T1.b > 25 ;")
        stats = db.cache_stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1

    def test_normalization_preserves_identifier_case_and_strings(self):
        assert (normalize_statement("select x from t -- comment\n")
                == "SELECT x FROM t")
        assert normalize_statement("SELECT 'a  b' FROM t") \
            == "SELECT 'a  b' FROM t"
        # identifier case is significant (it shapes output column names)
        assert normalize_statement("SELECT T.a FROM T") \
            != normalize_statement("SELECT t.a FROM t")

    def test_distinct_configs_get_distinct_entries(self):
        db = small_db()
        plain = OptimizerConfig()
        no_fj = OptimizerConfig(enable_filter_join=False)
        db.prepare(QUERIES[2], config=plain)
        db.prepare(QUERIES[2], config=no_fj)
        assert db.cache_stats()["entries"] == 2
        assert cache_key(QUERIES[2], plain) != cache_key(QUERIES[2], no_fj)


class TestLRU:
    def test_eviction_at_capacity(self):
        db = small_db(plan_cache_size=2)
        for query in QUERIES[:3]:
            db.prepare(query)
        stats = db.cache_stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        # the oldest entry is gone: re-preparing it misses
        db.prepare(QUERIES[0])
        assert db.cache_stats()["misses"] == 4

    def test_lru_order_follows_use(self):
        db = small_db(plan_cache_size=2)
        a = db.prepare(QUERIES[0])
        db.prepare(QUERIES[1])
        a.execute()             # touch A: B is now least recently used
        db.prepare(QUERIES[2])  # evicts B
        assert a.plan is not None
        assert db.prepare(QUERIES[1]).execute().rows  # re-planned miss
        assert db.cache_stats()["evictions"] == 2

    def test_resize_and_clear(self):
        db = small_db()
        for query in QUERIES:
            db.prepare(query)
        db.plan_cache.resize(1)
        assert db.cache_stats()["entries"] == 1
        db.plan_cache.clear()
        stats = db.cache_stats()
        assert stats["entries"] == 0
        assert stats["hits"] == stats["misses"] == 0

    def test_capacity_zero_disables_caching(self):
        db = small_db(plan_cache_size=0)
        handle = db.prepare(QUERIES[0])
        first = handle.execute()
        second = handle.execute()
        assert first.rows == second.rows
        assert first.cached_plan is False
        assert second.cached_plan is False
        stats = db.cache_stats()
        assert stats["entries"] == 0
        assert stats["hits"] == 0
        assert stats["misses"] >= 3  # prepare + each execute

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(-1)


class TestStalenessProperty:
    """After any interleaving of DDL / stats / data changes and queries,
    a cached plan must never run against a newer catalog version, and
    every answer must match a fresh-planned run."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_interleaving_never_serves_stale_plans(self, seed):
        rng = random.Random(9000 + seed)
        db = small_db()
        handles = {q: db.prepare(q) for q in QUERIES}
        aux = 0

        def do_ddl():
            nonlocal aux
            aux += 1
            db.sql("CREATE TABLE Aux%d (x INT)" % aux)
            if aux > 1 and rng.random() < 0.5:
                db.sql("DROP TABLE Aux%d" % (aux - 1))

        def do_stats():
            db.analyze("T1" if rng.random() < 0.5 else None)

        def do_insert():
            db.insert("T1", [(rng.randint(0, 6), rng.randint(0, 99))])

        def do_query():
            query = rng.choice(QUERIES)
            result = handles[query].execute()
            # 1) the served plan's version is current
            entry = db.plan_cache.peek(cache_key(query, db.config))
            assert entry is not None
            assert entry.catalog_version == db.catalog.version
            # 2) the answer matches a fresh-planned, uncached run
            fresh = db.sql(query)
            assert sorted(result.rows) == sorted(fresh.rows), query

        actions = [do_ddl, do_stats, do_insert, do_query, do_query]
        for _ in range(40):
            rng.choice(actions)()
        assert db.cache_stats()["invalidations"] > 0  # churn really happened

    def test_version_bumps_on_every_mutation_kind(self):
        db = small_db()
        seen = {db.catalog.version}

        def bumped():
            version = db.catalog.version
            assert version not in seen, "mutation did not bump the version"
            seen.add(version)

        db.sql("CREATE TABLE M (x INT, y INT)")
        bumped()
        db.sql("INSERT INTO M VALUES (1, 2)")
        bumped()
        db.create_index("M", "x")
        bumped()
        db.sql("CREATE VIEW MV AS SELECT M.x FROM M")
        bumped()
        db.analyze("M")
        bumped()
        db.sql("DROP VIEW MV")
        bumped()
        db.sql("DROP TABLE M")
        bumped()

    def test_insert_through_cached_plan_sees_new_rows(self):
        db = small_db()
        handle = db.prepare("SELECT COUNT(*) AS n FROM T1")
        before = handle.execute().rows[0][0]
        db.sql("INSERT INTO T1 VALUES (1, 999)")
        assert handle.execute().rows[0][0] == before + 1


class TestDistributedInvalidation:
    def test_moving_a_table_invalidates_cached_plans(self):
        db = DistributedDatabase()
        db.create_table("R", [("k", DataType.INT), ("v", DataType.INT)])
        db.create_table("S", [("k", DataType.INT), ("w", DataType.INT)],
                        site="east")
        db.insert("R", [(i, i) for i in range(40)])
        db.insert("S", [(i % 10, i) for i in range(40)])
        db.analyze()
        handle = db.prepare(
            "SELECT R.v, S.w FROM R, S WHERE R.k = S.k"
        )
        rows = sorted(handle.execute().rows)
        db.place_table("S", "west")
        result = handle.execute()
        assert result.cached_plan is False  # placement change re-planned
        assert sorted(result.rows) == rows
        assert db.cache_stats()["invalidations"] >= 1
