"""Recursive-query differential suite: naive oracle vs both engines.

Every seed derives a graph workload (shape, size, self-loops) and a
recursive query variant (UNION vs UNION ALL, outer bindings, restricted
base) and asserts that four independent evaluation strategies agree:

- the *naive* fixpoint oracle in ``tests/reference_engine.py`` (full
  re-derivation from the accumulated set each round, no optimizer, no
  physical operators);
- the semi-naive iterator engine under the cost-based plan;
- the semi-naive vector engine under the cost-based plan (which must
  also charge a ledger identical to the iterator's);
- the magic-restricted and full-fixpoint plans forced explicitly, so
  both sides of the DP's costed pair are exercised regardless of which
  one the cost model picks.

The 200-seed sweep is pure stdlib. A hypothesis-based suite with
adversarial edge lists runs on top when hypothesis is installed.
"""

import random

import pytest

from repro import Options, OptimizerConfig
from repro.workloads import GraphConfig, fresh_graph, tc_query

from tests.reference_engine import evaluate_query_naive

N_SEEDS = 200

ACYCLIC_SHAPES = ("chain", "tree", "dag", "star")
ALL_SHAPES = ACYCLIC_SHAPES + ("cycle", "random")


def _workload_for_seed(seed):
    """Derive a (GraphConfig, query sql) pair deterministically."""
    rng = random.Random(seed * 7919 + 13)
    shape = rng.choice(ALL_SHAPES)
    n = rng.randint(3, 18)
    self_loops = rng.randint(0, 2) if shape in ("cycle", "random") else 0
    config = GraphConfig(
        shape=shape,
        num_nodes=n,
        branching=rng.randint(2, 4),
        edge_prob=rng.uniform(0.1, 0.4),
        self_loops=self_loops,
        seed=rng.randint(0, 10_000),
    )
    # UNION ALL diverges on cyclic data; only acyclic shapes may use it
    union_all = shape in ACYCLIC_SHAPES and rng.random() < 0.35
    k = rng.randint(1, n)
    where = rng.choice([
        "",
        "WHERE x = %d" % k,
        "WHERE x < %d" % max(k, 2),
        "WHERE y = %d" % k,
        "WHERE x IN (%d, %d)" % (k, max(1, k - 1)),
        "WHERE x = %d AND y > %d" % (k, rng.randint(0, n)),
    ])
    connector = "UNION ALL" if union_all else "UNION"
    base = "SELECT src, dst FROM Edge"
    if rng.random() < 0.25:
        base += " WHERE src <= %d" % rng.randint(1, n)
    sql = (
        "WITH RECURSIVE tc(x, y) AS (\n"
        "  %s\n"
        "  %s\n"
        "  SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src\n"
        ")\n"
        "SELECT x, y FROM tc %s ORDER BY x, y" % (base, connector, where)
    )
    return config, sql


def _check_agreement(db, sql):
    """All strategies agree on rows; engines agree on the ledger."""
    oracle = sorted(evaluate_query_naive(db.bind(sql)))
    it = db.sql(sql, options=Options(engine="iterator"))
    ve = db.sql(sql, options=Options(engine="vector"))
    full = db.sql(sql, config=OptimizerConfig(forced_recursive="full"))
    magic = db.sql(sql, config=OptimizerConfig(forced_recursive="magic"))
    assert sorted(it.rows) == oracle
    assert sorted(ve.rows) == oracle
    assert sorted(full.rows) == oracle
    assert sorted(magic.rows) == oracle
    # ordered output must match exactly too, engine to engine
    assert it.rows == ve.rows
    assert it.ledger.as_dict() == ve.ledger.as_dict()


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_recursive_differential(seed):
    config, sql = _workload_for_seed(seed)
    db = fresh_graph(config)
    _check_agreement(db, sql)


# ---------------------------------------------------------------- edge cases


def test_empty_base_yields_empty_closure():
    db = fresh_graph(GraphConfig("chain", num_nodes=1))  # no edges at all
    for sql in (tc_query(), tc_query("WHERE x = 1")):
        _check_agreement(db, sql)
        assert db.sql(sql).rows == []


def test_single_edge_converges_after_one_empty_delta():
    db = fresh_graph(GraphConfig("chain", num_nodes=2))
    _check_agreement(db, tc_query())
    assert db.sql(tc_query()).rows == [(1, 2)]


def test_self_loop_only_graph():
    import repro
    from repro import DataType

    db = repro.connect()
    db.create_table("Edge", [("src", DataType.INT), ("dst", DataType.INT)])
    db.insert("Edge", [(4, 4)])
    db.analyze()
    _check_agreement(db, tc_query())
    assert db.sql(tc_query()).rows == [(4, 4)]


def test_binding_on_empty_reachable_set():
    db = fresh_graph(GraphConfig("chain", num_nodes=6))
    sql = tc_query("WHERE x = 99")
    _check_agreement(db, sql)
    assert db.sql(sql).rows == []


# ------------------------------------------------------- hypothesis overlay

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

nodes = st.integers(min_value=1, max_value=9)
edge_lists = st.lists(st.tuples(nodes, nodes), min_size=0, max_size=25)


def _graph_db(edges):
    import repro
    from repro import DataType

    db = repro.connect()
    db.create_table("Edge", [("src", DataType.INT), ("dst", DataType.INT)])
    deduped = sorted(set(edges))
    if deduped:
        db.insert("Edge", deduped)
    db.analyze()
    return db


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists, bind=st.integers(min_value=0, max_value=10))
def test_hypothesis_union_closure(edges, bind):
    """Arbitrary digraphs (cycles, self-loops, duplicates) under UNION."""
    db = _graph_db(edges)
    _check_agreement(db, tc_query())
    _check_agreement(db, tc_query("WHERE x = %d" % bind))


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists)
def test_hypothesis_union_all_on_dag(edges, ):
    """UNION ALL path counting on acyclified edge lists."""
    acyclic = [(u, v) for u, v in edges if u < v]  # forward edges only
    db = _graph_db(acyclic)
    sql = (
        "WITH RECURSIVE tc(x, y) AS (\n"
        "  SELECT src, dst FROM Edge\n"
        "  UNION ALL\n"
        "  SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src\n"
        ")\n"
        "SELECT x, y FROM tc ORDER BY x, y"
    )
    _check_agreement(db, sql)
