"""WAL unit tests: framing, checksums, torn tails, storage backends.

The contract under test: every whole, checksum-valid record written
before a crash is recoverable, and any damaged suffix — a partial
length word, a partial payload, a payload that fails its CRC — is
silently treated as the torn tail, never misparsed as data and never
reported as corruption.
"""

import random
import struct
import zlib

import pytest

from repro.errors import WalError
from repro.txn import (
    CrashInjector,
    FileStorage,
    MemoryStorage,
    SimulatedCrash,
    WAL_MAGIC,
    WriteAheadLog,
    encode_record,
    iter_records,
    split_header,
)

RECORDS = [
    {"t": 1, "op": "create_table", "name": "R",
     "columns": [["a", "int", 8]]},
    {"t": 1, "op": "insert", "table": "R", "rows": [[1], [2], [3]]},
    {"t": 1, "op": "commit"},
    {"t": 2, "op": "insert", "table": "R", "rows": [[4]]},
    {"t": 2, "op": "commit"},
]


def encoded_log():
    return b"".join(encode_record(r) for r in RECORDS)


# ------------------------------------------------------------- framing

def test_round_trip():
    data = encoded_log()
    out = [record for record, _ in iter_records(data)]
    assert out == RECORDS


def test_every_truncation_point_recovers_a_prefix():
    """Cut the log at EVERY byte offset: the parse must yield exactly
    the records whose frames are fully inside the cut — the torn final
    record never surfaces and never raises."""
    data = encoded_log()
    ends = []
    offset = 0
    for record, end in iter_records(data):
        ends.append(end)
        offset = end
    assert offset == len(data)
    for cut in range(len(data) + 1):
        got = [record for record, _ in iter_records(data[:cut])]
        expected = sum(1 for end in ends if end <= cut)
        assert len(got) == expected, "cut at byte %d" % cut
        assert got == RECORDS[:expected]


def test_corrupt_payload_stops_the_scan():
    data = bytearray(encoded_log())
    # flip a byte inside the second record's payload
    first_end = next(iter_records(bytes(data)))[1]
    data[first_end + 12] ^= 0xFF
    got = [record for record, _ in iter_records(bytes(data))]
    assert got == RECORDS[:1]


def test_garbage_length_word_is_torn_not_an_allocation():
    frame = struct.pack("<II", 0x7FFFFFFF, 0)
    got = list(iter_records(encode_record(RECORDS[0]) + frame + b"x" * 64))
    assert [record for record, _ in got] == RECORDS[:1]


def test_valid_crc_non_dict_payload_is_torn():
    payload = b"[1,2,3]"
    frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
    assert list(iter_records(frame)) == []


def test_split_header():
    assert split_header(b"") is None
    assert split_header(WAL_MAGIC[:4]) is None   # torn mid-magic
    assert split_header(WAL_MAGIC) == b""
    assert split_header(WAL_MAGIC + b"abc") == b"abc"
    with pytest.raises(WalError):
        split_header(b"NOTAWAL000" + b"xx")
    with pytest.raises(WalError):
        split_header(b"XY")  # short AND not a magic prefix


# ------------------------------------------------------------- storage

def test_memory_storage_durable_unsynced_split():
    storage = MemoryStorage()
    storage.append(b"aaa")
    assert storage.crash() == b"aaa"          # page cache may survive
    assert bytes(storage.durable) == b""
    storage.sync()
    assert bytes(storage.durable) == b"aaa"
    storage.append(b"bbb")
    rng = random.Random(7)
    image = storage.crash(rng)
    assert image.startswith(b"aaa")           # synced bytes always survive
    assert image in [b"aaa" + b"bbb"[:i] for i in range(4)]


def test_memory_storage_crash_prefix_is_seeded():
    def image(seed):
        storage = MemoryStorage()
        storage.append(b"x" * 100)
        return storage.crash(random.Random(seed))

    assert image(3) == image(3)


def test_file_storage_round_trip(tmp_path):
    path = str(tmp_path / "test.wal")
    storage = FileStorage(path)
    storage.append(WAL_MAGIC)
    storage.append(encode_record(RECORDS[0]))
    storage.sync()
    assert split_header(storage.read_all()) is not None
    # replace = checkpoint: sidecar + atomic rename, then append again
    storage.replace(WAL_MAGIC + encode_record(RECORDS[3]))
    storage.append(encode_record(RECORDS[4]))
    body = split_header(storage.read_all())
    assert [r for r, _ in iter_records(body)] == [RECORDS[3], RECORDS[4]]
    storage.close()
    # reopening an existing file appends, never truncates
    reopened = FileStorage(path)
    assert split_header(reopened.read_all()) is not None
    reopened.close()


# ----------------------------------------------------------------- log

def test_wal_writes_magic_once_and_records():
    wal = WriteAheadLog(MemoryStorage())
    assert wal.storage.read_all() == WAL_MAGIC
    for record in RECORDS:
        wal.append(record)
    assert wal.records() == RECORDS
    stats = wal.stats()
    assert stats["records_written"] == len(RECORDS)
    assert stats["syncs"] == 0
    wal.sync()
    assert wal.stats()["syncs"] == 1


def test_wal_checkpoint_replaces_content():
    wal = WriteAheadLog(MemoryStorage())
    for record in RECORDS:
        wal.append(record)
    wal.checkpoint({"op": "checkpoint", "commits": 2, "state": {}})
    assert [r["op"] for r in wal.records()] == ["checkpoint"]
    wal.append(RECORDS[3])
    assert [r["op"] for r in wal.records()] == ["checkpoint", "insert"]


def test_wal_hooks_fire_in_order():
    fired = []
    wal = WriteAheadLog(MemoryStorage(), hook=fired.append)
    wal.append(RECORDS[0])
    wal.sync()
    wal.checkpoint({"op": "checkpoint", "commits": 0, "state": {}})
    assert fired == ["append", "appended", "sync", "synced",
                     "checkpoint", "checkpointed"]


def test_crash_injector_kills_at_exact_boundary():
    probe = CrashInjector()  # dry run: counts, never fires
    wal = WriteAheadLog(MemoryStorage(), hook=probe)
    wal.append(RECORDS[0])
    wal.sync()
    assert probe.fired == 4

    injector = CrashInjector(kill_at=2)  # the "sync" boundary
    wal = WriteAheadLog(MemoryStorage(), hook=injector)
    wal.append(RECORDS[0])
    with pytest.raises(SimulatedCrash) as exc_info:
        wal.sync()
    assert exc_info.value.boundary == "sync"
    assert exc_info.value.ordinal == 2
    # the append landed before the kill: its bytes are in the cache
    body = split_header(wal.storage.crash())
    assert [r for r, _ in iter_records(body)] == [RECORDS[0]]


def test_crash_injector_boundary_filter():
    injector = CrashInjector(kill_at=0, boundaries=["sync"])
    wal = WriteAheadLog(MemoryStorage(), hook=injector)
    wal.append(RECORDS[0])  # append boundaries don't count
    wal.append(RECORDS[1])
    with pytest.raises(SimulatedCrash):
        wal.sync()
