"""Unit tests for the SQL binder (name resolution, canonical form)."""

import pytest

from repro import Database, DataType
from repro.errors import BindError
from repro.expr.nodes import ColumnRef


@pytest.fixture()
def db():
    database = Database()
    database.create_table("Emp", [("eid", DataType.INT),
                                  ("did", DataType.INT),
                                  ("sal", DataType.INT),
                                  ("age", DataType.INT)])
    database.create_table("Dept", [("did", DataType.INT),
                                   ("budget", DataType.INT)])
    database.create_view(
        "DepAvgSal",
        "SELECT E.did, AVG(E.sal) AS avgsal FROM Emp E GROUP BY E.did",
    )
    return database


class TestFromBinding:
    def test_table_gets_default_alias(self, db):
        block = db.bind("SELECT eid FROM Emp")
        assert block.relations[0].alias == "Emp"
        assert block.relations[0].kind == "stored"

    def test_view_becomes_virtual_relation(self, db):
        block = db.bind("SELECT V.did FROM DepAvgSal V")
        rel = block.relations[0]
        assert rel.kind == "view"
        assert rel.base_schema.names() == ["did", "avgsal"]

    def test_subquery_in_from(self, db):
        block = db.bind(
            "SELECT x.did FROM (SELECT did FROM Dept) x"
        )
        assert block.relations[0].kind == "view"

    def test_unknown_relation(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT a FROM Nope")

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT E.eid FROM Emp E, Dept E")


class TestColumnResolution:
    def test_unqualified_unique_column(self, db):
        block = db.bind("SELECT eid FROM Emp E")
        assert block.select_items[0].expr == ColumnRef("E.eid")

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT did FROM Emp E, Dept D")

    def test_qualified_resolves_ambiguity(self, db):
        block = db.bind("SELECT E.did FROM Emp E, Dept D "
                        "WHERE E.did = D.did")
        assert block.select_items[0].expr == ColumnRef("E.did")

    def test_unknown_column(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT bogus FROM Emp")

    def test_unknown_qualifier(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT Z.did FROM Emp E")


class TestPredicates:
    def test_where_flattened_to_conjuncts(self, db):
        block = db.bind(
            "SELECT E.eid FROM Emp E WHERE E.age < 30 AND E.sal > 10 "
            "AND E.did = 3"
        )
        assert len(block.predicates) == 3

    def test_or_stays_single_conjunct(self, db):
        block = db.bind(
            "SELECT E.eid FROM Emp E WHERE E.age < 30 OR E.sal > 10"
        )
        assert len(block.predicates) == 1

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT eid FROM Emp WHERE AVG(sal) > 10")


class TestGrouping:
    def test_group_by_canonical_form(self, db):
        block = db.bind(
            "SELECT did, AVG(sal) AS avgsal FROM Emp GROUP BY did"
        )
        assert [g.name for g in block.group_by] == ["Emp.did"]
        assert len(block.aggregates) == 1
        assert block.aggregates[0].alias == "avgsal"
        # select items reference the group-output schema
        assert block.select_items[0].expr == ColumnRef("did")
        assert block.select_items[1].expr == ColumnRef("avgsal")

    def test_output_schema(self, db):
        block = db.bind(
            "SELECT did, AVG(sal) AS avgsal FROM Emp GROUP BY did"
        )
        out = block.output_schema()
        assert out.names() == ["did", "avgsal"]
        assert out.column("avgsal").dtype == DataType.FLOAT

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT sal, AVG(age) FROM Emp GROUP BY did")

    def test_having_binds_against_group_output(self, db):
        block = db.bind(
            "SELECT did FROM Emp GROUP BY did HAVING COUNT(*) > 5"
        )
        assert block.having is not None
        assert len(block.aggregates) == 1  # the COUNT(*) from HAVING

    def test_duplicate_aggregates_deduplicated(self, db):
        block = db.bind(
            "SELECT did, AVG(sal) a1 FROM Emp GROUP BY did "
            "HAVING AVG(sal) > 10"
        )
        assert len(block.aggregates) == 1

    def test_scalar_aggregate_without_group_by(self, db):
        block = db.bind("SELECT COUNT(*) AS n FROM Emp")
        assert block.is_grouped
        assert block.group_by == []

    def test_unknown_function(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT MEDIAN(sal) FROM Emp GROUP BY did")


class TestSelectList:
    def test_star_expands_with_qualified_names(self, db):
        block = db.bind("SELECT * FROM Emp E, Dept D WHERE E.did = D.did")
        out = block.output_schema()
        assert len(out) == 6
        assert "did" in out.names() and "did_2" in out.names()

    def test_expression_needs_alias(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT sal + 1 FROM Emp")

    def test_expression_with_alias(self, db):
        block = db.bind("SELECT sal + 1 AS nextsal FROM Emp")
        assert block.output_schema().names() == ["nextsal"]


class TestOrderByLimit:
    def test_order_by_output_column(self, db):
        block = db.bind("SELECT eid, sal FROM Emp ORDER BY sal DESC")
        assert block.order_by[0][0].name == "sal"
        assert block.order_by[0][1] is False

    def test_order_by_unknown_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT eid FROM Emp ORDER BY nope")

    def test_limit_captured(self, db):
        assert db.bind("SELECT eid FROM Emp LIMIT 7").limit == 7


class TestViewBinding:
    def test_view_column_aliases(self, db):
        db.create_view("V2", "SELECT did, budget FROM Dept",
                       column_aliases=["d", "b"])
        block = db.bind("SELECT x.d, x.b FROM V2 x")
        assert block.output_schema().names() == ["d", "b"]

    def test_view_of_view(self, db):
        db.create_view("Rich", "SELECT V.did FROM DepAvgSal V "
                               "WHERE V.avgsal > 50000")
        block = db.bind("SELECT R.did FROM Rich R")
        inner = block.relations[0]
        assert inner.kind == "view"
        assert inner.block.relations[0].kind == "view"

    def test_view_cycle_detected(self, db):
        # A view can't reference itself at creation (it doesn't exist yet),
        # but deep nesting is capped.
        sql = "SELECT did FROM Dept"
        name = "Deep0"
        db.create_view(name, sql)
        for i in range(1, 20):
            db.create_view("Deep%d" % i, "SELECT did FROM Deep%d" % (i - 1))
        with pytest.raises(BindError):
            db.bind("SELECT did FROM Deep19")
