"""Unit + property tests for the Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom import BloomFilter


class TestBloomBasics:
    def test_contains_added(self):
        bloom = BloomFilter(1024, expected_items=10)
        bloom.add(42)
        assert 42 in bloom

    def test_empty_contains_nothing(self):
        bloom = BloomFilter(1024, expected_items=10)
        assert 42 not in bloom

    def test_add_all(self):
        bloom = BloomFilter(4096, expected_items=100)
        bloom.add_all(range(100))
        assert all(i in bloom for i in range(100))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BloomFilter(0)

    def test_size_bytes(self):
        assert BloomFilter(8 * 100).size_bytes == 100

    def test_tuple_keys(self):
        bloom = BloomFilter(1024, expected_items=4)
        bloom.add((1, "a"))
        assert (1, "a") in bloom

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(64 * 1024, expected_items=1000)
        bloom.add_all(range(1000))
        false_positives = sum(
            1 for i in range(10_000, 20_000) if i in bloom
        )
        # with m/n = 65 bits/item the FPR should be tiny
        assert false_positives < 50

    def test_expected_fpr_tracks_fill(self):
        bloom = BloomFilter(1024, expected_items=10)
        assert bloom.expected_false_positive_rate() == 0.0
        bloom.add_all(range(10))
        low = bloom.expected_false_positive_rate()
        bloom.add_all(range(10, 500))
        assert bloom.expected_false_positive_rate() > low


class TestBloomProperties:
    @given(st.sets(st.integers(), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives(self, items):
        bloom = BloomFilter(8192, expected_items=max(1, len(items)))
        bloom.add_all(items)
        assert all(item in bloom for item in items)

    @given(st.sets(st.text(max_size=8), max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives_strings(self, items):
        bloom = BloomFilter(8192, expected_items=max(1, len(items)))
        bloom.add_all(items)
        assert all(item in bloom for item in items)
