"""Tests for the synthetic workload generators."""

import pytest

from repro.workloads.empdept import (
    BIG_BUDGET_THRESHOLD,
    YOUNG_AGE_THRESHOLD,
    EmpDeptConfig,
    fresh_empdept,
)
from repro.workloads.star import StarConfig, fresh_star


class TestEmpDept:
    def test_row_counts(self):
        config = EmpDeptConfig(num_departments=30,
                               employees_per_department=7)
        db = fresh_empdept(config)
        assert db.catalog.table("Dept").num_rows == 30
        assert db.catalog.table("Emp").num_rows == 210

    def test_deterministic_given_seed(self):
        config = EmpDeptConfig(num_departments=25, seed=99)
        a = fresh_empdept(config).catalog.table("Emp").rows
        b = fresh_empdept(config).catalog.table("Emp").rows
        assert a == b

    def test_seed_changes_data(self):
        a = fresh_empdept(EmpDeptConfig(num_departments=25, seed=1))
        b = fresh_empdept(EmpDeptConfig(num_departments=25, seed=2))
        assert a.catalog.table("Emp").rows != b.catalog.table("Emp").rows

    def test_big_fraction_respected(self):
        db = fresh_empdept(EmpDeptConfig(num_departments=400,
                                         big_fraction=0.25, seed=4))
        big = sum(1 for (_d, budget) in db.catalog.table("Dept").rows
                  if budget > BIG_BUDGET_THRESHOLD)
        assert big / 400 == pytest.approx(0.25, abs=0.07)

    def test_young_fraction_respected(self):
        db = fresh_empdept(EmpDeptConfig(
            num_departments=50, employees_per_department=40,
            young_fraction=0.4, seed=5))
        emp = db.catalog.table("Emp").rows
        young = sum(1 for (_e, _d, _s, age) in emp
                    if age < YOUNG_AGE_THRESHOLD)
        assert young / len(emp) == pytest.approx(0.4, abs=0.06)

    def test_extreme_fractions(self):
        db = fresh_empdept(EmpDeptConfig(num_departments=20,
                                         big_fraction=1.0,
                                         young_fraction=0.0, seed=6))
        assert all(b > BIG_BUDGET_THRESHOLD
                   for (_d, b) in db.catalog.table("Dept").rows)
        assert all(age >= YOUNG_AGE_THRESHOLD
                   for (_e, _d, _s, age) in db.catalog.table("Emp").rows)

    def test_emp_clustered_on_did(self):
        db = fresh_empdept(EmpDeptConfig(num_departments=15))
        table = db.catalog.table("Emp")
        assert table.clustered_on == "did"
        dids = [row[1] for row in table.rows]
        assert dids == sorted(dids)
        assert table.index_on("did") is not None

    def test_view_registered_and_queryable(self):
        db = fresh_empdept(EmpDeptConfig(num_departments=10,
                                         employees_per_department=5))
        result = db.sql("SELECT V.did, V.avgsal FROM DepAvgSal V")
        assert len(result) == 10

    def test_stats_collected(self):
        db = fresh_empdept(EmpDeptConfig(num_departments=10))
        assert db.catalog.has_stats("Emp")
        assert db.catalog.has_stats("Dept")


class TestStar:
    def test_row_counts(self):
        config = StarConfig(num_customers=50, num_products=20,
                            num_stores=5, num_sales=300)
        db = fresh_star(config)
        assert db.catalog.table("Customer").num_rows == 50
        assert db.catalog.table("Sales").num_rows == 300

    def test_foreign_keys_valid(self):
        db = fresh_star(StarConfig(num_customers=30, num_products=10,
                                   num_stores=4, num_sales=200))
        custs = {r[0] for r in db.catalog.table("Customer").rows}
        prods = {r[0] for r in db.catalog.table("Product").rows}
        stores = {r[0] for r in db.catalog.table("Store").rows}
        for (_sid, cid, pid, stid, _amt, _qty) in \
                db.catalog.table("Sales").rows:
            assert cid in custs and pid in prods and stid in stores

    def test_zipf_skews_distribution(self):
        uniform = fresh_star(StarConfig(num_sales=3000, zipf_skew=0.0,
                                        seed=9))
        skewed = fresh_star(StarConfig(num_sales=3000, zipf_skew=1.2,
                                       seed=9))

        def top_share(db):
            from collections import Counter
            counts = Counter(
                r[1] for r in db.catalog.table("Sales").rows
            )
            return counts.most_common(1)[0][1] / 3000

        assert top_share(skewed) > top_share(uniform) * 2

    def test_views_queryable(self):
        db = fresh_star(StarConfig(num_sales=500))
        for view in ("CustSpend", "ProductVolume", "StoreRevenue"):
            result = db.sql("SELECT * FROM %s LIMIT 3" % view)
            assert len(result) <= 3

    def test_view_aggregates_consistent(self):
        db = fresh_star(StarConfig(num_sales=400, seed=2))
        total_from_view = sum(
            r[0] for r in
            db.sql("SELECT V.revenue FROM StoreRevenue V").rows
        )
        total_from_fact = sum(
            r[4] for r in db.catalog.table("Sales").rows
        )
        assert total_from_view == total_from_fact
