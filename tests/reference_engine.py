"""A deliberately naive reference interpreter for bound query blocks.

Evaluates a :class:`QueryBlock` by full cross product + filtering, with
no optimizer and no physical operators, sharing only the expression
interpreter with the engine under test. Differential tests compare the
real engine's answers against this oracle.
"""

from __future__ import annotations

from itertools import product
from typing import List

from repro.algebra.block import QueryBlock
from repro.expr.aggregates import Accumulator


def relation_rows_naive(relation) -> List[tuple]:
    if relation.kind == "stored":
        return list(relation.table.rows)
    if relation.kind == "view":
        return evaluate_block_naive(relation.block)
    raise NotImplementedError(
        "naive evaluation of %r relations" % relation.kind
    )


def evaluate_block_naive(block: QueryBlock) -> List[tuple]:
    combined = block.combined_schema()
    inputs = [relation_rows_naive(rel) for rel in block.relations]
    predicates = [p.resolve(combined) for p in block.predicates]

    joined = []
    for parts in product(*inputs):
        row = tuple(v for part in parts for v in part)
        if all(p.eval(row) is True for p in predicates):
            joined.append(row)

    if block.is_grouped:
        group_positions = [combined.index_of(g.name) for g in block.group_by]
        agg_args = [
            (spec, spec.argument.resolve(combined)
             if spec.argument is not None else None)
            for spec in block.aggregates
        ]
        groups = {}
        for row in joined:
            key = tuple(row[p] for p in group_positions)
            accs = groups.setdefault(key, [
                Accumulator.for_spec(spec) for spec, _ in agg_args
            ])
            for (spec, arg), acc in zip(agg_args, accs):
                acc.add(None if arg is None else arg.eval(row))
        if not groups and not group_positions and block.aggregates:
            groups[()] = [Accumulator.for_spec(s) for s, _ in agg_args]
        rows = [key + tuple(a.result() for a in accs)
                for key, accs in groups.items()]
        schema = block.group_output_schema()
        if block.having is not None:
            having = block.having.resolve(schema)
            rows = [r for r in rows if having.eval(r) is True]
    else:
        rows = joined
        schema = combined

    if block.select_items:
        exprs = [item.expr.resolve(schema) for item in block.select_items]
        rows = [tuple(e.eval(r) for e in exprs) for r in rows]
        schema = block.output_schema()

    if block.distinct:
        seen, dedup = set(), []
        for row in rows:
            if row not in seen:
                seen.add(row)
                dedup.append(row)
        rows = dedup

    if block.order_by:
        for ref, ascending in reversed(block.order_by):
            position = schema.index_of(ref.name)
            rows.sort(
                key=lambda r: (r[position] is not None, r[position]),
                reverse=not ascending,
            )

    if block.limit is not None:
        rows = rows[:block.limit]
    return rows
