"""A deliberately naive reference interpreter for bound query blocks.

Evaluates a :class:`QueryBlock` by full cross product + filtering, with
no optimizer and no physical operators, sharing only the expression
interpreter with the engine under test. Differential tests compare the
real engine's answers against this oracle.

Recursive relations are evaluated by *naive* fixpoint: every round
rebinds the full accumulated result as the self-reference and
re-derives everything from scratch, stopping when a round adds nothing
new. That is deliberately different machinery from the engine's
semi-naive delta evaluation — both compute the least fixpoint of the
same monotone rule, so disagreement means a bug on one side.

``env`` maps a filter-set/delta ``param_id`` to the rows bound to it;
it threads through nested relation references so the recursive branch's
self-reference (a filterset relation in the bound form) reads the
oracle's current approximation.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional

from repro.algebra.block import QueryBlock, UnionQuery
from repro.expr.aggregates import Accumulator

#: naive-fixpoint round cap; oracle inputs are built to converge long
#: before this, so hitting it means non-termination (a test bug)
MAX_NAIVE_ITERATIONS = 10_000


def relation_rows_naive(relation, env: Optional[Dict] = None) -> List[tuple]:
    env = env or {}
    if relation.kind == "stored":
        return list(relation.table.rows)
    if relation.kind == "view":
        return evaluate_query_naive(relation.block, env)
    if relation.kind == "filterset":
        try:
            return list(env[relation.param_id])
        except KeyError:
            raise NotImplementedError(
                "filter set %r is not bound in the naive environment"
                % relation.param_id
            )
    if relation.kind == "recursive":
        return evaluate_recursive_naive(relation, env)
    raise NotImplementedError(
        "naive evaluation of %r relations" % relation.kind
    )


def evaluate_query_naive(query, env: Optional[Dict] = None) -> List[tuple]:
    """Evaluate a bound query (block or UNION chain) naively."""
    env = env or {}
    if isinstance(query, UnionQuery):
        rows = list(evaluate_block_naive(query.parts[0], env))
        for all_flag, part in zip(query.all_flags, query.parts[1:]):
            rows.extend(evaluate_block_naive(part, env))
            if not all_flag:
                seen, dedup = set(), []
                for row in rows:
                    if row not in seen:
                        seen.add(row)
                        dedup.append(row)
                rows = dedup
        if query.order_by:
            schema = query.output_schema()
            for ref, ascending in reversed(query.order_by):
                position = schema.index_of(ref.name)
                rows.sort(
                    key=lambda r: (r[position] is not None, r[position]),
                    reverse=not ascending,
                )
        if query.limit is not None:
            rows = rows[:query.limit]
        return rows
    return evaluate_block_naive(query, env)


def evaluate_recursive_naive(relation, env: Optional[Dict] = None,
                             max_iterations: int = MAX_NAIVE_ITERATIONS
                             ) -> List[tuple]:
    """Naive fixpoint of a bound :class:`RecursiveRelation`.

    UNION semantics: rebind the *entire* accumulated set each round
    until nothing new appears. UNION ALL semantics follow the SQL
    definition directly — the output is the base rows plus the chain of
    per-round derivations, each round feeding only on the previous
    round's rows (guaranteed finite only on acyclic data).
    """
    env = dict(env or {})
    base: List[tuple] = []
    for block in relation.base_blocks:
        base.extend(evaluate_block_naive(block, env))

    if relation.distinct:
        seen, out = set(), []
        for row in base:
            if row not in seen:
                seen.add(row)
                out.append(row)
        for _ in range(max_iterations):
            env[relation.delta_param] = list(out)
            produced = evaluate_block_naive(relation.recursive_block, env)
            grew = False
            for row in produced:
                if row not in seen:
                    seen.add(row)
                    out.append(row)
                    grew = True
            if not grew:
                return out
    else:
        out = list(base)
        delta = list(base)
        for _ in range(max_iterations):
            if not delta:
                return out
            env[relation.delta_param] = delta
            delta = evaluate_block_naive(relation.recursive_block, env)
            out.extend(delta)
    raise RuntimeError(
        "naive fixpoint of %r did not converge within %d rounds"
        % (relation.alias, max_iterations)
    )


def evaluate_block_naive(block: QueryBlock,
                         env: Optional[Dict] = None) -> List[tuple]:
    env = env or {}
    combined = block.combined_schema()
    inputs = [relation_rows_naive(rel, env) for rel in block.relations]
    predicates = [p.resolve(combined) for p in block.predicates]

    joined = []
    for parts in product(*inputs):
        row = tuple(v for part in parts for v in part)
        if all(p.eval(row) is True for p in predicates):
            joined.append(row)

    if block.is_grouped:
        group_positions = [combined.index_of(g.name) for g in block.group_by]
        agg_args = [
            (spec, spec.argument.resolve(combined)
             if spec.argument is not None else None)
            for spec in block.aggregates
        ]
        groups = {}
        for row in joined:
            key = tuple(row[p] for p in group_positions)
            accs = groups.setdefault(key, [
                Accumulator.for_spec(spec) for spec, _ in agg_args
            ])
            for (spec, arg), acc in zip(agg_args, accs):
                acc.add(None if arg is None else arg.eval(row))
        if not groups and not group_positions and block.aggregates:
            groups[()] = [Accumulator.for_spec(s) for s, _ in agg_args]
        rows = [key + tuple(a.result() for a in accs)
                for key, accs in groups.items()]
        schema = block.group_output_schema()
        if block.having is not None:
            having = block.having.resolve(schema)
            rows = [r for r in rows if having.eval(r) is True]
    else:
        rows = joined
        schema = combined

    if block.select_items:
        exprs = [item.expr.resolve(schema) for item in block.select_items]
        rows = [tuple(e.eval(r) for e in exprs) for r in rows]
        schema = block.output_schema()

    if block.distinct:
        seen, dedup = set(), []
        for row in rows:
            if row not in seen:
                seen.add(row)
                dedup.append(row)
        rows = dedup

    if block.order_by:
        for ref, ascending in reversed(block.order_by):
            position = schema.index_of(ref.name)
            rows.sort(
                key=lambda r: (r[position] is not None, r[position]),
                reverse=not ascending,
            )

    if block.limit is not None:
        rows = rows[:block.limit]
    return rows
