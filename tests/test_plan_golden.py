"""Golden-plan regression tests.

Snapshots ``plan.explain()`` for a battery of canonical queries —
EmpDept, star-schema, UDF, and distributed — under three optimizer
regimes into ``tests/golden/``. Any planner change (costing tweak,
new rule, enumeration-order fix) now shows up as a reviewable diff
instead of a silent behavior shift.

To refresh after an intentional planner change::

    PYTHONPATH=src python -m pytest tests/test_plan_golden.py --update-golden

One golden file per (workload, regime) keeps diffs grouped by what
changed; each file holds every query's plan under a ``-- Qn:`` header.
"""

import pathlib
import random

import pytest

from repro import Database, DataType, OptimizerConfig, OptimizerTrace
from repro.distributed import DistributedDatabase, distributed_config
from repro.workloads import (
    EmpDeptConfig,
    GraphConfig,
    MOTIVATING_QUERY,
    StarConfig,
    build_graph,
    fresh_empdept,
    fresh_star,
    graph_edges,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: regime name -> OptimizerConfig overrides (applied on top of the
#: workload's base config, so distributed queries keep network weights)
REGIMES = {
    "default": {},
    "no_filter_join": {
        "enable_filter_join": False,
        "enable_bloom_filter": False,
    },
    "low_memory_hash_only": {
        "memory_pages": 8,
        "enable_index_nested_loops": False,
        "enable_merge_join": False,
        "enable_bloom_filter": False,
    },
}

EMPDEPT_QUERIES = [
    ("motivating", MOTIVATING_QUERY.strip()),
    ("young_filter", "SELECT E.eid, E.sal FROM Emp E WHERE E.age < 30"),
    ("index_probe", "SELECT E.eid FROM Emp E WHERE E.did = 7"),
    ("join_budget",
     "SELECT E.eid, D.budget FROM Emp E, Dept D "
     "WHERE E.did = D.did AND D.budget > 100000"),
    ("view_join",
     "SELECT E.eid, V.avgsal FROM Emp E, DepAvgSal V "
     "WHERE E.did = V.did AND E.age < 30"),
    ("group_avg",
     "SELECT E.did, AVG(E.sal) AS avgsal, COUNT(*) AS heads "
     "FROM Emp E GROUP BY E.did"),
    ("ordered_top",
     "SELECT E.eid, E.sal FROM Emp E WHERE E.sal > 50000 "
     "ORDER BY E.sal DESC LIMIT 10"),
    ("distinct_depts",
     "SELECT DISTINCT E.did FROM Emp E WHERE E.age < 30"),
]

STAR_QUERIES = [
    ("cust_spend",
     "SELECT C.region, V.total_spend FROM Customer C, CustSpend V "
     "WHERE C.cust_id = V.cust_id AND C.segment = 1"),
    ("product_volume",
     "SELECT P.category, V.total_qty FROM Product P, ProductVolume V "
     "WHERE P.prod_id = V.prod_id AND P.price > 400"),
    ("store_revenue",
     "SELECT S2.region, V.revenue FROM Store S2, StoreRevenue V "
     "WHERE S2.store_id = V.store_id AND S2.sqft > 40000"),
    ("three_way",
     "SELECT C.region, P.category, S.amount "
     "FROM Sales S, Customer C, Product P "
     "WHERE S.cust_id = C.cust_id AND S.prod_id = P.prod_id "
     "AND P.price > 450 AND C.segment = 2"),
    ("sales_by_region",
     "SELECT C.region, SUM(S.amount) AS revenue "
     "FROM Sales S, Customer C WHERE S.cust_id = C.cust_id "
     "GROUP BY C.region"),
    ("big_stores",
     "SELECT S2.store_id, S2.sqft FROM Store S2 "
     "WHERE S2.sqft > 45000 ORDER BY S2.sqft DESC"),
]

UDF_QUERIES = [
    ("square_join",
     "SELECT P.pid, F.xx FROM Pts P, square F WHERE P.x = F.x"),
    ("square_selective",
     "SELECT P.pid, F.xx FROM Pts P, square F "
     "WHERE P.x = F.x AND P.pid < 40"),
    ("square_distinct",
     "SELECT DISTINCT F.xx FROM Pts P, square F WHERE P.x = F.x"),
]

def _tc(table, where=""):
    return (
        "WITH RECURSIVE tc(x, y) AS ("
        "SELECT src, dst FROM %s "
        "UNION "
        "SELECT t.x, e.dst FROM tc t, %s e WHERE t.y = e.src) "
        "SELECT x, y FROM tc%s ORDER BY x, y"
        % (table, table, (" " + where) if where else "")
    )


# The recursive battery pins both sides of the DP's magic/fixpoint
# costed pair: bounded reachability on the sparse tree chooses the
# magic-restricted fixpoint, while on the dense near-complete graph
# (closure barely exceeds the base) the DP rejects magic because its
# extra iterations outweigh the restricted frontier.
RECURSIVE_QUERIES = [
    ("tc_full", _tc("Edge")),
    ("tc_bounded", _tc("Edge", "WHERE x = 1")),
    ("tc_bounded_in", _tc("Edge", "WHERE x IN (2, 3)")),
    ("tc_dense_bounded", _tc("DenseEdge", "WHERE x = 1")),
    ("tc_join_base",
     "WITH RECURSIVE tc(x, y) AS ("
     "SELECT src, dst FROM Edge "
     "UNION "
     "SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src) "
     "SELECT T.x, E.dst FROM tc T, Edge E "
     "WHERE T.y = E.src AND T.x = 1 ORDER BY E.dst"),
]

DISTRIBUTED_QUERIES = [
    ("remote_join",
     "SELECT O.oid, C.name FROM Orders O, Cust C "
     "WHERE O.cid = C.cid AND O.total > 900"),
    ("remote_selective",
     "SELECT O.oid, C.region FROM Orders O, Cust C "
     "WHERE O.cid = C.cid AND O.total > 990"),
    ("remote_agg",
     "SELECT C.region, COUNT(*) AS orders FROM Orders O, Cust C "
     "WHERE O.cid = C.cid GROUP BY C.region"),
]


def _empdept_db():
    return fresh_empdept(EmpDeptConfig(
        num_departments=40, employees_per_department=15,
        big_fraction=0.2, young_fraction=0.3, seed=11,
    ))


def _star_db():
    return fresh_star(StarConfig(num_sales=1500, seed=7))


def _udf_db():
    db = Database()
    db.create_table("Pts", [("pid", DataType.INT), ("x", DataType.INT)])
    db.insert("Pts", [(i, i % 10) for i in range(200)])
    db.analyze()
    db.functions.register_function(
        "square", [("x", DataType.INT)], [("xx", DataType.INT)],
        lambda args: [(args[0] * args[0],)],
        cost_per_invocation=2.0, locality_factor=0.5,
    )
    return db


def _distributed_db():
    rng = random.Random(1)
    db = DistributedDatabase(distributed_config(1.0, 0.001))
    db.create_table("Orders", [("oid", DataType.INT),
                               ("cid", DataType.INT),
                               ("total", DataType.INT)])
    db.create_table("Cust", [("cid", DataType.INT),
                             ("name", DataType.STR),
                             ("region", DataType.STR)], site="siteB")
    db.insert("Orders", [
        (i, rng.randint(1, 400), rng.randint(1, 1000))
        for i in range(1, 2001)
    ])
    db.insert("Cust", [
        (c, "n%d" % c, rng.choice(["east", "west"]))
        for c in range(1, 401)
    ])
    db.analyze()
    return db


def _recursive_db():
    db = Database()
    build_graph(db, GraphConfig("tree", num_nodes=60, branching=3))
    db.create_table("DenseEdge", [("src", DataType.INT),
                                  ("dst", DataType.INT)])
    db.insert("DenseEdge", graph_edges(
        GraphConfig("random", num_nodes=110, edge_prob=0.8, seed=5)))
    db.analyze()
    return db


WORKLOADS = {
    "empdept": (_empdept_db, EMPDEPT_QUERIES),
    "star": (_star_db, STAR_QUERIES),
    "udf": (_udf_db, UDF_QUERIES),
    "distributed": (_distributed_db, DISTRIBUTED_QUERIES),
    "recursive": (_recursive_db, RECURSIVE_QUERIES),
}

_DB_CACHE = {}


def _workload_db(name):
    if name not in _DB_CACHE:
        _DB_CACHE[name] = WORKLOADS[name][0]()
    return _DB_CACHE[name]


def _regime_config(db, overrides):
    config = db.config.replace(**overrides) if overrides else db.config
    config.validate()
    return config


def snapshot_text(db, queries, config, search=False) -> str:
    chunks = []
    for key, sql in queries:
        trace = OptimizerTrace() if search else None
        plan, _planner = db.plan(sql, config, search=trace)
        if trace is not None:
            assert trace.records, "search trace recorded nothing"
        chunks.append("-- %s: %s\n%s\n" % (
            key, " ".join(sql.split()), plan.explain(),
        ))
    return "\n".join(chunks)


def test_coverage_floor():
    """The acceptance criterion: >=20 queries x 3 regimes."""
    total = sum(len(queries) for _build, queries in WORKLOADS.values())
    assert total >= 20
    assert len(REGIMES) == 3


@pytest.mark.parametrize("regime", sorted(REGIMES))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_golden_plans(workload, regime, update_golden):
    db = _workload_db(workload)
    config = _regime_config(db, REGIMES[regime])
    text = snapshot_text(db, WORKLOADS[workload][1], config)
    golden_path = GOLDEN_DIR / ("%s__%s.txt" % (workload, regime))
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(text)
        return
    assert golden_path.exists(), (
        "missing golden file %s — run with --update-golden to create it"
        % golden_path
    )
    expected = golden_path.read_text()
    assert text == expected, (
        "plan snapshot for %s/%s changed; if intentional, refresh with "
        "`pytest tests/test_plan_golden.py --update-golden` and review "
        "the diff" % (workload, regime)
    )


@pytest.mark.parametrize("regime", sorted(REGIMES))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_golden_plans_identical_under_search_tracing(workload, regime):
    """Search tracing is observation only: with an OptimizerTrace
    attached, every golden plan must stay byte-identical."""
    db = _workload_db(workload)
    config = _regime_config(db, REGIMES[regime])
    golden_path = GOLDEN_DIR / ("%s__%s.txt" % (workload, regime))
    assert golden_path.exists(), (
        "missing golden file %s — run with --update-golden to create it"
        % golden_path
    )
    traced = snapshot_text(db, WORKLOADS[workload][1], config,
                           search=True)
    assert traced == golden_path.read_text(), (
        "search tracing perturbed the chosen plan for %s/%s"
        % (workload, regime)
    )


def test_recursive_golden_pins_both_magic_decisions():
    """The default-regime recursive snapshot must witness the DP
    choosing the magic-restricted fixpoint on one query and rejecting
    it (full fixpoint under a residual filter) on another."""
    text = (GOLDEN_DIR / "recursive__default.txt").read_text()
    sections = {}
    for chunk in text.split("-- "):
        if chunk.strip():
            key = chunk.split(":", 1)[0]
            sections[key] = chunk
    assert "MagicFixpoint" in sections["tc_bounded"]
    assert "MagicFixpoint" not in sections["tc_dense_bounded"]
    assert "Fixpoint" in sections["tc_dense_bounded"]
    assert "MagicFixpoint" not in sections["tc_full"]


def test_snapshots_are_stable_within_process():
    """Planning the same battery twice yields identical text (guards
    against enumeration order leaking nondeterminism into plans)."""
    workload = "empdept"
    db = _workload_db(workload)
    config = _regime_config(db, REGIMES["default"])
    first = snapshot_text(db, WORKLOADS[workload][1], config)
    second = snapshot_text(db, WORKLOADS[workload][1], config)
    assert first == second
