"""Regression tests for planner cache identity (id-reuse) bugs.

The planner memoizes per-block and per-relation results keyed by
``id()``. Python reuses the ids of collected objects, so the caches must
pin the keyed objects; before that fix, successive nested optimizations
could silently read another block's cached statistics (the failure was
allocation-order dependent and surfaced as nondeterministic estimates
across processes).
"""

import gc

from repro import OptimizerConfig
from repro.optimizer.planner import Planner
from repro.workloads import EmpDeptConfig, MOTIVATING_QUERY, fresh_empdept


def exact_estimates(db, probes):
    planner = Planner(db.catalog, OptimizerConfig(enable_parametric=False))
    block = db.bind(MOTIVATING_QUERY)
    coster = planner._coster_for(block.relation("V"), ["did"], lossy=False)
    return [coster.estimate(float(f)) for f in probes]


def test_repeated_nested_optimizations_are_stable():
    """Planning the same restricted block many times (with gc churn in
    between) must give identical estimates every time."""
    db = fresh_empdept(EmpDeptConfig(num_departments=60,
                                     employees_per_department=15))
    probes = [1, 4, 9, 25, 60]
    first = exact_estimates(db, probes)
    for _ in range(3):
        gc.collect()
        # allocate garbage to encourage id reuse
        _junk = [object() for _ in range(10_000)]
        assert exact_estimates(db, probes) == first


def test_estimation_error_monotone_in_classes():
    """The Figure-5 knob: more classes never increases the exact-vs-
    approx estimation error on this workload (it was wildly non-monotone
    under the id-reuse bug)."""
    db = fresh_empdept(EmpDeptConfig(num_departments=80,
                                     employees_per_department=20))
    block = db.bind(MOTIVATING_QUERY)
    probes = [1.0, 3.0, 9.0, 27.0, 80.0]
    exact = Planner(db.catalog, OptimizerConfig(enable_parametric=False))
    exact_coster = exact._coster_for(block.relation("V"), ["did"],
                                     lossy=False)
    exact_costs = [exact_coster.estimate(f)[0] for f in probes]

    def mean_error(classes):
        planner = Planner(db.catalog,
                          OptimizerConfig(parametric_classes=classes))
        coster = planner._coster_for(block.relation("V"), ["did"],
                                     lossy=False)
        errors = []
        for probe, exact_cost in zip(probes, exact_costs):
            approx_cost, _rows = coster.estimate(probe)
            if exact_cost > 0:
                errors.append(abs(approx_cost - exact_cost) / exact_cost)
        return sum(errors) / len(errors)

    coarse = mean_error(2)
    fine = mean_error(8)
    assert fine <= coarse + 1e-9


def test_same_planner_replans_consistently():
    """A single planner asked to plan the same query twice must produce
    plans with identical estimated cost."""
    db = fresh_empdept(EmpDeptConfig(num_departments=50,
                                     employees_per_department=12))
    config = OptimizerConfig()
    block1 = db.bind(MOTIVATING_QUERY)
    block2 = db.bind(MOTIVATING_QUERY)
    planner = Planner(db.catalog, config)
    cost1 = planner.plan(block1).est_cost
    gc.collect()
    cost2 = planner.plan(block2).est_cost
    assert cost1 == cost2
