"""Regression tests for planner cache identity (id-reuse) bugs.

The planner memoizes per-block and per-relation results keyed by
``id()``. Python reuses the ids of collected objects, so the caches must
pin the keyed objects; before that fix, successive nested optimizations
could silently read another block's cached statistics (the failure was
allocation-order dependent and surfaced as nondeterministic estimates
across processes).
"""

import gc

from repro import OptimizerConfig
from repro.optimizer.planner import Planner
from repro.workloads import EmpDeptConfig, MOTIVATING_QUERY, fresh_empdept


def exact_estimates(db, probes):
    planner = Planner(db.catalog, OptimizerConfig(enable_parametric=False))
    block = db.bind(MOTIVATING_QUERY)
    coster = planner._coster_for(block.relation("V"), ["did"], lossy=False)
    return [coster.estimate(float(f)) for f in probes]


def test_repeated_nested_optimizations_are_stable():
    """Planning the same restricted block many times (with gc churn in
    between) must give identical estimates every time."""
    db = fresh_empdept(EmpDeptConfig(num_departments=60,
                                     employees_per_department=15))
    probes = [1, 4, 9, 25, 60]
    first = exact_estimates(db, probes)
    for _ in range(3):
        gc.collect()
        # allocate garbage to encourage id reuse
        _junk = [object() for _ in range(10_000)]
        assert exact_estimates(db, probes) == first


def test_estimation_error_monotone_in_classes():
    """The Figure-5 knob: more classes never increases the exact-vs-
    approx estimation error on this workload (it was wildly non-monotone
    under the id-reuse bug)."""
    db = fresh_empdept(EmpDeptConfig(num_departments=80,
                                     employees_per_department=20))
    block = db.bind(MOTIVATING_QUERY)
    probes = [1.0, 3.0, 9.0, 27.0, 80.0]
    exact = Planner(db.catalog, OptimizerConfig(enable_parametric=False))
    exact_coster = exact._coster_for(block.relation("V"), ["did"],
                                     lossy=False)
    exact_costs = [exact_coster.estimate(f)[0] for f in probes]

    def mean_error(classes):
        planner = Planner(db.catalog,
                          OptimizerConfig(parametric_classes=classes))
        coster = planner._coster_for(block.relation("V"), ["did"],
                                     lossy=False)
        errors = []
        for probe, exact_cost in zip(probes, exact_costs):
            approx_cost, _rows = coster.estimate(probe)
            if exact_cost > 0:
                errors.append(abs(approx_cost - exact_cost) / exact_cost)
        return sum(errors) / len(errors)

    coarse = mean_error(2)
    fine = mean_error(8)
    assert fine <= coarse + 1e-9


def test_same_planner_replans_consistently():
    """A single planner asked to plan the same query twice must produce
    plans with identical estimated cost."""
    db = fresh_empdept(EmpDeptConfig(num_departments=50,
                                     employees_per_department=12))
    config = OptimizerConfig()
    block1 = db.bind(MOTIVATING_QUERY)
    block2 = db.bind(MOTIVATING_QUERY)
    planner = Planner(db.catalog, config)
    cost1 = planner.plan(block1).est_cost
    gc.collect()
    cost2 = planner.plan(block2).est_cost
    assert cost1 == cost2


def test_cross_statement_cache_survives_id_reuse_churn():
    """The cross-statement plan cache layered over the planner's
    ``id()``-keyed intra-statement caches must keep the pin semantics:
    a cached plan outlives its planner and its bound block, so with gc
    churn and interleaved plannings of *other* statements its cost and
    answers must stay byte-identical to a fresh-planned run."""
    db = fresh_empdept(EmpDeptConfig(num_departments=40,
                                     employees_per_department=10))
    handle = db.prepare(MOTIVATING_QUERY)
    baseline_cost = handle.plan.est_cost
    baseline_rows = sorted(handle.execute().rows)
    for i in range(3):
        gc.collect()
        _junk = [object() for _ in range(10_000)]
        # interleave other nested-optimizing statements to churn ids
        other = db.prepare(
            "SELECT E.did, V.avgsal FROM Emp E, DepAvgSal V "
            "WHERE E.did = V.did AND E.age < %d" % (25 + i)
        )
        other.execute()
        assert handle.plan.est_cost == baseline_cost
        assert sorted(handle.execute().rows) == baseline_rows
    # a from-scratch plan of the same statement agrees exactly
    fresh_plan, _ = db.plan(MOTIVATING_QUERY)
    assert fresh_plan.est_cost == baseline_cost


def test_plan_cache_hit_reuses_nested_optimization_work():
    """A cache hit must not redo nested optimizations: the planner
    metrics attached to a cached result are the original planning's,
    and no new planner runs for the repeat execution."""
    db = fresh_empdept(EmpDeptConfig(num_departments=40,
                                     employees_per_department=10))
    handle = db.prepare(MOTIVATING_QUERY)
    first = handle.execute()
    marker = db.last_planner  # planner that built the cached plan
    second = handle.execute()
    assert second.cached_plan is True
    assert db.last_planner is marker  # no replan happened
    assert second.metrics is first.metrics
    assert second.metrics.nested_optimizations > 0
