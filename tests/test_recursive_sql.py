"""Recursive SQL front end: WITH RECURSIVE, CREATE RECURSIVE VIEW,
validation errors, the iteration limit, and deadline interruption."""

import time

import pytest

import repro
from repro import (
    DataType,
    FixpointLimitExceeded,
    Options,
    QueryTimeout,
    RecursiveViewError,
)
from repro.workloads import GraphConfig, build_graph, fresh_graph, tc_query


def _chain_db(n=6):
    return fresh_graph(GraphConfig("chain", num_nodes=n))


def _cycle_db(n=4):
    return fresh_graph(GraphConfig("cycle", num_nodes=n))


CHAIN_TC = [(i, j) for i in range(1, 6) for j in range(i + 1, 7)]


class TestWithRecursive:
    def test_transitive_closure_on_chain(self):
        db = _chain_db(6)
        assert db.sql(tc_query()).rows == sorted(CHAIN_TC)

    def test_outer_binding_restricts_closure(self):
        db = _chain_db(6)
        assert db.sql(tc_query("WHERE x = 3")).rows == \
            [(3, j) for j in range(4, 7)]

    def test_union_all_counts_paths(self):
        # diamond: two paths 1->4, so (1, 4) appears twice under ALL
        db = repro.connect()
        db.create_table("Edge", [("src", DataType.INT), ("dst", DataType.INT)])
        db.insert("Edge", [(1, 2), (1, 3), (2, 4), (3, 4)])
        db.analyze()
        sql = (
            "WITH RECURSIVE tc(x, y) AS ("
            " SELECT src, dst FROM Edge"
            " UNION ALL"
            " SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src)"
            " SELECT x, y FROM tc ORDER BY x, y"
        )
        rows = db.sql(sql).rows
        assert rows.count((1, 4)) == 2
        assert rows.count((1, 2)) == 1

    def test_non_recursive_cte_under_with_recursive_keyword(self):
        # RECURSIVE declared but no self-reference: plain CTE semantics
        db = _chain_db(4)
        sql = (
            "WITH RECURSIVE e2(a, b) AS ("
            " SELECT src, dst FROM Edge WHERE src < 3)"
            " SELECT a, b FROM e2 ORDER BY a"
        )
        assert db.sql(sql).rows == [(1, 2), (2, 3)]

    def test_explain_names_the_fixpoint(self):
        db = _chain_db(5)
        plan = db.sql(tc_query("WHERE x = 1")).plan
        assert "Fixpoint" in plan.explain()

    def test_prepared_statement_reuse(self):
        db = _chain_db(5)
        stmt = db.prepare(tc_query("WHERE x = 2"))
        assert stmt.is_query
        first = stmt.execute().rows
        assert first == stmt.execute().rows
        assert first == [(2, j) for j in range(3, 6)]


class TestRecursiveViews:
    def test_create_recursive_view_sql(self):
        db = _chain_db(5)
        db.sql(
            "CREATE RECURSIVE VIEW tc (x, y) AS"
            " SELECT src, dst FROM Edge"
            " UNION"
            " SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src"
        )
        rows = db.sql("SELECT x, y FROM tc WHERE x = 1 ORDER BY y").rows
        assert rows == [(1, j) for j in range(2, 6)]

    def test_create_view_api_recursive_flag(self):
        db = _chain_db(4)
        db.create_view(
            "tc",
            "SELECT src, dst FROM Edge"
            " UNION"
            " SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src",
            column_aliases=("x", "y"),
            recursive=True,
        )
        assert db.sql("SELECT x, y FROM tc ORDER BY x, y").rows == \
            [(i, j) for i in range(1, 4) for j in range(i + 1, 5)]

    def test_plain_view_self_reference_is_typed_error(self):
        db = _chain_db(3)
        db.create_view("v", "SELECT src, dst FROM Edge"
                            " UNION SELECT src, dst FROM v")
        with pytest.raises(RecursiveViewError) as exc:
            db.sql("SELECT * FROM v")
        assert "CREATE RECURSIVE VIEW" in str(exc.value)
        assert exc.value.view_name == "v"


class TestValidation:
    def _bad(self, db, sql, fragment):
        with pytest.raises(RecursiveViewError) as exc:
            db.sql(sql)
        assert fragment in str(exc.value)
        return exc.value

    def test_self_reference_without_recursive_keyword(self):
        db = _chain_db(3)
        err = self._bad(
            db,
            "WITH tc(x, y) AS (SELECT src, dst FROM Edge UNION"
            " SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src)"
            " SELECT * FROM tc",
            "WITH RECURSIVE",
        )
        assert err.view_name == "tc"

    def test_non_linear_two_references_in_one_branch(self):
        db = _chain_db(3)
        self._bad(
            db,
            "WITH RECURSIVE tc(x, y) AS (SELECT src, dst FROM Edge UNION"
            " SELECT a.x, b.y FROM tc a, tc b WHERE a.y = b.x)"
            " SELECT * FROM tc",
            "non-linear",
        )

    def test_non_linear_two_recursive_branches(self):
        db = _chain_db(3)
        self._bad(
            db,
            "WITH RECURSIVE tc(x, y) AS (SELECT src, dst FROM Edge"
            " UNION SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src"
            " UNION SELECT e.src, t.y FROM Edge e, tc t WHERE e.dst = t.x)"
            " SELECT * FROM tc",
            "non-linear",
        )

    def test_self_reference_inside_subquery(self):
        db = _chain_db(3)
        self._bad(
            db,
            "WITH RECURSIVE tc(x, y) AS (SELECT src, dst FROM Edge UNION"
            " SELECT s.x, s.y FROM (SELECT x, y FROM tc) s)"
            " SELECT * FROM tc",
            "subquery",
        )

    def test_missing_base_branch(self):
        db = _chain_db(3)
        self._bad(
            db,
            "WITH RECURSIVE tc(x, y) AS ("
            " SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src)"
            " SELECT * FROM tc",
            "base",
        )

    def test_aggregate_in_recursive_branch(self):
        db = _chain_db(3)
        self._bad(
            db,
            "WITH RECURSIVE tc(x, y) AS (SELECT src, dst FROM Edge UNION"
            " SELECT t.x, MAX(e.dst) FROM tc t, Edge e WHERE t.y = e.src"
            " GROUP BY t.x)"
            " SELECT * FROM tc",
            "aggregate",
        )

    def test_order_by_on_recursive_definition(self):
        db = _chain_db(3)
        self._bad(
            db,
            "WITH RECURSIVE tc(x, y) AS (SELECT src, dst FROM Edge UNION"
            " SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src"
            " ORDER BY x LIMIT 3)"
            " SELECT * FROM tc",
            "ORDER BY",
        )

    def test_union_width_mismatch(self):
        db = _chain_db(3)
        self._bad(
            db,
            "WITH RECURSIVE tc(x, y) AS (SELECT src, dst FROM Edge UNION"
            " SELECT t.x, e.dst, e.src FROM tc t, Edge e WHERE t.y = e.src)"
            " SELECT * FROM tc",
            "columns",
        )

    def test_mutual_recursion_between_ctes(self):
        db = _chain_db(3)
        with pytest.raises(RecursiveViewError) as exc:
            db.sql(
                "WITH RECURSIVE a(x) AS (SELECT src FROM Edge UNION"
                " SELECT x FROM b),"
                " b(x) AS (SELECT dst FROM Edge UNION SELECT x FROM a)"
                " SELECT * FROM a"
            )
        assert "recursion" in str(exc.value) or "references" in str(exc.value)


class TestFixpointLimit:
    # UNION ALL on a cycle never converges; only the limit stops it
    DIVERGENT = (
        "WITH RECURSIVE tc(x, y) AS ("
        " SELECT src, dst FROM Edge"
        " UNION ALL"
        " SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src)"
        " SELECT x, y FROM tc"
    )

    def test_limit_raises_typed_error_with_fields(self):
        db = _cycle_db(4)
        with pytest.raises(FixpointLimitExceeded) as exc:
            db.sql(self.DIVERGENT, options=Options(max_fixpoint_iterations=25))
        assert exc.value.limit == 25
        assert exc.value.iterations >= 25

    def test_limit_is_a_connection_default(self):
        db = _cycle_db(3)
        db.configure(max_fixpoint_iterations=10)
        with pytest.raises(FixpointLimitExceeded) as exc:
            db.sql(self.DIVERGENT)
        assert exc.value.limit == 10
        # per-call option overrides the connection default
        with pytest.raises(FixpointLimitExceeded) as exc:
            db.sql(self.DIVERGENT, options=Options(max_fixpoint_iterations=7))
        assert exc.value.limit == 7

    def test_generous_limit_lets_union_converge(self):
        db = _cycle_db(4)
        rows = db.sql(tc_query(), options=Options(max_fixpoint_iterations=50))
        assert len(rows.rows) == 16  # full closure of a 4-cycle

    def test_limit_error_is_a_structured_event(self):
        db = _cycle_db(3)
        db.event_log.enable()
        with pytest.raises(FixpointLimitExceeded):
            db.sql(self.DIVERGENT, options=Options(max_fixpoint_iterations=5))
        errors = db.event_log.events(event="error")
        assert errors
        assert errors[-1]["error"] == "FixpointLimitExceeded"

    def test_vector_engine_enforces_the_same_limit(self):
        db = _cycle_db(3)
        with pytest.raises(FixpointLimitExceeded):
            db.sql(self.DIVERGENT,
                   options=Options(engine="vector",
                                   max_fixpoint_iterations=25))


class TestDeadline:
    def test_deadline_interrupts_fixpoint_mid_iteration(self):
        # a large random graph whose closure takes real work per pass;
        # the deadline must fire inside the fixpoint, not after it
        db = fresh_graph(GraphConfig("random", num_nodes=60,
                                     edge_prob=0.4, seed=11))
        started = time.perf_counter()
        with pytest.raises(QueryTimeout):
            db.sql(tc_query(), options=Options(timeout=0.01))
        elapsed = time.perf_counter() - started
        assert elapsed < 5.0
