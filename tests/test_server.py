"""End-to-end tests for the TCP SQL server and its client.

A real server runs on an ephemeral port in a background event-loop
thread; real :class:`~repro.server.Client` sockets (and, for the
malformed-frame tests, raw sockets) drive it. The contract under test:

- one MVCC session per connection, so snapshot isolation holds across
  the wire exactly as it does embedded;
- typed errors survive serialization — a ``SerializationError`` on the
  server is a ``SerializationError`` in the client;
- request-level garbage (unknown op, missing field) is answered in-band
  and the connection stays usable; stream-level garbage (unparseable
  frame, oversized header) gets one error frame and a disconnect;
- a vanished client's open transaction is rolled back.
"""

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro import (
    BindError,
    Database,
    DataType,
    ProtocolError,
    SerializationError,
    SqlSyntaxError,
)
from repro.server import Client, Server
from repro.server.protocol import HEADER, MAX_FRAME_BYTES, encode_frame


class ServerHarness:
    """A live server on an ephemeral port, driven from a loop thread."""

    def __init__(self, db):
        self.db = db
        self.server = Server(db)
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._ready.set()
        self._loop.run_forever()

    def start(self):
        self._thread.start()
        assert self._ready.wait(10), "server failed to start"
        return self

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop).result(10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10)
        self._loop.close()

    def connect(self, **kwargs) -> Client:
        host, port = self.server.address
        return Client(host, port, **kwargs)

    def raw_socket(self) -> socket.socket:
        """A bare socket that has consumed the greeting frame."""
        sock = socket.create_connection(self.server.address, timeout=10)
        length = struct.unpack("<I", _read_exact(sock, HEADER.size))[0]
        _read_exact(sock, length)
        return sock


def _read_exact(sock, count):
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise ConnectionError("peer closed")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _wait_until(condition, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.01)
    return False


@pytest.fixture()
def harness():
    db = Database()
    db.create_table("t", [("id", DataType.INT), ("v", DataType.INT)])
    db.insert("t", [(1, 10), (2, 20), (3, 30)])
    h = ServerHarness(db).start()
    yield h
    h.stop()


class TestProtocolBasics:
    def test_greeting_ping_and_distinct_conn_ids(self, harness):
        with harness.connect() as a, harness.connect() as b:
            assert a.protocol == 1
            assert a.conn_id and b.conn_id and a.conn_id != b.conn_id
            assert a.ping() and b.ping()

    def test_sql_roundtrip(self, harness):
        with harness.connect() as client:
            result = client.sql("SELECT id, v FROM t WHERE id <= 2")
            assert sorted(result.rows) == [(1, 10), (2, 20)]
            assert result.columns == ["id", "v"]
            assert result.statement_kind == "select"
            assert result.to_dicts()[0].keys() == {"id", "v"}
            count = client.sql("UPDATE t SET v = v + 1 WHERE id = 1")
            assert count.rows == [(1,)]
            assert count.statement_kind == "update"

    def test_script_returns_one_result_per_statement(self, harness):
        with harness.connect() as client:
            results = client.execute_script(
                "INSERT INTO t VALUES (9, 90); SELECT v FROM t "
                "WHERE id = 9;")
            assert len(results) == 2
            assert results[0].statement_kind == "insert"
            assert results[1].rows == [(90,)]

    def test_status_names_this_connections_session(self, harness):
        with harness.connect() as client:
            status = client.status()
            assert status["session"] == client.conn_id
            assert status["active"] is False
            client.sql("BEGIN")
            assert client.status()["active"] is True
            client.sql("ROLLBACK")

    def test_metrics_over_the_wire(self, harness):
        with harness.connect() as client:
            client.sql("SELECT * FROM t")
            metrics = client.metrics()
            assert metrics["server_statements_total"]["total"] >= 1
            assert metrics["server_connections_total"]["total"] >= 1

    def test_close_is_idempotent(self, harness):
        client = harness.connect()
        client.close()
        client.close()
        with pytest.raises(ProtocolError):
            client.sql("SELECT 1 AS x")


class TestIsolationOverTheWire:
    def test_connections_are_snapshot_isolated(self, harness):
        with harness.connect() as a, harness.connect() as b:
            a.sql("BEGIN")
            assert a.sql("SELECT v FROM t WHERE id = 1").rows == [(10,)]
            b.sql("UPDATE t SET v = 99 WHERE id = 1")
            # a's snapshot predates b's commit
            assert a.sql("SELECT v FROM t WHERE id = 1").rows == [(10,)]
            a.sql("COMMIT")
            assert a.sql("SELECT v FROM t WHERE id = 1").rows == [(99,)]

    def test_write_conflict_is_a_typed_serialization_error(self, harness):
        with harness.connect() as a, harness.connect() as b:
            a.sql("BEGIN")
            b.sql("BEGIN")
            a.sql("UPDATE t SET v = 1 WHERE id = 1")
            with pytest.raises(SerializationError):
                b.sql("UPDATE t SET v = 2 WHERE id = 1")
            b.sql("ROLLBACK")
            a.sql("COMMIT")
            # the standard remedy works over the wire too
            b.sql("UPDATE t SET v = 3 WHERE id = 1")
            assert b.sql("SELECT v FROM t WHERE id = 1").rows == [(3,)]

    def test_disconnect_mid_transaction_rolls_back(self, harness):
        doomed = harness.connect()
        doomed.sql("BEGIN")
        doomed.sql("UPDATE t SET v = 777 WHERE id = 1")
        doomed._sock.close()  # vanish without the goodbye
        assert _wait_until(lambda: not harness.db.txn.any_open_txn())
        with harness.connect() as witness:
            rows = witness.sql("SELECT v FROM t WHERE id = 1").rows
            assert rows == [(10,)], "uncommitted write survived"


class TestErrorBoundaries:
    def test_sql_errors_are_typed_and_survivable(self, harness):
        with harness.connect() as client:
            with pytest.raises(SqlSyntaxError):
                client.sql("SELEKT chaos")
            with pytest.raises(BindError):
                client.sql("SELECT * FROM no_such_table")
            assert client.ping(), "connection died after a query error"
            assert len(client.sql("SELECT * FROM t")) == 3

    def test_unknown_op_is_answered_in_band(self, harness):
        with harness.connect() as client:
            with pytest.raises(ProtocolError):
                client.request("transmogrify")
            assert client.ping()

    def test_missing_sql_field_is_answered_in_band(self, harness):
        with harness.connect() as client:
            with pytest.raises(ProtocolError):
                client.request("sql")  # no sql= field
            with pytest.raises(ProtocolError):
                client.request("sql", sql=42)
            assert client.ping()

    def test_unparseable_frame_gets_error_then_disconnect(self, harness):
        sock = harness.raw_socket()
        junk = b"this is not json"
        sock.sendall(struct.pack("<I", len(junk)) + junk)
        length = struct.unpack("<I", _read_exact(sock, HEADER.size))[0]
        response = _read_exact(sock, length)
        assert b"ProtocolError" in response
        assert sock.recv(1) == b"", "stream error should drop the conn"
        sock.close()
        # and the server keeps accepting fresh connections
        with harness.connect() as client:
            assert client.ping()

    def test_oversized_frame_header_is_refused(self, harness):
        sock = harness.raw_socket()
        sock.sendall(struct.pack("<I", MAX_FRAME_BYTES + 1))
        length = struct.unpack("<I", _read_exact(sock, HEADER.size))[0]
        assert b"ProtocolError" in _read_exact(sock, length)
        assert sock.recv(1) == b""
        sock.close()

    def test_mid_frame_disconnect_rolls_back(self, harness):
        """A client that dies halfway through sending a frame is a
        plain disconnect: no error response, session rolled back."""
        with harness.connect() as client:
            client.sql("BEGIN")
            client.sql("UPDATE t SET v = 555 WHERE id = 2")
            frame = encode_frame({"op": "sql", "sql": "SELECT 1 AS x"})
            client._sock.sendall(frame[:len(frame) - 3])
            client._sock.close()
            client.closed = True
        assert _wait_until(lambda: not harness.db.txn.any_open_txn())
        with harness.connect() as witness:
            rows = witness.sql("SELECT v FROM t WHERE id = 2").rows
            assert rows == [(20,)]


class TestConcurrentClients:
    def test_many_clients_disjoint_writes_all_commit(self, harness):
        harness.db.insert("t", [(100 + i, 0) for i in range(8)])
        errors = []

        def worker(index):
            try:
                with harness.connect() as client:
                    for _ in range(10):
                        client.sql("BEGIN")
                        client.sql("UPDATE t SET v = v + 1 "
                                   "WHERE id = %d" % (100 + index))
                        client.sql("COMMIT")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        with harness.connect() as client:
            rows = client.sql("SELECT id, v FROM t "
                              "WHERE id >= 100").rows
            assert sorted(rows) == [(100 + i, 10) for i in range(8)]
        assert _wait_until(lambda: harness.server.connections == 0)
        assert harness.server.total_connections >= 9


class TestAdminSurface:
    def test_sessions_lists_every_connection(self, harness):
        with harness.connect() as a, harness.connect() as b:
            a.sql("BEGIN")
            a.sql("INSERT INTO t VALUES (7, 70)")
            overview = {entry["session"]: entry for entry in b.sessions()}
            assert a.conn_id in overview and b.conn_id in overview
            mine = overview[a.conn_id]
            assert mine["in_transaction"] and not mine["aborted"]
            assert mine["statements"] >= 1
            # nobody is mid-statement while we look
            assert mine["running"] is None
            assert mine["running_seconds"] is None
            a.sql("ROLLBACK")

    def test_slowlog_empty_without_telemetry(self, harness):
        with harness.connect() as client:
            client.sql("SELECT id FROM t")
            assert client.slowlog() == []

    def test_slow_entry_carries_plan_and_trace(self, harness):
        harness.db.configure(telemetry=True, slow_query_seconds=1e-9,
                             trace=True)
        with harness.connect() as client:
            client.sql("SELECT id, v FROM t WHERE id = 2")
            entries = client.slowlog(limit=5)
            assert entries, "slow entry should have crossed the wire"
            entry = entries[0]
            assert entry["slow"]
            assert entry["session"] == client.conn_id
            assert "SELECT id, v FROM t" in entry["statement"]
            # the replay payload: full plan text plus the span trace
            assert "Scan" in entry["plan"]
            assert entry["trace"]["root"]

    def test_slowlog_respects_limit(self, harness):
        harness.db.configure(telemetry=True, slow_query_seconds=1e-9)
        with harness.connect() as client:
            for _ in range(4):
                client.sql("SELECT id FROM t")
            assert len(client.slowlog(limit=2)) == 2

    def test_drift_over_the_wire(self, harness):
        harness.db.configure(trace=True)
        with harness.connect() as client:
            client.sql("SELECT id FROM t WHERE v > 15")
            report = client.drift()
            assert not report["empty"]
            assert report["recorded"] >= 1
            assert report["groups"]
            tables = {t["table"] for t in report["tables"]}
            assert "t" in tables

    def test_metrics_include_latency_when_telemetry_on(self, harness):
        harness.db.configure(telemetry=True)
        with harness.connect() as client:
            client.sql("SELECT id FROM t")
            metrics = client.metrics()
            assert "latency" in metrics
            assert metrics["latency"]["select"]["count"] >= 1
