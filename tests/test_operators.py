"""Unit tests for individual executor operators."""

import pytest

from repro.bloom import BloomFilter
from repro.executor.operators import (
    AggregateOp,
    BlockNLJoinOp,
    DistinctOp,
    FilterOp,
    FilterSetScanOp,
    HashJoinOp,
    IndexScanOp,
    LimitOp,
    MaterializeOp,
    MergeJoinOp,
    ProjectOp,
    SeqScanOp,
    SortOp,
    ValuesOp,
)
from repro.executor.runtime import RuntimeContext, TempTable
from repro.expr.aggregates import AggregateSpec
from repro.expr.nodes import ColumnRef, Comparison, Literal, RuntimeMembership
from repro.storage.schema import DataType, Schema
from repro.storage.table import Table

AB = Schema.of(("a", DataType.INT), ("b", DataType.INT))
CD = Schema.of(("c", DataType.INT), ("d", DataType.INT))


def ctx():
    return RuntimeContext(memory_pages=8)


def values(context, rows, schema=AB):
    return ValuesOp(context, [tuple(r) for r in rows], schema)


class TestScans:
    def make_table(self, n=10):
        table = Table("T", AB)
        table.insert_many((i, i % 3) for i in range(n))
        return table

    def test_seq_scan_yields_all(self):
        context = ctx()
        op = SeqScanOp(context, self.make_table(), AB)
        assert len(op.to_list()) == 10
        assert context.ledger.page_reads >= 1

    def test_seq_scan_predicate(self):
        context = ctx()
        pred = Comparison("=", ColumnRef("b"), Literal(0)).resolve(AB)
        op = SeqScanOp(context, self.make_table(9), AB, pred)
        assert all(row[1] == 0 for row in op.rows())

    def test_seq_scan_restartable(self):
        context = ctx()
        op = SeqScanOp(context, self.make_table(), AB)
        assert op.to_list() == op.to_list()

    def test_index_scan_equality(self):
        table = self.make_table(30)
        table.create_index("b")
        op = IndexScanOp(ctx(), table, AB, "b", "=", 1)
        assert sorted(r[0] for r in op.rows()) == list(range(1, 30, 3))

    def test_index_scan_range(self):
        table = self.make_table(30)
        table.create_index("a", kind="sorted")
        op = IndexScanOp(ctx(), table, AB, "a", "<=", 4)
        assert sorted(r[0] for r in op.rows()) == [0, 1, 2, 3, 4]

    def test_filter_set_scan(self):
        context = ctx()
        temp = TempTable([(1,), (2,)], Schema.of(("k", DataType.INT)))
        context.bind_filter_set("p1", temp)
        op = FilterSetScanOp(context, "p1",
                             Schema.of(("k", DataType.INT)))
        assert op.to_list() == [(1,), (2,)]


class TestUnaryOps:
    def test_filter(self):
        context = ctx()
        pred = Comparison(">", ColumnRef("a"), Literal(2)).resolve(AB)
        op = FilterOp(context, values(context, [(1, 0), (3, 0), (5, 0)]),
                      pred)
        assert [r[0] for r in op.rows()] == [3, 5]

    def test_filter_runtime_membership(self):
        context = ctx()
        context.bind_membership("m", {1, 5})
        pred = RuntimeMembership("m", [ColumnRef("a")]).resolve(AB)
        op = FilterOp(context, values(context, [(1, 0), (2, 0), (5, 0)]),
                      pred)
        assert [r[0] for r in op.rows()] == [1, 5]

    def test_filter_bloom_membership(self):
        context = ctx()
        bloom = BloomFilter(1024, expected_items=2)
        bloom.add(7)
        context.bind_membership("m", bloom)
        pred = RuntimeMembership("m", [ColumnRef("a")]).resolve(AB)
        op = FilterOp(context, values(context, [(7, 0), (100, 0)]), pred)
        assert (7, 0) in op.to_list()

    def test_project(self):
        context = ctx()
        exprs = [ColumnRef("b").resolve(AB)]
        op = ProjectOp(context, values(context, [(1, 9)]), exprs,
                       Schema.of(("b", DataType.INT)))
        assert op.to_list() == [(9,)]

    def test_distinct(self):
        context = ctx()
        op = DistinctOp(context, values(context, [(1, 1), (1, 1), (2, 2)]))
        assert op.to_list() == [(1, 1), (2, 2)]

    def test_sort_asc_desc(self):
        context = ctx()
        rows = [(3, 1), (1, 2), (2, 2)]
        op = SortOp(context, values(context, rows), [(1, True), (0, False)])
        assert op.to_list() == [(3, 1), (2, 2), (1, 2)]

    def test_sort_nulls_first(self):
        context = ctx()
        op = SortOp(context, values(context, [(2, 0), (None, 0), (1, 0)]),
                    [(0, True)])
        assert [r[0] for r in op.rows()] == [None, 1, 2]

    def test_limit(self):
        context = ctx()
        op = LimitOp(context, values(context, [(i, 0) for i in range(10)]),
                     3)
        assert len(op.to_list()) == 3

    def test_materialize_charges_spill(self):
        context = RuntimeContext(memory_pages=1)
        rows = [(i, i) for i in range(5000)]
        op = MaterializeOp(context, values(context, rows))
        assert len(op.to_list()) == 5000
        assert context.ledger.page_writes > 0


class TestAggregateOp:
    def test_group_by(self):
        context = ctx()
        spec = AggregateSpec("sum", ColumnRef("a"), "total")
        arg = ColumnRef("a").resolve(AB)
        op = AggregateOp(
            context, values(context, [(1, 0), (2, 0), (5, 1)]),
            [1], [(spec, arg)],
            Schema.of(("b", DataType.INT), ("total", DataType.INT)),
        )
        assert sorted(op.rows()) == [(0, 3), (1, 5)]

    def test_scalar_aggregate_empty_input(self):
        context = ctx()
        spec = AggregateSpec("count", None, "n")
        op = AggregateOp(context, values(context, []), [], [(spec, None)],
                         Schema.of(("n", DataType.INT)))
        assert op.to_list() == [(0,)]

    def test_grouped_empty_input_no_rows(self):
        context = ctx()
        spec = AggregateSpec("count", None, "n")
        op = AggregateOp(context, values(context, []), [0], [(spec, None)],
                         Schema.of(("b", DataType.INT),
                                   ("n", DataType.INT)))
        assert op.to_list() == []

    def test_avg_skips_nulls(self):
        context = ctx()
        schema = Schema.of(("a", DataType.INT), ("b", DataType.INT))
        spec = AggregateSpec("avg", ColumnRef("a"), "m")
        arg = ColumnRef("a").resolve(schema)
        op = AggregateOp(
            context, values(context, [(2, 0), (None, 0), (4, 0)]),
            [1], [(spec, arg)],
            Schema.of(("b", DataType.INT), ("m", DataType.FLOAT)),
        )
        assert op.to_list() == [(0, 3.0)]


def join_schema():
    return AB.concat(CD)


class TestJoins:
    def test_hash_join_basic(self):
        context = ctx()
        outer = values(context, [(1, 10), (2, 20), (3, 30)])
        inner = values(context, [(1, 100), (3, 300), (9, 900)], CD)
        op = HashJoinOp(context, outer, inner, [0], [0], None,
                        join_schema())
        assert sorted(op.rows()) == [(1, 10, 1, 100), (3, 30, 3, 300)]

    def test_hash_join_null_keys_never_match(self):
        context = ctx()
        outer = values(context, [(None, 1)])
        inner = values(context, [(None, 2)], CD)
        op = HashJoinOp(context, outer, inner, [0], [0], None,
                        join_schema())
        assert op.to_list() == []

    def test_hash_join_residual(self):
        context = ctx()
        combined = join_schema()
        residual = Comparison(">", ColumnRef("d"),
                              ColumnRef("b")).resolve(combined)
        outer = values(context, [(1, 10), (1, 1000)])
        inner = values(context, [(1, 100)], CD)
        op = HashJoinOp(context, outer, inner, [0], [0], residual,
                        combined)
        assert op.to_list() == [(1, 10, 1, 100)]

    def test_hash_join_duplicates(self):
        context = ctx()
        outer = values(context, [(1, 1), (1, 2)])
        inner = values(context, [(1, 7), (1, 8)], CD)
        op = HashJoinOp(context, outer, inner, [0], [0], None,
                        join_schema())
        assert len(op.to_list()) == 4

    def test_semi_join_emits_inner_once(self):
        context = ctx()
        outer = values(context, [(1, 1), (1, 2)])
        inner = values(context, [(1, 7), (2, 8)], CD)
        op = HashJoinOp(context, outer, inner, [0], [0], None, CD,
                        semi=True)
        assert op.to_list() == [(1, 7)]

    def test_merge_join(self):
        context = ctx()
        outer = values(context, [(1, 10), (2, 20), (2, 21), (4, 40)])
        inner = values(context, [(2, 200), (2, 201), (3, 300)], CD)
        op = MergeJoinOp(context, outer, inner, [0], [0], None,
                         join_schema())
        assert len(op.to_list()) == 4  # 2x2 on key 2

    def test_merge_join_equals_hash_join(self):
        rows_left = [(i % 7, i) for i in range(40)]
        rows_right = [(i % 5, i * 10) for i in range(30)]
        c1, c2 = ctx(), ctx()
        hash_result = sorted(HashJoinOp(
            c1, values(c1, rows_left), values(c1, rows_right, CD),
            [0], [0], None, join_schema(),
        ).rows())
        merge_result = sorted(MergeJoinOp(
            c2, values(c2, sorted(rows_left)),
            values(c2, sorted(rows_right), CD),
            [0], [0], None, join_schema(),
        ).rows())
        assert hash_result == merge_result

    def test_block_nlj_equals_hash_join(self):
        rows_left = [(i % 4, i) for i in range(25)]
        rows_right = [(i % 6, i) for i in range(18)]
        c1, c2 = ctx(), ctx()
        nlj = sorted(BlockNLJoinOp(
            c1, values(c1, rows_left), values(c1, rows_right, CD),
            [0], [0], None, join_schema(),
        ).rows())
        hj = sorted(HashJoinOp(
            c2, values(c2, rows_left), values(c2, rows_right, CD),
            [0], [0], None, join_schema(),
        ).rows())
        assert nlj == hj

    def test_block_nlj_cross_product(self):
        context = ctx()
        op = BlockNLJoinOp(
            context, values(context, [(1, 1), (2, 2)]),
            values(context, [(9, 9)], CD), [], [], None, join_schema(),
        )
        assert len(op.to_list()) == 2

    def test_hash_join_spill_charged(self):
        context = RuntimeContext(memory_pages=1)
        rows = [(i, i) for i in range(3000)]
        op = HashJoinOp(
            context, values(context, rows), values(context, rows, CD),
            [0], [0], None, join_schema(),
        )
        assert len(op.to_list()) == 3000
        assert context.ledger.page_writes > 0
