"""Smoke tests: every example script runs and prints its story."""

import contextlib
import io
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return out.getvalue()


def test_quickstart():
    output = run_example("quickstart.py")
    assert "Cost-based plan" in output
    assert "cost-based" in output
    assert "First five answers" in output


def test_decision_support():
    output = run_example("decision_support.py")
    assert "Measured cost by rewrite policy" in output
    assert "Example plan" in output


def test_distributed_semijoin():
    output = run_example("distributed_semijoin.py")
    assert "Two-site join" in output
    assert "winner" in output


def test_udf_relations():
    output = run_example("udf_relations.py")
    assert "geocode" in output
    assert "75 calls" in output


def test_heterogeneous_view():
    output = run_example("heterogeneous_view.py")
    assert "remote" in output or "branch" in output
    assert "cost-based optimizer" in output


def test_optimizer_tracing():
    output = run_example("optimizer_tracing.py")
    assert "EXPLAIN SEARCH" in output
    assert "why-not filter_join: it WAS chosen." in output
    assert "enable_filter_join=False" in output
    assert "repro-search-trace/v1" in output
    assert '"event": "optimize"' in output
    assert "candidates by method" in output


def test_tracing():
    output = run_example("tracing.py")
    assert "every operator becomes a span" in output
    assert "reconcile with the measured ledger exactly" in output
    assert "estimate drift over the last" in output
    assert "Chrome-trace export" in output
    assert "wrote" in output and "events" in output


def test_transactions():
    output = run_example("transactions.py")
    assert "rows after failed insert: 2 (unchanged)" in output
    assert "Audit exists: False" in output
    assert "owners after partial rollback: ada, bob, cyd" in output
    assert "refused while aborted" in output
    assert "recovered 3 committed txns" in output


def test_server_client():
    output = run_example("server_client.py")
    assert "each its own session" in output
    assert "snapshot pinned until her COMMIT" in output
    assert "SerializationError" in output
    assert "balance 70" in output
    assert "the connection survives: ping=True" in output
    assert "0 connections left open" in output
