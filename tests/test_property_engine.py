"""Property-based tests on whole-engine invariants (hypothesis).

These generate random *data* (rather than random queries, which
tests/test_differential.py covers with a seeded generator) and check
invariants that must hold for any input:

- all join algorithms produce the same multiset of rows;
- the Filter Join equals the hash join for any data;
- SQL filters agree with Python evaluation of the same predicate;
- measured cost is strictly positive and monotone under data growth.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DataType, OptimizerConfig
from repro.executor.operators import (
    BlockNLJoinOp,
    HashJoinOp,
    MergeJoinOp,
    ValuesOp,
)
from repro.executor.runtime import RuntimeContext
from repro.storage.schema import Schema

KV = Schema.of(("k", DataType.INT), ("v", DataType.INT))
KW = Schema.of(("k2", DataType.INT), ("w", DataType.INT))

rows_strategy = st.lists(
    st.tuples(st.one_of(st.integers(0, 6), st.none()),
              st.integers(-50, 50)),
    max_size=40,
)


class TestJoinAlgorithmEquivalence:
    @given(rows_strategy, rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_hash_merge_nlj_agree(self, left, right):
        results = []
        for make in (self._hash, self._merge, self._nlj):
            ctx = RuntimeContext(memory_pages=8)
            results.append(Counter(make(ctx, left, right).rows()))
        assert results[0] == results[1] == results[2]

    def _hash(self, ctx, left, right):
        return HashJoinOp(ctx, ValuesOp(ctx, left, KV),
                          ValuesOp(ctx, right, KW), [0], [0], None,
                          KV.concat(KW))

    def _merge(self, ctx, left, right):
        return MergeJoinOp(
            ctx,
            ValuesOp(ctx, sorted(left, key=self._key), KV),
            ValuesOp(ctx, sorted(right, key=self._key), KW),
            [0], [0], None, KV.concat(KW),
        )

    def _nlj(self, ctx, left, right):
        return BlockNLJoinOp(ctx, ValuesOp(ctx, left, KV),
                             ValuesOp(ctx, right, KW), [0], [0], None,
                             KV.concat(KW))

    @staticmethod
    def _key(row):
        return (row[0] is not None, row[0])


def build_db(t_rows, u_rows):
    db = Database()
    db.create_table("T", [("k", DataType.INT), ("v", DataType.INT)])
    db.create_table("U", [("k", DataType.INT), ("w", DataType.INT)])
    if t_rows:
        db.insert("T", t_rows)
    if u_rows:
        db.insert("U", u_rows)
    db.analyze()
    return db


class TestEndToEndInvariants:
    @given(rows_strategy, rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_filter_join_equals_hash_join(self, t_rows, u_rows):
        db = build_db(t_rows, u_rows)
        query = "SELECT T.v, U.w FROM T, U WHERE T.k = U.k"
        hash_cfg = OptimizerConfig(
            enable_filter_join=False, enable_bloom_filter=False,
            enable_merge_join=False, enable_nested_loops=False,
            enable_index_nested_loops=False,
        )
        semi_cfg = OptimizerConfig(forced_stored_join="filter_join")
        a = Counter(db.sql(query, config=hash_cfg).rows)
        b = Counter(db.sql(query, config=semi_cfg).rows)
        assert a == b

    @given(rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_sql_filter_matches_python(self, t_rows):
        db = build_db(t_rows, [])
        result = db.sql("SELECT v FROM T WHERE k >= 3 AND v < 10")
        expected = Counter(
            (v,) for (k, v) in t_rows
            if k is not None and k >= 3 and v < 10
        )
        assert Counter(result.rows) == expected

    @given(rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_group_by_partitions_rows(self, t_rows):
        db = build_db(t_rows, [])
        result = db.sql("SELECT k, COUNT(*) AS n FROM T GROUP BY k")
        # group sizes sum to the input cardinality
        assert sum(r[1] for r in result.rows) == len(t_rows)
        # one output row per distinct key (NULL is its own group)
        assert len(result.rows) == len({k for (k, _v) in t_rows})

    @given(rows_strategy)
    @settings(max_examples=20, deadline=None)
    def test_distinct_idempotent(self, t_rows):
        db = build_db(t_rows, [])
        once = db.sql("SELECT DISTINCT k, v FROM T").rows
        assert len(once) == len(set(once))
        assert set(once) == set(t_rows)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=1, max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_measured_cost_positive(self, t_rows):
        db = build_db(t_rows, [])
        result = db.sql("SELECT v FROM T")
        assert result.measured_cost() > 0
