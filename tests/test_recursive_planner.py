"""The magic-vs-fixpoint costed pair inside the System-R DP.

The planner emits two access-path candidates for a recursive relation —
the full fixpoint and (when an outer binding can be pushed onto a
magic-safe column) the magic-restricted fixpoint — into the same memo
bucket, so the choice falls out of ordinary cost comparison and
``db.why_not`` can name the losing rival with an exact cost delta.
"""

import pytest

from repro import Options, OptimizerConfig
from repro.rewrite.magic import magic_safe_positions, recursive_magic_bindings
from repro.workloads import GraphConfig, fresh_graph, tc_query


def _chain_db(n=12):
    return fresh_graph(GraphConfig("chain", num_nodes=n))


def _dense_db():
    # near-complete digraph: the closure barely exceeds the base, so the
    # magic candidate's extra iterations outweigh its savings
    return fresh_graph(GraphConfig("random", num_nodes=110,
                                   edge_prob=0.8, seed=5))


class TestCostedPair:
    def test_bounded_reachability_chooses_magic(self):
        db = _chain_db()
        result = db.sql(tc_query("WHERE x = 1"))
        assert "MagicFixpoint" in result.plan.explain()
        rep = db.why_not(tc_query("WHERE x = 1"), "magic")
        assert rep.status == "chosen"

    def test_loser_reported_with_exact_cost_delta(self):
        db = _chain_db()
        rep = db.why_not(tc_query("WHERE x = 1"), "fixpoint")
        assert rep.status == "rejected"
        assert rep.delta > 0.0
        text = rep.render()
        assert "magic" in text and "cost" in text

    def test_dense_graph_rejects_magic_on_cost(self):
        db = _dense_db()
        result = db.sql(tc_query("WHERE x = 1"))
        assert "MagicFixpoint" not in result.plan.explain()
        assert "Fixpoint" in result.plan.explain()
        rep = db.why_not(tc_query("WHERE x = 1"), "magic")
        assert rep.status == "rejected"
        assert rep.delta > 0.0

    def test_unbound_query_generates_no_magic_candidate(self):
        db = _chain_db()
        rep = db.why_not(tc_query(), "magic")
        assert rep.status in ("disabled", "not-generated")
        assert "no pushable" in rep.render()

    def test_rejected_plan_still_correct(self):
        # force the DP's loser and check it computes the same answer
        db = _chain_db()
        sql = tc_query("WHERE x = 2")
        won = db.sql(sql)
        lost = db.sql(sql, config=OptimizerConfig(forced_recursive="full"))
        assert won.rows == lost.rows
        assert "MagicFixpoint" in won.plan.explain()
        assert "MagicFixpoint" not in lost.plan.explain()


class TestForcedRecursive:
    def test_forced_magic(self):
        db = _dense_db()
        result = db.sql(tc_query("WHERE x = 1"),
                        config=OptimizerConfig(forced_recursive="magic"))
        assert "MagicFixpoint" in result.plan.explain()

    def test_forced_full_reports_exclusion(self):
        db = _chain_db()
        rep = db.why_not(tc_query("WHERE x = 1"), "magic",
                         config=OptimizerConfig(forced_recursive="full"))
        assert rep.status in ("disabled", "not-generated")
        assert "forced_recursive" in rep.render()

    def test_forced_magic_falls_back_without_binding(self):
        db = _chain_db(6)
        result = db.sql(tc_query(),
                        config=OptimizerConfig(forced_recursive="magic"))
        assert "Fixpoint" in result.plan.explain()
        assert "MagicFixpoint" not in result.plan.explain()
        assert len(result.rows) == 15

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            OptimizerConfig(forced_recursive="always").validate()


class TestMagicSafety:
    def _relation(self, db, sql):
        block = db.bind(sql)
        return block, [r for r in block.relations
                       if r.kind == "recursive"][0]

    def test_pass_through_position_is_safe(self):
        db = _chain_db(4)
        _block, rel = self._relation(db, tc_query("WHERE x = 1"))
        # x is the delta pass-through (t.x); y is computed (e.dst)
        assert magic_safe_positions(rel) == {0}

    def test_binding_on_unsafe_column_not_pushed(self):
        db = _chain_db(6)
        sql = tc_query("WHERE y = 4")
        block, rel = self._relation(db, sql)
        pushable, remaining = recursive_magic_bindings(rel, block.predicates)
        assert pushable == []
        rep = db.why_not(sql, "magic")
        assert rep.status in ("disabled", "not-generated")
        assert "no pushable" in rep.render()
        # correctness unaffected: filter applies above the fixpoint
        assert db.sql(sql).rows == [(i, 4) for i in range(1, 4)]

    def test_mixed_bindings_split(self):
        db = _chain_db(8)
        sql = tc_query("WHERE x = 2 AND y > 4")
        block, rel = self._relation(db, sql)
        pushable, remaining = recursive_magic_bindings(rel, block.predicates)
        assert len(pushable) == 1 and pushable[0].position == 0
        assert len(remaining) == 1
        assert db.sql(sql).rows == [(2, j) for j in range(5, 9)]

    def test_in_list_binding_is_pushable(self):
        db = _chain_db(8)
        sql = tc_query("WHERE x IN (2, 3)")
        block, rel = self._relation(db, sql)
        pushable, _remaining = recursive_magic_bindings(rel, block.predicates)
        assert len(pushable) == 1
        rows = db.sql(sql).rows
        assert rows == sorted([(2, j) for j in range(3, 9)] +
                              [(3, j) for j in range(4, 9)])


class TestRecursiveInJoins:
    def test_closure_joined_with_base_table(self):
        db = _chain_db(5)
        sql = (
            "WITH RECURSIVE tc(x, y) AS ("
            " SELECT src, dst FROM Edge"
            " UNION"
            " SELECT t.x, e.dst FROM tc t, Edge e WHERE t.y = e.src)"
            " SELECT T.x, E.dst FROM tc T, Edge E"
            " WHERE T.y = E.src AND T.x = 1 ORDER BY E.dst"
        )
        it = db.sql(sql, options=Options(engine="iterator"))
        ve = db.sql(sql, options=Options(engine="vector"))
        assert it.rows == ve.rows == [(1, j) for j in range(3, 6)]
        assert it.ledger.as_dict() == ve.ledger.as_dict()

    def test_plan_cache_replans_consistently(self):
        db = _chain_db(6)
        sql = tc_query("WHERE x = 1")
        cold = db.sql(sql, options=Options(use_cache=True))
        warm = db.sql(sql, options=Options(use_cache=True))
        assert cold.rows == warm.rows
        assert cold.plan.explain() == warm.plan.explain()
