"""Thread-safety regressions for the shared per-database structures.

The server gives every connection its own MVCC session but they all
share one :class:`~repro.plancache.PlanCache`, one
:class:`~repro.obs.metrics.MetricsRegistry` (chained to the process
global), and one :class:`~repro.obs.log.EventLog`. These tests hammer
each from real threads and assert *exact* outcomes — lost updates under
a data race are probabilistic, so every test loops enough iterations
that a missing lock fails reliably, not occasionally.
"""

import threading

from repro import Database, DataType, SerializationError
from repro.obs.log import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.plancache import PlanCacheEntry, cache_key

N_THREADS = 8
N_ITER = 400


def hammer(worker, n_threads=N_THREADS):
    """Run ``worker(thread_index)`` on N threads; re-raise any error."""
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestMetricsRegistry:
    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry("test")
        hammer(lambda i: [registry.inc("hits_total")
                          for _ in range(N_ITER)])
        assert registry.counter("hits_total").total == \
            N_THREADS * N_ITER

    def test_concurrent_labelled_increments_are_exact(self):
        registry = MetricsRegistry("test")

        def worker(index):
            for _ in range(N_ITER):
                registry.inc("ops_total", label="t%d" % (index % 2))

        hammer(worker)
        counter = registry.counter("ops_total")
        assert counter.total == N_THREADS * N_ITER
        assert counter.values["t0"] == counter.values["t1"]

    def test_concurrent_histogram_observations_are_exact(self):
        registry = MetricsRegistry("test")
        hammer(lambda i: [registry.observe("ratio", 1.0 + i)
                          for _ in range(N_ITER)])
        assert registry.histogram("ratio").count == N_THREADS * N_ITER

    def test_parent_chain_aggregates_exactly(self):
        parent = MetricsRegistry("process")
        children = [MetricsRegistry("db%d" % i, parent=parent)
                    for i in range(N_THREADS)]
        hammer(lambda i: [children[i].inc("queries_total")
                          for _ in range(N_ITER)])
        assert parent.counter("queries_total").total == \
            N_THREADS * N_ITER
        for child in children:
            assert child.counter("queries_total").total == N_ITER


class TestEventLog:
    def test_concurrent_emit_loses_nothing(self):
        log = EventLog(capacity=N_THREADS * N_ITER + 10).enable()
        hammer(lambda i: [log.emit("tick", thread=i)
                          for _ in range(N_ITER)])
        assert len(log) == N_THREADS * N_ITER

    def test_concurrent_query_ids_are_unique(self):
        log = EventLog().enable()
        seen = [None] * N_THREADS

        def worker(index):
            seen[index] = [log.new_query_id() for _ in range(N_ITER)]

        hammer(worker)
        ids = [qid for chunk in seen for qid in chunk]
        assert len(set(ids)) == len(ids)


class TestPlanCache:
    def test_concurrent_store_lookup_never_corrupts(self):
        """Threads interleave store/lookup/invalidate on one cache; the
        invariants are structural (no exceptions, size <= capacity),
        plus hit/miss accounting that sums to the number of lookups."""
        db = Database()
        cache = db.plan_cache
        config = db.config
        keys = [cache_key("SELECT %d" % i, config) for i in range(32)]

        def worker(index):
            for step in range(N_ITER):
                key = keys[(index + step) % len(keys)]
                entry = cache.lookup(key, catalog_version=0)
                if entry is None:
                    cache.store(PlanCacheEntry(
                        key=key, plan=None, metrics=None,
                        catalog_version=0))
                if step % 97 == 0:
                    cache.invalidate_all()
                assert len(cache) <= cache.capacity

        hammer(worker)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == N_THREADS * N_ITER

    def test_ddl_invalidation_while_queries_run(self):
        """One thread churns DDL (create/drop view bumps the catalog
        version and invalidates cached plans); reader threads keep
        executing the same cached query. Nothing throws, every read
        sees a correct answer, and the cache never serves a stale plan
        (wrong results would surface as a bad count)."""
        db = Database()
        db.create_table("t", [("id", DataType.INT),
                              ("v", DataType.INT)])
        db.insert("t", [(i, i * 10) for i in range(100)])
        stop = threading.Event()

        def ddl_churn(_index):
            for round_no in range(60):
                db.create_view("big_t", "SELECT id FROM t WHERE v > 50")
                db.drop_view("big_t")
            stop.set()

        def reader(_index):
            while not stop.is_set():
                result = db.sql("SELECT COUNT(*) AS c FROM t "
                                "WHERE v >= 0")
                assert result.rows[0][0] == 100

        errors = []

        def run(fn, index):
            try:
                fn(index)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
                stop.set()

        threads = [threading.Thread(target=run, args=(reader, i))
                   for i in range(4)]
        threads.append(threading.Thread(target=run, args=(ddl_churn, 4)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]


class TestConcurrentSessions:
    def test_disjoint_writers_from_threads_all_commit(self):
        """Each thread owns one row and bumps it in an explicit txn,
        many times. Disjoint write sets -> zero conflicts, and the
        final table is exactly the sum of everyone's work."""
        db = Database()
        db.create_table("t", [("id", DataType.INT),
                              ("v", DataType.INT)])
        db.insert("t", [(i, 0) for i in range(N_THREADS)])
        rounds = 50

        def worker(index):
            with db.new_session("thread-%d" % index) as session:
                for _ in range(rounds):
                    session.sql("BEGIN")
                    session.sql("UPDATE t SET v = v + 1 "
                                "WHERE id = %d" % index)
                    session.sql("COMMIT")

        hammer(worker)
        rows = sorted(db.sql("SELECT id, v FROM t").rows)
        assert rows == [(i, rounds) for i in range(N_THREADS)]

    def test_contended_writers_one_winner_per_round(self):
        """All threads fight over one row. Every attempt either commits
        or raises SerializationError; the final value equals the number
        of commits — a lost update would break the equality."""
        db = Database()
        db.create_table("t", [("id", DataType.INT),
                              ("v", DataType.INT)])
        db.insert("t", [(1, 0)])
        commits = [0] * N_THREADS

        def worker(index):
            with db.new_session() as session:
                for _ in range(60):
                    session.sql("BEGIN")
                    try:
                        session.sql("UPDATE t SET v = v + 1 "
                                    "WHERE id = 1")
                        session.sql("COMMIT")
                        commits[index] += 1
                    except SerializationError:
                        session.sql("ROLLBACK")

        hammer(worker)
        final = db.sql("SELECT v FROM t").rows[0][0]
        assert final == sum(commits)
        assert final > 0
