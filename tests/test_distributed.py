"""Tests for the distributed substrate (Section 5.1)."""

import random

import pytest

from repro import DataType, OptimizerConfig
from repro.distributed import DistributedDatabase, distributed_config
from repro.ledger import CostParams


def two_site_db(msg_cost=1.0, byte_cost=0.001, orders=2000, custs=400,
                seed=1):
    rng = random.Random(seed)
    db = DistributedDatabase(distributed_config(msg_cost, byte_cost))
    db.create_table("Orders", [("oid", DataType.INT),
                               ("cid", DataType.INT),
                               ("total", DataType.INT)])
    db.create_table("Cust", [("cid", DataType.INT),
                             ("name", DataType.STR),
                             ("region", DataType.STR)], site="siteB")
    db.insert("Orders", [
        (i, rng.randint(1, custs), rng.randint(1, 1000))
        for i in range(1, orders + 1)
    ])
    db.insert("Cust", [
        (c, "n%d" % c, rng.choice(["east", "west"]))
        for c in range(1, custs + 1)
    ])
    db.analyze()
    return db


def reference(db, cutoff=900):
    orders = db.catalog.table("Orders").rows
    cust = {c: n for (c, n, _r) in db.catalog.table("Cust").rows}
    return sorted(
        (oid, cust[cid]) for (oid, cid, total) in orders
        if total > cutoff and cid in cust
    )


QUERY = ("SELECT O.oid, C.name FROM Orders O, Cust C "
         "WHERE O.cid = C.cid AND O.total > 900")


class TestPlacement:
    def test_site_tracked(self):
        db = two_site_db()
        assert db.site_of("Cust") == "siteB"
        assert db.site_of("Orders") is None
        assert db.sites == ["siteB"]

    def test_place_table_moves(self):
        db = two_site_db()
        db.place_table("Cust", None)
        assert db.site_of("Cust") is None


class TestRemoteQueries:
    def test_remote_scan_ships_result(self):
        db = two_site_db()
        result = db.sql("SELECT cid FROM Cust")
        assert len(result) == 400
        assert result.ledger.net_msgs >= 1
        assert result.ledger.net_bytes > 0

    def test_local_query_no_network(self):
        db = two_site_db()
        result = db.sql("SELECT oid FROM Orders WHERE total > 990")
        assert result.ledger.net_msgs == 0

    def test_cross_site_join_correct(self):
        db = two_site_db()
        result = db.sql(QUERY)
        assert sorted(result.rows) == reference(db)

    def test_cross_site_join_charges_network(self):
        db = two_site_db()
        result = db.sql(QUERY)
        assert result.ledger.net_bytes > 0

    @pytest.mark.parametrize("kwargs", [
        {},
        {"enable_filter_join": False, "enable_bloom_filter": False},
        {"enable_bloom_filter": False},
        {"enable_hash_join": False, "enable_merge_join": False},
    ])
    def test_strategies_agree(self, kwargs):
        db = two_site_db()
        base = distributed_config(2.0, 0.002)
        config = base.replace(**kwargs)
        result = db.sql(QUERY, config=config)
        assert sorted(result.rows) == reference(db)

    def test_expensive_network_prefers_less_shipping(self):
        """When bytes are pricey, the chosen plan should ship less than
        the cheapest plan under free networking would."""
        db = two_site_db()
        cheap_cfg = distributed_config(0.0, 0.0)
        dear_cfg = distributed_config(10.0, 0.05)
        cheap = db.sql(QUERY, config=cheap_cfg)
        dear = db.sql(QUERY, config=dear_cfg)
        assert sorted(cheap.rows) == sorted(dear.rows)
        assert dear.ledger.net_bytes <= cheap.ledger.net_bytes + 1e-9


class TestRemoteSemiJoin:
    def test_semi_join_restricts_before_shipping(self):
        """Force the filter join; the bytes shipped must be below the
        fetch-inner (ship whole Cust) volume."""
        db = two_site_db()
        fetch_inner_cfg = distributed_config(
            1.0, 0.001,
            enable_filter_join=False, enable_bloom_filter=False,
        )
        # make the optimizer prefer restricting the remote side
        semi_cfg = distributed_config(20.0, 0.2)
        fetch = db.sql(QUERY, config=fetch_inner_cfg)
        semi = db.sql(QUERY, config=semi_cfg)
        assert sorted(fetch.rows) == sorted(semi.rows)

    def test_remote_view_join(self):
        """A view over a remote table is itself remote; joining it stays
        correct whatever strategy is picked."""
        db = two_site_db()
        db.create_view(
            "CustOrders",
            "SELECT C.cid, COUNT(*) AS n FROM Cust C GROUP BY C.cid",
        )
        q = ("SELECT O.oid, V.n FROM Orders O, CustOrders V "
             "WHERE O.cid = V.cid AND O.total > 950")
        result = db.sql(q)
        orders = db.catalog.table("Orders").rows
        counts = {}
        for (c, _n, _r) in db.catalog.table("Cust").rows:
            counts[c] = counts.get(c, 0) + 1
        expected = sorted(
            (oid, counts[cid]) for (oid, cid, total) in orders
            if total > 950 and cid in counts
        )
        assert sorted(result.rows) == expected
