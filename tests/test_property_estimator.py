"""Property-based tests on the statistics estimator's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DataType
from repro.expr.nodes import (
    BooleanExpr,
    ColumnRef,
    Comparison,
    InList,
    Literal,
)
from repro.optimizer.properties import StatsEstimator

rows_strategy = st.lists(
    st.tuples(st.integers(0, 15), st.integers(-100, 100)),
    min_size=1, max_size=120,
)


def make_db(rows):
    db = Database()
    db.create_table("T", [("k", DataType.INT), ("v", DataType.INT)])
    db.create_table("U", [("k", DataType.INT), ("w", DataType.INT)])
    db.insert("T", rows)
    db.insert("U", [(k, v) for (k, v) in rows][: max(1, len(rows) // 2)])
    db.analyze()
    return db


predicates = st.one_of(
    st.builds(lambda v: Comparison("=", ColumnRef("T.k"), Literal(v)),
              st.integers(-5, 20)),
    st.builds(lambda v: Comparison("<", ColumnRef("T.v"), Literal(v)),
              st.integers(-120, 120)),
    st.builds(lambda v: Comparison(">=", ColumnRef("T.k"), Literal(v)),
              st.integers(-5, 20)),
    st.builds(lambda a, b: InList(ColumnRef("T.k"), (a, b)),
              st.integers(0, 15), st.integers(0, 15)),
    st.builds(
        lambda v: BooleanExpr("NOT", [
            Comparison("=", ColumnRef("T.k"), Literal(v))]),
        st.integers(0, 15),
    ),
)


class TestSelectivityBounds:
    @given(rows_strategy, predicates)
    @settings(max_examples=60, deadline=None)
    def test_selectivity_in_unit_interval(self, rows, predicate):
        db = make_db(rows)
        estimator = StatsEstimator(db.catalog)
        block = db.bind("SELECT T.k FROM T")
        props = estimator.relation_props(block.relations[0])
        sel = estimator.selectivity(predicate, props)
        assert 0.0 <= sel <= 1.0

    @given(rows_strategy, predicates, predicates)
    @settings(max_examples=40, deadline=None)
    def test_conjunction_never_increases_selectivity(self, rows, p1, p2):
        db = make_db(rows)
        estimator = StatsEstimator(db.catalog)
        block = db.bind("SELECT T.k FROM T")
        props = estimator.relation_props(block.relations[0])
        s1 = estimator.selectivity(p1, props)
        both = estimator.selectivity(BooleanExpr("AND", [p1, p2]), props)
        assert both <= s1 + 1e-9


class TestCardinalityBounds:
    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_join_rows_bounded_by_cross_product(self, rows):
        db = make_db(rows)
        estimator = StatsEstimator(db.catalog)
        block = db.bind("SELECT T.v FROM T, U WHERE T.k = U.k")
        props = estimator.join_all_props(block)
        t_rows = db.catalog.stats("T").num_rows
        u_rows = db.catalog.stats("U").num_rows
        assert 0.0 <= props.rows <= t_rows * u_rows + 1e-9

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_distinct_never_exceeds_rows(self, rows):
        db = make_db(rows)
        estimator = StatsEstimator(db.catalog)
        block = db.bind("SELECT T.v FROM T, U WHERE T.k = U.k")
        props = estimator.join_all_props(block)
        for name in props.schema.names():
            assert props.column(name).distinct <= max(props.rows, 1.0) + 1e-9

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_filter_set_distinct_bounded(self, rows):
        db = make_db(rows)
        estimator = StatsEstimator(db.catalog)
        block = db.bind("SELECT T.k FROM T")
        props = estimator.relation_props(block.relations[0])
        distinct = estimator.filter_set_distinct(props, ["T.k"])
        assert 0.0 <= distinct <= props.rows + 1e-9

    @given(rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_grouped_output_bounded(self, rows):
        db = make_db(rows)
        estimator = StatsEstimator(db.catalog)
        block = db.bind("SELECT k, COUNT(*) AS n FROM T GROUP BY k")
        props = estimator.block_output_props(block)
        assert 0.0 <= props.rows <= db.catalog.stats("T").num_rows + 1e-9


class TestEstimatesNeverCrash:
    @given(rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_plan_cost_finite_and_positive(self, rows):
        import math
        db = make_db(rows)
        plan, _ = db.plan(
            "SELECT T.v, U.w FROM T, U WHERE T.k = U.k AND T.v > 0"
        )
        assert math.isfinite(plan.est_cost)
        assert plan.est_cost > 0
        assert plan.est_rows >= 0
