"""Unit tests for algebra.block and algebra.predicates."""

import pytest

from repro import Database, DataType
from repro.algebra.predicates import (
    alias_of,
    aliases_in,
    applicable_predicates,
    connected_aliases,
    equijoin_pairs,
    join_predicates_between,
    local_predicates,
)
from repro.errors import BindError
from repro.expr.nodes import ColumnRef, Comparison, Literal


@pytest.fixture()
def db():
    database = Database()
    database.create_table("A", [("x", DataType.INT), ("y", DataType.INT)])
    database.create_table("B", [("x", DataType.INT), ("z", DataType.INT)])
    database.create_table("C", [("z", DataType.INT), ("w", DataType.INT)])
    return database


def pred(text_left, op, text_right):
    right = (Literal(text_right) if isinstance(text_right, int)
             else ColumnRef(text_right))
    return Comparison(op, ColumnRef(text_left), right)


class TestPredicateClassification:
    def test_alias_of(self):
        assert alias_of("E.did") == "E"
        assert alias_of("plain") == "plain"

    def test_aliases_in(self):
        p = pred("A.x", "=", "B.x")
        assert aliases_in(p) == frozenset({"A", "B"})

    def test_local_predicates(self):
        preds = [pred("A.x", ">", 1), pred("A.x", "=", "B.x")]
        assert local_predicates(preds, "A") == [preds[0]]
        assert local_predicates(preds, "B") == []

    def test_applicable_predicates(self):
        preds = [pred("A.x", ">", 1), pred("A.x", "=", "B.x"),
                 pred("B.z", "=", "C.z")]
        assert applicable_predicates(preds, {"A"}) == [preds[0]]
        assert applicable_predicates(preds, {"A", "B"}) == preds[:2]
        assert applicable_predicates(preds, {"A", "B", "C"}) == preds

    def test_join_predicates_between(self):
        preds = [pred("A.x", "=", "B.x"), pred("A.y", ">", 1),
                 pred("B.z", "=", "C.z")]
        between = join_predicates_between(preds, {"A"}, {"B"})
        assert between == [preds[0]]

    def test_equijoin_pairs_orients_left(self):
        preds = [Comparison("=", ColumnRef("B.x"), ColumnRef("A.x"))]
        pairs = equijoin_pairs(preds, {"A"}, {"B"})
        assert [(l.name, r.name) for l, r in pairs] == [("A.x", "B.x")]

    def test_equijoin_ignores_non_equi(self):
        preds = [pred("A.x", "<", "B.x")]
        assert equijoin_pairs(preds, {"A"}, {"B"}) == []

    def test_connected_aliases_chain(self):
        preds = [pred("A.x", "=", "B.x"), pred("B.z", "=", "C.z")]
        assert connected_aliases(preds, "A", {"A", "B", "C"}) == {
            "A", "B", "C",
        }

    def test_connected_aliases_island(self):
        preds = [pred("A.x", "=", "B.x")]
        assert connected_aliases(preds, "C", {"A", "B", "C"}) == {"C"}


class TestQueryBlock:
    def test_combined_schema_order(self, db):
        block = db.bind("SELECT A.x FROM A, B WHERE A.x = B.x")
        names = block.combined_schema().names()
        assert names == ["A.x", "A.y", "B.x", "B.z"]

    def test_validate_accepts_bound_block(self, db):
        block = db.bind("SELECT A.x FROM A, B WHERE A.x = B.x")
        block.validate()  # must not raise

    def test_validate_rejects_unknown_predicate_column(self, db):
        block = db.bind("SELECT A.x FROM A")
        block.predicates.append(pred("Q.q", "=", 1))
        with pytest.raises(Exception):
            block.validate()

    def test_display_sql_roundtrips_through_parser(self, db):
        block = db.bind(
            "SELECT A.x AS x FROM A, B WHERE A.x = B.x AND A.y > 3"
        )
        text = block.display_sql()
        reparsed = db.bind(text)
        assert reparsed.output_schema().names() == ["x"]
        assert len(reparsed.predicates) == 2

    def test_display_sql_grouped(self, db):
        block = db.bind(
            "SELECT x, COUNT(*) AS n FROM A GROUP BY x HAVING COUNT(*) > 1"
        )
        text = block.display_sql()
        assert "GROUP BY" in text and "HAVING" in text
        reparsed = db.bind(text)
        assert reparsed.output_schema().names() == ["n"] or \
            reparsed.output_schema().names() == ["x", "n"]

    def test_group_output_schema_requires_grouping(self, db):
        block = db.bind("SELECT A.x FROM A")
        with pytest.raises(BindError):
            block.group_output_schema()

    def test_relation_lookup(self, db):
        block = db.bind("SELECT A.x FROM A, B WHERE A.x = B.x")
        assert block.relation("B").alias == "B"
        with pytest.raises(BindError):
            block.relation("Z")
