"""Optimizer search-space observability: the DP trace, why-not
explanations, exports, and planner metrics.

The anchor scenario is the paper's Figure-3 workload (the empdept
motivating query): its search trace must show at least one *pruned*
filter-join candidate with a full cost-ledger delta, and ``why_not``
must name the rival that beat it — the acceptance criteria of the
observability PR.
"""

import json

import pytest

from repro import Database, Options, OptimizerTrace, PlanError
from repro.obs.opttrace import DOMINATED, KEPT, ORDER_PRUNED
from repro.workloads import MOTIVATING_QUERY, build_empdept

QUERY = " ".join(MOTIVATING_QUERY.split())


@pytest.fixture(scope="module")
def db(empdept_db):
    return empdept_db


@pytest.fixture(scope="module")
def trace(db):
    trace = OptimizerTrace()
    db.plan(QUERY, search=trace)
    return trace


class TestSearchTrace:
    def test_records_every_memo_candidate(self, db, trace):
        assert len(trace.records) == trace.metrics.plans_considered
        assert trace.metrics.plans_considered > 50

    def test_verdicts_partition_candidates(self, trace):
        kept = [r for r in trace.records if not r.pruned]
        pruned = [r for r in trace.records if r.pruned]
        assert kept and pruned
        assert len(kept) + len(pruned) == len(trace.records)

    def test_pruned_filter_join_with_ledger_delta(self, trace):
        """Acceptance criterion: >=1 pruned filter-join candidate whose
        record carries the full Table-1 / ledger breakdown."""
        losers = [
            r for r in trace.records
            if r.method in ("filter_join", "bloom") and r.pruned
        ]
        assert losers, "no pruned filter-join candidates recorded"
        rec = losers[0]
        assert rec.components, "missing cost-ledger components"
        assert rec.detail and "production" in rec.detail
        assert "filter_columns" in rec.detail
        assert "components" in rec.detail  # Table-1 terms

    def test_chosen_plan_marked(self, db, trace):
        chosen = [r for r in trace.records if r.chosen]
        assert chosen
        best = max(chosen, key=lambda r: len(r.aliases))
        assert set(best.aliases) == {"D", "E", "V"}
        assert not any(r.pruned for r in chosen)

    def test_render_shows_lattice_and_pruning(self, db, trace):
        text = trace.render()
        assert "level 1 - access paths" in text
        assert "level 3" in text
        assert DOMINATED in text
        assert "Table-1 components" in text
        assert "ledger delta" in text
        assert "parametric costers" in text

    def test_parametric_anchors_recorded(self, trace):
        assert trace.anchors
        anchor = trace.anchors[0]
        assert anchor.anchors, "no interpolation endpoints"
        assert anchor.fit is not None
        assert anchor.estimate_calls >= anchor.nested_optimizations

    def test_attach_twice_rejected(self, db):
        trace = OptimizerTrace()
        db.plan(QUERY, search=trace)
        with pytest.raises(PlanError):
            db.plan(QUERY, search=trace)


class TestWhyNot:
    def test_rejected_names_rival_and_ledger_terms(self, db):
        report = db.why_not(QUERY, "bloom")
        assert report.status == "rejected"
        assert report.rival is not None
        assert report.rival.method != "bloom"
        assert report.delta > 0
        assert report.ledger_delta, "no per-field ledger difference"
        text = report.render()
        assert "ledger delta" in text
        assert report.rival.method in text

    def test_chosen_reports_runner_up(self, db):
        report = db.why_not(QUERY, "filter_join")
        assert report.status == "chosen"
        assert "WAS chosen" in report.render()

    def test_disabled_reports_config_flag(self, db):
        config = db.config.replace(enable_filter_join=False,
                                   enable_bloom_filter=False)
        report = db.why_not(QUERY, "filter_join", config=config)
        assert report.status == "disabled"
        assert "enable_filter_join=False" in report.render()

    def test_method_aliases_normalize(self, db):
        by_alias = db.why_not(QUERY, "Magic")
        by_name = db.why_not(QUERY, "filter_join")
        assert by_alias.method == by_name.method == "filter_join"

    def test_unknown_method_lists_valid_names(self, db):
        with pytest.raises(PlanError, match="filter_join"):
            db.why_not(QUERY, "quantum_join")


class TestExplainModes:
    def test_search_mode_appends_trace(self, db):
        text = db.explain(QUERY, mode="search")
        assert "== optimizer search trace" in text
        assert DOMINATED in text

    def test_why_not_section(self, db):
        text = db.explain(QUERY, why_not="merge")
        assert "why-not merge" in text

    def test_bad_mode_rejected(self, db):
        with pytest.raises(Exception, match="mode"):
            db.explain(QUERY, mode="verbose")

    def test_plan_mode_unchanged(self, db):
        assert db.explain(QUERY) == db.explain(QUERY, mode="plan")


class TestExports:
    def test_json_round_trip(self, trace):
        data = json.loads(trace.to_json_str())
        assert data["format"] == "repro-search-trace/v1"
        assert len(data["records"]) == len(trace.records)
        assert data["metrics"]["candidates_by_method"]
        assert data["parametric"]
        verdicts = {r["verdict"] for r in data["records"]}
        assert KEPT in verdicts and DOMINATED in verdicts

    def test_dot_export(self, trace):
        dot = trace.to_dot()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"D_E" -> "D_E_V"' in dot.replace("  ", " ") or "->" in dot
        # the chosen path is highlighted
        assert "penwidth" in dot

    def test_dump_search_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "trace.json"
        assert main(["dump-search", "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["records"]
        dot = tmp_path / "trace.dot"
        assert main(["dump-search", "--format", "dot",
                     "-o", str(dot)]) == 0
        assert dot.read_text().startswith("digraph")


class TestOptionsIntegration:
    def test_search_trace_attaches_to_result(self, db):
        result = db.sql(QUERY, options=Options(search_trace=True))
        assert result.search is not None
        assert result.search.records
        assert result.search.final_plan is not None

    def test_off_by_default(self, db):
        assert db.sql(QUERY).search is None

    def test_search_trace_bypasses_plan_cache(self):
        db = Database()
        build_empdept(db)
        db.configure(use_cache=True)
        db.sql(QUERY)
        result = db.sql(QUERY, options=Options(search_trace=True))
        assert result.search is not None
        assert not result.cached_plan

    def test_explain_analyze_search_line(self, db):
        text = db.explain_analyze(QUERY, search=True)
        line = [l for l in text.splitlines() if l.startswith("search:")]
        assert line, "no search summary line"
        assert "memo entries" in line[0]
        assert "candidates" in line[0]

    def test_explain_analyze_without_search_has_no_line(self, db):
        text = db.explain_analyze(QUERY)
        assert not any(l.startswith("search:") for l in text.splitlines())


class TestPlannerMetrics:
    def test_per_method_counters_in_registry(self):
        db = Database()
        build_empdept(db)
        db.sql(QUERY)
        data = db.metrics()
        by_method = data["planner_candidates_total"]["by_label"]
        assert "filter_join" in by_method
        assert by_method["filter_join"] >= 1
        pruned = data["planner_candidates_pruned_total"]["by_label"]
        assert sum(pruned.values()) > 0
        assert data["planner_memo_entries_total"]["total"] > 0

    def test_parametric_plans_saved_counter(self):
        db = Database()
        build_empdept(db)
        db.sql(QUERY)
        data = db.metrics()
        saved = data.get("planner_parametric_plans_saved_total")
        assert saved is not None and saved["total"] > 0

    def test_planner_metrics_by_method_sum(self, db):
        _plan, planner = db.plan(QUERY)
        m = planner.metrics
        assert sum(m.candidates_by_method.values()) == m.plans_considered
        assert sum(m.pruned_by_method.values()) <= m.plans_considered


class TestVerdictSemantics:
    def test_dominated_points_at_cheaper_rival(self, trace):
        by_seq = {r.seq: r for r in trace.records}
        for rec in trace.records:
            if rec.verdict == DOMINATED and rec.dominated_by is not None:
                rival = by_seq[rec.dominated_by]
                assert rival.aliases == rec.aliases
                assert rival.cost <= rec.cost

    def test_order_pruned_exceed_four_times_best(self, trace):
        for rec in trace.records:
            if rec.verdict != ORDER_PRUNED:
                continue
            peers = [
                r.cost for r in trace.records
                if r.aliases == rec.aliases and r.site == rec.site
            ]
            assert rec.cost > min(peers)
