"""The asyncio SQL server: one session per connection, shared engine.

The event loop owns only the sockets; every engine call (``new_session``,
statement execution, ``close``) is pushed onto a small thread pool, where
the database's statement lock serializes actual execution. Isolation
between connections is therefore exactly the embedded engine's MVCC
story — the server adds no second concurrency model.

Connection ids ("c1", "c2", ...) double as session names, so event-log
records join across the layers: ``conn_open``/``conn_close`` events
carry the same name that ``query_start`` records report as ``session``.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Dict, Optional, Tuple

from ..errors import ProtocolError, ReproError
from .protocol import (
    HEADER,
    PROTOCOL_VERSION,
    decode_payload,
    encode_frame,
    error_payload,
    frame_length,
    result_payload,
)


class Server:
    """Serve one :class:`~repro.database.Database` over TCP.

    ``port=0`` (the default) binds an ephemeral port; read the bound
    address from :attr:`address` after :meth:`start`::

        server = await Server(db).start()
        host, port = server.address
        ...
        await server.stop()
    """

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0,
                 max_workers: int = 8):
        self.db = db
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve")
        self._conn_ids = itertools.count(1)
        #: currently open connections
        self.connections = 0
        #: connections ever accepted
        self.total_connections = 0
        #: connection name -> the statement it is executing right now
        #: (written from the event loop only; read by ``sessions``)
        self.inflight: Dict[str, dict] = {}

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        return self.host, self.port

    async def start(self) -> "Server":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and release the worker pool.
        In-flight statements finish; their connections then find the
        socket closed."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False)

    # -------------------------------------------------------- connection

    async def _engine(self, fn, *args, **kwargs):
        """Run a blocking engine call on the worker pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, partial(fn, *args, **kwargs))

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = "c%d" % next(self._conn_ids)
        self.connections += 1
        self.total_connections += 1
        self.db.metrics_registry.inc("server_connections_total")
        self.db.event_log.emit("conn_open", conn=conn)
        session = None
        try:
            session = await self._engine(self.db.new_session, conn)
            writer.write(encode_frame({
                "server": "repro",
                "protocol": PROTOCOL_VERSION,
                "conn_id": conn,
            }))
            await writer.drain()
            await self._serve_session(session, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            # client vanished (possibly mid-frame): treated as a
            # disconnect — the session close below rolls back
            pass
        except ProtocolError as exc:
            # the stream itself is unreadable; answer once and drop
            try:
                writer.write(encode_frame(error_payload(exc)))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            if session is not None:
                try:
                    await self._engine(session.close)
                except RuntimeError:
                    # the pool is gone (server/process shutdown);
                    # close inline so the txn still rolls back
                    session.close()
            self.connections -= 1
            self.db.event_log.emit("conn_close", conn=conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_session(self, session, reader, writer) -> None:
        while True:
            header = await reader.readexactly(HEADER.size)
            data = await reader.readexactly(frame_length(header))
            request = decode_payload(data)
            response = await self._respond(session, request)
            writer.write(encode_frame(response))
            await writer.drain()
            if request.get("op") == "close":
                return

    # ----------------------------------------------------------- request

    async def _respond(self, session, request: dict) -> dict:
        op = request.get("op", "sql")
        try:
            payload = await self._dispatch(session, op, request)
        except ReproError as exc:
            # typed engine errors (including ProtocolError for a bad
            # request and SerializationError for write conflicts) are
            # answered in-band; the connection stays usable
            self.db.metrics_registry.inc("server_errors_total",
                                         label=type(exc).__name__)
            payload = error_payload(exc)
        except Exception as exc:  # engine bug: report, keep serving
            self.db.metrics_registry.inc("server_errors_total",
                                         label="internal")
            payload = {
                "ok": False,
                "error": "InternalError",
                "message": "%s: %s" % (type(exc).__name__, exc),
            }
        if "id" in request:
            payload["id"] = request["id"]
        return payload

    async def _dispatch(self, session, op: str, request: dict) -> dict:
        if op == "sql":
            result = await self._run_statement(
                session, session.sql, self._sql_text(request))
            self.db.metrics_registry.inc("server_statements_total")
            return result_payload(result)
        if op == "script":
            results = await self._run_statement(
                session, session.execute_script, self._sql_text(request))
            self.db.metrics_registry.inc("server_statements_total",
                                         amount=len(results))
            return {"ok": True,
                    "results": [result_payload(r) for r in results]}
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "status":
            status = await self._engine(session._run, self.db.txn.status)
            return {"ok": True, "status": status}
        if op == "metrics":
            return {"ok": True, "metrics": self.db.metrics()}
        if op == "sessions":
            return {"ok": True, "sessions": await self._sessions_payload()}
        if op == "slowlog":
            limit = self._admin_limit(request, default=20)
            return {"ok": True,
                    "slowlog": [entry.as_dict() for entry
                                in self.db.querylog.slowest(limit)]}
        if op == "drift":
            report = await self._engine(self.db.drift_report)
            return {"ok": True, "drift": report.as_dict()}
        if op == "close":
            return {"ok": True, "closed": True}
        raise ProtocolError("unknown request op %r" % op)

    async def _run_statement(self, session, method, text: str):
        """Run a sql/script engine call with in-flight bookkeeping, so
        the ``sessions`` admin view can show what each connection is
        executing right now."""
        self.inflight[session.name] = {
            "sql": " ".join(text.split())[:200],
            "started": time.time(),
        }
        try:
            return await self._engine(method, text)
        finally:
            self.inflight.pop(session.name, None)

    async def _sessions_payload(self) -> list:
        def snapshot():
            with self.db._lock:
                return self.db.txn.sessions_overview()

        overview = await self._engine(snapshot)
        now = time.time()
        for entry in overview:
            running = self.inflight.get(entry["session"])
            entry["running"] = running["sql"] if running else None
            entry["running_seconds"] = (
                round(now - running["started"], 3) if running else None)
        return overview

    @staticmethod
    def _admin_limit(request: dict, default: int) -> int:
        limit = request.get("limit", default)
        if isinstance(limit, bool) or not isinstance(limit, int) \
                or not 1 <= limit <= 1000:
            raise ProtocolError(
                "request field 'limit' must be an integer in [1, 1000], "
                "got %r" % (limit,))
        return limit

    @staticmethod
    def _sql_text(request: dict) -> str:
        text = request.get("sql")
        if not isinstance(text, str):
            raise ProtocolError(
                "request op %r needs a string 'sql' field"
                % request.get("op", "sql")
            )
        return text
