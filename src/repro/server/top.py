"""``python -m repro top``: a live snapshot of a running repro server.

Four admin requests (``metrics``, ``sessions``, ``slowlog``, ``drift``)
are fetched over one client connection and rendered as a single text
panel — connections, per-kind latency, what every session is running
right now, the slowest statements, estimate drift by table, and the
adaptive maintenance counters. :func:`render_top` is a pure function of
the four payloads, so tests exercise the rendering without a server.
"""

from __future__ import annotations

from typing import List, Optional


def _counter_total(metrics: dict, name: str):
    value = metrics.get(name)
    if isinstance(value, dict):
        return value.get("total", 0)
    return value or 0


def _counter_labels(metrics: dict, name: str) -> dict:
    value = metrics.get(name)
    if isinstance(value, dict):
        by_label = value.get("by_label")
        if isinstance(by_label, dict):
            return by_label
    return {}


def _fmt_ms(seconds) -> str:
    if seconds is None:
        return "-"
    return "%.2f" % (seconds * 1e3)


def _header_line(metrics: dict) -> str:
    conns = _counter_total(metrics, "server_connections_total")
    stmts = _counter_total(metrics, "server_statements_total")
    errors = _counter_total(metrics, "server_errors_total")
    slow = _counter_total(metrics, "slow_queries_total")
    return ("connections=%s  statements=%s  errors=%s  slow=%s"
            % (conns, stmts, errors, slow))


def _latency_section(metrics: dict) -> List[str]:
    latency = metrics.get("latency")
    if not latency:
        return ["latency: no telemetry recorded "
                "(start the server with --telemetry)"]
    lines = ["latency by statement kind:",
             "  %-10s %-8s %-10s %-10s %-10s"
             % ("kind", "count", "mean ms", "p50 ms", "p99 ms")]
    for kind in sorted(latency):
        data = latency[kind]
        lines.append("  %-10s %-8s %-10s %-10s %-10s" % (
            kind, data.get("count", 0), _fmt_ms(data.get("mean")),
            _fmt_ms(data.get("p50")), _fmt_ms(data.get("p99")),
        ))
    return lines


def _sessions_section(sessions: List[dict]) -> List[str]:
    if not sessions:
        return ["sessions: none"]
    lines = ["sessions (%d):" % len(sessions),
             "  %-8s %-6s %-8s %-6s %s"
             % ("session", "txn", "stmts", "busy s", "running")]
    for entry in sessions:
        txn = entry.get("txn") or "-"
        running = entry.get("running") or "-"
        busy = entry.get("running_seconds")
        lines.append("  %-8s %-6s %-8s %-6s %s" % (
            entry.get("session", "?"), txn,
            entry.get("statements", 0),
            "%.1f" % busy if busy is not None else "-",
            running[:50],
        ))
    return lines


def _slowlog_section(slowlog: List[dict], limit: int = 5) -> List[str]:
    if not slowlog:
        return ["slow queries: none recorded"]
    lines = ["slow queries (worst %d of %d):"
             % (min(limit, len(slowlog)), len(slowlog)),
             "  %-10s %-8s %-8s %-6s %s"
             % ("ms", "kind", "rows", "sess", "statement")]
    for entry in slowlog[:limit]:
        lines.append("  %-10.2f %-8s %-8s %-6s %s" % (
            entry.get("seconds", 0.0) * 1e3, entry.get("kind", "?"),
            entry.get("rows", 0), entry.get("session") or "-",
            " ".join(str(entry.get("statement", "")).split())[:50],
        ))
    return lines


def _drift_section(drift: dict, limit: int = 5) -> List[str]:
    tables = drift.get("tables") or []
    if not tables:
        return ["drift: no traced queries in the window"]
    lines = ["drift by owning table (mean q-error):",
             "  %-16s %-8s %-10s %s"
             % ("table", "samples", "mean q", "max q")]
    for entry in tables[:limit]:
        lines.append("  %-16s %-8s %-10.2f %.2f" % (
            entry.get("table", "?"), entry.get("samples", 0),
            entry.get("mean_q_error", 1.0),
            entry.get("max_q_error", 1.0),
        ))
    return lines


def _adaptive_section(metrics: dict) -> List[str]:
    actions = _counter_labels(metrics, "adaptive_reanalyze_total")
    skips = _counter_labels(metrics, "adaptive_skips_total")
    total = _counter_total(metrics, "adaptive_reanalyze_total")
    if not total and not skips:
        return ["adaptive: no actions"]
    parts = ["adaptive: %s re-analyze action(s)" % total]
    if actions:
        parts.append("by table: " + ", ".join(
            "%s=%s" % (k, actions[k]) for k in sorted(actions)))
    if skips:
        parts.append("skips: " + ", ".join(
            "%s=%s" % (k, skips[k]) for k in sorted(skips)))
    return ["; ".join(parts)]


def render_top(metrics: dict, sessions: List[dict],
               slowlog: List[dict], drift: dict,
               address: Optional[str] = None) -> str:
    """The ``repro top`` panel as one string — pure, testable."""
    title = "repro top"
    if address:
        title += " — %s" % address
    lines = [title, _header_line(metrics), ""]
    lines.extend(_latency_section(metrics))
    lines.append("")
    lines.extend(_sessions_section(sessions))
    lines.append("")
    lines.extend(_slowlog_section(slowlog))
    lines.append("")
    lines.extend(_drift_section(drift))
    lines.append("")
    lines.extend(_adaptive_section(metrics))
    return "\n".join(lines)


def fetch_snapshot(client, address: Optional[str] = None) -> str:
    """Fetch the four admin payloads over one client and render them."""
    metrics = client.metrics()
    sessions = client.sessions()
    slowlog = client.slowlog()
    drift = client.drift()
    return render_top(metrics, sessions, slowlog, drift, address=address)
