"""The wire protocol: length-prefixed JSON frames.

One frame is a 4-byte little-endian unsigned length followed by that
many bytes of UTF-8 JSON encoding one object — the same framing idiom
as the WAL's records (:mod:`repro.txn.wal`), minus the checksum: TCP
already guarantees integrity, the prefix only delimits messages.

Requests are ``{"id": n, "op": ..., ...}``; the ``id`` is echoed on the
response so a client can pipeline. Ops:

========  =====================================  =======================
op        request fields                         response fields (ok)
========  =====================================  =======================
sql       ``sql`` (statement text)               ``rows``, ``columns``,
                                                 ``kind``, ``elapsed``,
                                                 ``cached_plan``
script    ``sql`` (';'-separated script)         ``results`` (list of
                                                 sql-shaped payloads)
ping      —                                      ``pong: true``
status    —                                      ``status`` (this
                                                 session's txn view)
metrics   —                                      ``metrics``
sessions  —                                      ``sessions`` (one dict
                                                 per live connection,
                                                 incl. in-flight SQL)
slowlog   ``limit`` (optional int, 1..1000)      ``slowlog`` (slowest
                                                 telemetry entries;
                                                 slow ones carry the
                                                 full plan + trace)
drift     —                                      ``drift`` (the drift
                                                 report, worst
                                                 operators/tables
                                                 first)
close     —                                      ``closed: true``
========  =====================================  =======================

Every response carries ``ok``. On failure ``ok`` is false and
``error``/``message`` name the typed error (e.g.
``SerializationError``); the client re-raises the matching class from
:mod:`repro.errors`. A request-level problem (unknown op, missing
field) is answered in-band and the connection stays usable; a
stream-level problem (bad length prefix, invalid JSON) is unrecoverable
mid-stream, so the server answers once and drops the connection.
"""

from __future__ import annotations

import json
import struct

from ..errors import ProtocolError

#: bump when the frame layout or required fields change
PROTOCOL_VERSION = 1

#: 4-byte little-endian unsigned payload length
HEADER = struct.Struct("<I")

#: refuse absurd frames before allocating for them (also what keeps a
#: garbage length prefix from stalling a read forever)
MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_frame(payload: dict) -> bytes:
    """One object as a complete wire frame (header + JSON bytes)."""
    data = json.dumps(payload, separators=(",", ":"),
                      default=str).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d-byte limit"
            % (len(data), MAX_FRAME_BYTES)
        )
    return HEADER.pack(len(data)) + data


def frame_length(header: bytes) -> int:
    """Validate a header and return the payload length."""
    if len(header) != HEADER.size:
        raise ProtocolError(
            "truncated frame header (%d of %d bytes)"
            % (len(header), HEADER.size)
        )
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d-byte limit"
            % (length, MAX_FRAME_BYTES)
        )
    return length


def decode_payload(data: bytes) -> dict:
    """Frame payload bytes -> the request/response object."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("frame payload is not valid JSON: %s" % exc)
    if not isinstance(payload, dict):
        raise ProtocolError(
            "frame payload must be a JSON object, got %s"
            % type(payload).__name__
        )
    return payload


def result_payload(result) -> dict:
    """A :class:`~repro.database.QueryResult` as a response payload."""
    return {
        "ok": True,
        "rows": [list(row) for row in result.rows],
        "columns": result.columns,
        "kind": result.statement_kind,
        "elapsed": round(result.elapsed_seconds, 6),
        "cached_plan": result.cached_plan,
    }


def error_payload(exc: BaseException) -> dict:
    """An exception as a typed error response."""
    return {
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }
