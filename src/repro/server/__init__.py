"""Client/server serving layer: an asyncio SQL server over sessions.

``python -m repro serve`` starts a TCP server whose wire format is
length-prefixed JSON frames (see :mod:`repro.server.protocol`). Each
connection gets its own :class:`~repro.database.Session` — transactions
are per-connection, snapshot-isolated by MVCC — while the catalog, plan
cache, metrics registry, and event log are shared. The blocking engine
runs in a thread pool; the event loop only frames bytes.

    from repro.server import Server, Client

    server = await Server(db).start()
    client = Client(*server.address)
    client.sql("SELECT 1 AS one").rows   # [(1,)]
"""

from .client import Client, ClientResult
from .protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_payload,
    encode_frame,
    error_payload,
    frame_length,
    result_payload,
)
from .server import Server
from .top import fetch_snapshot, render_top

__all__ = [
    "fetch_snapshot",
    "render_top",
    "Client",
    "ClientResult",
    "HEADER",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "Server",
    "decode_payload",
    "encode_frame",
    "error_payload",
    "frame_length",
    "result_payload",
]
