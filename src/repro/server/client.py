"""A small synchronous client for the repro server.

Blocking sockets, one request in flight at a time — deliberately plain,
so tests and benchmarks can drive many of them from plain threads. The
typed error contract survives the wire: an ``ok: false`` response names
the error class, and the client re-raises the matching type from
:mod:`repro.errors` (a :class:`~repro.errors.SerializationError` on the
server is a ``SerializationError`` here too).
"""

from __future__ import annotations

import itertools
import socket
from typing import List, Optional, Tuple

from ..errors import ProtocolError, ReproError
from .protocol import HEADER, decode_payload, encode_frame, frame_length


def _error_types() -> dict:
    """Every ReproError subclass by name, for re-raising responses."""
    out = {}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        out[cls.__name__] = cls
        stack.extend(cls.__subclasses__())
    return out


class ClientResult:
    """The client-side shape of one statement's result."""

    def __init__(self, payload: dict):
        self.rows: List[tuple] = [tuple(row)
                                  for row in payload.get("rows", [])]
        self.columns: List[str] = payload.get("columns", [])
        self.statement_kind: str = payload.get("kind", "select")
        self.elapsed_seconds: float = payload.get("elapsed", 0.0)
        self.cached_plan: bool = payload.get("cached_plan", False)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:
        return "ClientResult(%d rows, kind=%r)" % (
            len(self.rows), self.statement_kind)


class Client:
    """One connection to a :class:`~repro.server.Server`.

    Usable as a context manager; :meth:`close` sends the protocol
    goodbye (the server rolls back any open transaction either way,
    exactly as an abrupt disconnect would)::

        with Client(host, port) as client:
            client.sql("BEGIN")
            client.sql("INSERT INTO t VALUES (1)")
            client.sql("COMMIT")
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 30.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._ids = itertools.count(1)
        self.closed = False
        greeting = self._read_frame()
        self.conn_id: str = greeting.get("conn_id", "")
        self.protocol: int = greeting.get("protocol", 0)

    # ------------------------------------------------------------ framing

    def _read_exact(self, count: int) -> bytes:
        chunks = []
        while count:
            chunk = self._sock.recv(count)
            if not chunk:
                raise ProtocolError(
                    "server closed the connection mid-frame")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> dict:
        length = frame_length(self._read_exact(HEADER.size))
        return decode_payload(self._read_exact(length))

    def request(self, op: str, **fields) -> dict:
        """Send one request and return the (ok) response payload,
        re-raising the typed error on an ``ok: false`` response."""
        if self.closed:
            raise ProtocolError("client is closed")
        request = {"id": next(self._ids), "op": op}
        request.update(fields)
        self._sock.sendall(encode_frame(request))
        response = self._read_frame()
        if response.get("id") not in (None, request["id"]):
            raise ProtocolError(
                "response id %r does not match request id %r"
                % (response.get("id"), request["id"])
            )
        if not response.get("ok"):
            error_type = _ERROR_TYPES.get(response.get("error", ""),
                                          ReproError)
            raise error_type(response.get("message",
                                          "server reported an error"))
        return response

    # ------------------------------------------------------------- verbs

    def sql(self, text: str) -> ClientResult:
        """Execute one statement in this connection's session."""
        return ClientResult(self.request("sql", sql=text))

    def execute_script(self, text: str) -> List[ClientResult]:
        response = self.request("script", sql=text)
        return [ClientResult(payload)
                for payload in response["results"]]

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def status(self) -> dict:
        """This session's transaction status (the shell's ``\\txn``)."""
        return self.request("status")["status"]

    def metrics(self) -> dict:
        return self.request("metrics")["metrics"]

    def sessions(self) -> List[dict]:
        """Every live connection's session state, including the
        statement each one is executing right now (``repro top``'s
        session pane)."""
        return self.request("sessions")["sessions"]

    def slowlog(self, limit: int = 20) -> List[dict]:
        """The server's slowest telemetry entries, worst first. Slow
        entries carry the full plan text and span trace for offline
        replay."""
        return self.request("slowlog", limit=limit)["slowlog"]

    def drift(self) -> dict:
        """The server's drift report (estimate quality over the recent
        traced-query window)."""
        return self.request("drift")["drift"]

    def close(self) -> None:
        """Send the goodbye and close the socket (idempotent)."""
        if self.closed:
            return
        try:
            self.request("close")
        except (ReproError, OSError):
            pass  # closing is best-effort; the socket drop suffices
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return "Client(conn_id=%r, %s)" % (self.conn_id, state)


_ERROR_TYPES = _error_types()
