"""Magic-sets rewriting over query blocks.

Two consumers share this module:

- The optimizer, which uses :func:`restricted_view_block` /
  :func:`restricted_stored_block` to build the *restricted inner* of a
  Filter Join: the inner's definition with the filter set injected as an
  extra relation (exactly Figure 2's ``RestrictedDepAvgSal``).
- The textual rewriter :func:`magic_rewrite`, which, given a SIPS choice
  (production aliases + bound columns), emits the full Figure-2 shape —
  PartialResult / Filter / RestrictedView / final query — as query blocks
  and SQL text. This is what a rewrite-based system like Starburst would
  produce, and experiment C3 compares it against the cost-based plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.block import QueryBlock, SelectItem
from ..algebra.predicates import aliases_in
from ..algebra.relations import (
    FilterSetRelation,
    RelationRef,
    StoredRelation,
    VirtualRelation,
)
from ..errors import PlanError, RecursiveViewError
from ..expr.nodes import ColumnRef, Comparison, Expr, InList, Literal, \
    RuntimeMembership
from ..storage.schema import Column, Schema


def bindable_columns(block) -> Dict[str, str]:
    """Map a block's output column names to the body columns they expose.

    Only output columns that are direct references to a body column (for
    grouped blocks: to a GROUP BY column) can receive a filter set —
    restricting on them provably cannot change the surviving groups/rows.
    Computed expressions, aggregate results, and UNION outputs are not
    bindable.
    """
    if not isinstance(block, QueryBlock):
        return {}  # e.g. a UnionQuery view body: full computation only
    mapping: Dict[str, str] = {}
    if block.is_grouped:
        group_out_to_body: Dict[str, str] = {}
        for ref in block.group_by:
            group_out_to_body[ref.name.split(".")[-1]] = ref.name
        if block.select_items:
            for item, out_name in _items_with_names(block):
                if isinstance(item.expr, ColumnRef):
                    body = group_out_to_body.get(item.expr.name)
                    if body is not None:
                        mapping[out_name] = body
        else:
            mapping.update(group_out_to_body)
        return mapping
    if block.select_items:
        for item, out_name in _items_with_names(block):
            if isinstance(item.expr, ColumnRef):
                mapping[out_name] = item.expr.name
    else:
        for column in block.combined_schema().columns:
            mapping[column.name] = column.name
    return mapping


def _items_with_names(block: QueryBlock):
    for item in block.select_items:
        yield item, item.output_name


@dataclass
class RestrictedInner:
    """A restricted inner block plus the filter-set bookkeeping.

    ``filter_schema`` is the (unqualified) schema of the filter set;
    ``bound_output_cols`` names the inner's output columns the filter
    applies to, positionally matching ``filter_schema``.
    """

    block: QueryBlock
    filter_relation: FilterSetRelation
    filter_schema: Schema
    bound_output_cols: List[str]


_FILTER_ALIAS = "_F"


def _fresh_filter_alias(relations) -> str:
    """A filter-set alias that cannot collide with the block's own."""
    taken = {rel.alias for rel in relations}
    alias = _FILTER_ALIAS
    counter = 2
    while alias in taken:
        alias = "%s%d" % (_FILTER_ALIAS, counter)
        counter += 1
    return alias


def restricted_view_block(view: VirtualRelation,
                          bound_output_cols: Sequence[str],
                          param_id: str) -> RestrictedInner:
    """The view's block with the filter set joined in (magic rewriting).

    ``bound_output_cols`` are names in the view's *base schema* (i.e. the
    names callers see, after any view column aliases). The result block
    produces the same output schema as the original view block.
    """
    block = view.block
    # Translate through view column aliases to the block's own output names.
    base_names = view.base_schema.names()
    block_names = block.output_schema().names()
    to_block_name = dict(zip(base_names, block_names))
    bindable = bindable_columns(block)

    filter_alias = _fresh_filter_alias(block.relations)
    filter_columns: List[Column] = []
    predicates: List[Expr] = []
    bound: List[str] = []
    output_schema = view.base_schema
    for name in bound_output_cols:
        block_name = to_block_name.get(name)
        if block_name is None or block_name not in bindable:
            raise PlanError(
                "column %r of view %s is not bindable" % (name, view.view_name)
            )
        body_col = bindable[block_name]
        filter_col_name = name
        filter_columns.append(
            Column(filter_col_name, output_schema.column(name).dtype)
        )
        predicates.append(Comparison(
            "=",
            ColumnRef("%s.%s" % (filter_alias, filter_col_name)),
            ColumnRef(body_col),
        ))
        bound.append(name)
    if not filter_columns:
        raise PlanError("no bindable columns for view %s" % view.view_name)

    filter_schema = Schema(filter_columns)
    filter_rel = FilterSetRelation(filter_alias, filter_schema, param_id)
    new_block = QueryBlock(
        relations=[filter_rel] + list(block.relations),
        predicates=predicates + list(block.predicates),
        select_items=list(block.select_items),
        group_by=list(block.group_by),
        aggregates=list(block.aggregates),
        having=block.having,
        distinct=block.distinct,
        order_by=[],
        limit=block.limit,
    )
    return RestrictedInner(new_block, filter_rel, filter_schema, bound)


def restricted_stored_block(relation: StoredRelation,
                            bound_columns: Sequence[str],
                            param_id: str,
                            local_predicates: Sequence[Expr] = ()) -> RestrictedInner:
    """A stored relation restricted by a filter set (local/remote
    semi-join). ``bound_columns`` are unqualified column names of the
    table; the block's output is the full (unqualified) row.
    """
    if not bound_columns:
        raise PlanError("semi-join needs at least one bound column")
    schema = relation.base_schema
    filter_columns = [
        Column(name, schema.column(name).dtype) for name in bound_columns
    ]
    filter_schema = Schema(filter_columns)
    filter_alias = _fresh_filter_alias([relation])
    filter_rel = FilterSetRelation(filter_alias, filter_schema, param_id)
    inner_copy = StoredRelation(relation.alias, relation.table,
                                site=relation.site)
    predicates: List[Expr] = [
        Comparison(
            "=",
            ColumnRef("%s.%s" % (filter_alias, name)),
            ColumnRef("%s.%s" % (relation.alias, name)),
        )
        for name in bound_columns
    ]
    predicates.extend(local_predicates)
    select_items = [
        SelectItem(ColumnRef("%s.%s" % (relation.alias, col.name)),
                   alias=col.name)
        for col in schema.columns
    ]
    block = QueryBlock(
        relations=[filter_rel, inner_copy],
        predicates=predicates,
        select_items=select_items,
    )
    return RestrictedInner(block, filter_rel, filter_schema,
                           list(bound_columns))


def restricted_view_block_lossy(view: VirtualRelation,
                                bound_output_cols: Sequence[str],
                                param_id: str,
                                assumed_selectivity: float = 1.0) -> RestrictedInner:
    """The lossy variant: restrict the view body with a run-time Bloom
    filter instead of joining an exact filter set.

    Lossiness is safe here because a Bloom filter only admits a superset
    of the true filter values; the Filter Join's final join discards the
    false positives (Section 3.2's "lossy fashion").
    """
    block = view.block
    base_names = view.base_schema.names()
    block_names = block.output_schema().names()
    to_block_name = dict(zip(base_names, block_names))
    bindable = bindable_columns(block)
    body_cols: List[ColumnRef] = []
    bound: List[str] = []
    for name in bound_output_cols:
        block_name = to_block_name.get(name)
        if block_name is None or block_name not in bindable:
            raise PlanError(
                "column %r of view %s is not bindable" % (name, view.view_name)
            )
        body_cols.append(ColumnRef(bindable[block_name]))
        bound.append(name)
    if not body_cols:
        raise PlanError("no bindable columns for view %s" % view.view_name)
    membership = RuntimeMembership(param_id, body_cols, assumed_selectivity)
    filter_schema = Schema(
        Column(name, view.base_schema.column(name).dtype) for name in bound
    )
    filter_rel = FilterSetRelation(_FILTER_ALIAS, filter_schema, param_id)
    new_block = QueryBlock(
        relations=list(block.relations),
        predicates=[membership] + list(block.predicates),
        select_items=list(block.select_items),
        group_by=list(block.group_by),
        aggregates=list(block.aggregates),
        having=block.having,
        distinct=block.distinct,
        order_by=[],
        limit=block.limit,
    )
    return RestrictedInner(new_block, filter_rel, filter_schema, bound)


def restricted_stored_block_lossy(relation: StoredRelation,
                                  bound_columns: Sequence[str],
                                  param_id: str,
                                  local_predicates: Sequence[Expr] = (),
                                  assumed_selectivity: float = 1.0) -> RestrictedInner:
    """A stored relation restricted by a Bloom filter on the given
    columns (the "Bloom Filter" cell of Figure 6)."""
    if not bound_columns:
        raise PlanError("lossy semi-join needs at least one bound column")
    schema = relation.base_schema
    membership = RuntimeMembership(
        param_id,
        [ColumnRef("%s.%s" % (relation.alias, name)) for name in bound_columns],
        assumed_selectivity,
    )
    filter_schema = Schema(
        Column(name, schema.column(name).dtype) for name in bound_columns
    )
    filter_rel = FilterSetRelation(_FILTER_ALIAS, filter_schema, param_id)
    inner_copy = StoredRelation(relation.alias, relation.table,
                                site=relation.site)
    select_items = [
        SelectItem(ColumnRef("%s.%s" % (relation.alias, col.name)),
                   alias=col.name)
        for col in schema.columns
    ]
    block = QueryBlock(
        relations=[inner_copy],
        predicates=[membership] + list(local_predicates),
        select_items=select_items,
    )
    return RestrictedInner(block, filter_rel, filter_schema,
                           list(bound_columns))


# --------------------------------------------------------------- Figure 2

@dataclass
class MagicRewriting:
    """The Figure-2 decomposition of one query.

    ``partial_result`` computes the production set; ``filter_block``
    distinct-projects it into the filter set; ``restricted_view`` is the
    view with the filter joined in; ``final_block`` joins everything
    back. ``sql`` renders all four as CREATE VIEW + SELECT text.
    """

    partial_result: QueryBlock
    filter_block: QueryBlock
    restricted_view: QueryBlock
    final_block: QueryBlock
    view_alias: str
    bound_columns: List[str]

    def sql(self) -> str:
        parts = [
            "CREATE VIEW PartialResult AS\n(%s);" %
            self.partial_result.display_sql(indent=2),
            "CREATE VIEW FilterSet AS\n(%s);" %
            self.filter_block.display_sql(indent=2),
            "CREATE VIEW RestrictedView AS\n(%s);" %
            self.restricted_view.display_sql(indent=2),
            "%s;" % self.final_block.display_sql(),
        ]
        return "\n\n".join(parts)


def magic_rewrite(block: QueryBlock, view_alias: str,
                  production_aliases: Optional[Sequence[str]] = None,
                  bound_columns: Optional[Sequence[str]] = None) -> MagicRewriting:
    """Apply Figure-2 magic rewriting to ``block`` for one view.

    ``production_aliases`` selects the SIPS production set (default: every
    other relation in the block); ``bound_columns`` selects which of the
    view's bindable equi-join columns feed the filter set (default: all).
    """
    view = block.relation(view_alias)
    if view.kind == "recursive":
        raise RecursiveViewError(
            "%r is a recursive view: Figure-2 magic rewriting only applies "
            "to non-recursive views; recursive relations get magic-sets "
            "restriction through the planner's fixpoint candidates instead"
            % view_alias,
            view_name=getattr(view, "view_name", view_alias),
        )
    if view.kind != "view":
        raise PlanError("%r is not a view in this block" % view_alias)
    other_aliases = [r.alias for r in block.relations if r.alias != view_alias]
    if production_aliases is None:
        production_aliases = other_aliases
    production_aliases = list(production_aliases)
    unknown = set(production_aliases) - set(other_aliases)
    if unknown:
        raise PlanError("production aliases %s not in block" % sorted(unknown))
    if not production_aliases:
        raise PlanError("production set cannot be empty")

    production_set = set(production_aliases)
    # Candidate filter columns: view columns equated — directly or through
    # the transitive closure of equalities — with a production column.
    from ..algebra.predicates import equality_classes

    candidates: List[Tuple[str, str]] = []  # (production col, view base col)
    for members in equality_classes(block.predicates):
        view_cols = [m for m in members
                     if m.startswith(view_alias + ".")]
        production_cols = [
            m for m in members
            if m.split(".", 1)[0] in production_set
        ]
        if view_cols and production_cols:
            candidates.append(
                (sorted(production_cols)[0],
                 sorted(view_cols)[0].split(".", 1)[1])
            )
    bindable = bindable_columns(view.block)
    base_names = view.base_schema.names()
    block_names = view.block.output_schema().names()
    to_block_name = dict(zip(base_names, block_names))
    candidates = [
        (prod, vcol) for prod, vcol in candidates
        if to_block_name.get(vcol) in bindable
    ]
    if bound_columns is not None:
        chosen = [c for c in candidates if c[1] in set(bound_columns)]
    else:
        chosen = candidates
    if not chosen:
        raise PlanError(
            "no bindable equi-join columns between %s and the production set"
            % view_alias
        )

    # PartialResult: production relations, their internal predicates, and
    # every column of theirs the final block needs.
    production_rels = [block.relation(a) for a in production_aliases]
    production_preds = [
        p for p in block.predicates
        if aliases_in(p) and aliases_in(p) <= production_set
    ]
    needed: List[str] = []
    for rel in production_rels:
        needed.extend(rel.output_schema.names())
    partial_items = [
        SelectItem(ColumnRef(name), alias=name.replace(".", "_"))
        for name in needed
    ]
    partial_result = QueryBlock(
        relations=production_rels,
        predicates=production_preds,
        select_items=partial_items,
    )

    # FilterSet: DISTINCT projection of the chosen production columns.
    filter_items = [
        SelectItem(ColumnRef(prod.replace(".", "_")), alias=vcol)
        for prod, vcol in chosen
    ]
    pr_rel = VirtualRelation("P", "PartialResult", partial_result)
    filter_block = QueryBlock(
        relations=[pr_rel],
        predicates=[],
        select_items=[
            SelectItem(ColumnRef("P.%s" % item.expr.name), alias=item.alias)
            for item in filter_items
        ],
        distinct=True,
    )

    # RestrictedView: the view body joined with the filter set.
    restricted = restricted_view_block(
        view, [vcol for _, vcol in chosen], param_id="magic"
    )
    f_rel = VirtualRelation("F", "FilterSet", filter_block)
    restricted_relations = [f_rel] + [
        r for r in restricted.block.relations if r.kind != "filterset"
    ]
    internal_alias = restricted.filter_relation.alias
    restricted_preds = [
        p.rename_columns({"%s.%s" % (internal_alias, vcol): "F.%s" % vcol
                          for _, vcol in chosen})
        for p in restricted.block.predicates
    ]
    restricted_view = QueryBlock(
        relations=restricted_relations,
        predicates=restricted_preds,
        select_items=restricted.block.select_items,
        group_by=restricted.block.group_by,
        aggregates=restricted.block.aggregates,
        having=restricted.block.having,
        distinct=restricted.block.distinct,
    )

    # Final block: PartialResult x RestrictedView x untouched relations.
    untouched = [
        r for r in block.relations
        if r.alias != view_alias and r.alias not in production_set
    ]
    rv_rel = VirtualRelation(view_alias, "RestrictedView", restricted_view,
                             column_aliases=base_names)
    pr_rename = {name: "P.%s" % name.replace(".", "_") for name in needed}
    final_preds = []
    for pred in block.predicates:
        refs = aliases_in(pred)
        if refs and refs <= production_set:
            continue  # already applied inside PartialResult
        final_preds.append(pred.rename_columns(pr_rename))
    final_items = []
    for item in block.select_items:
        final_items.append(SelectItem(
            item.expr.rename_columns(pr_rename), alias=item.output_name,
        ))
    final_block = QueryBlock(
        relations=[VirtualRelation("P", "PartialResult", partial_result),
                   rv_rel] + untouched,
        predicates=final_preds,
        select_items=final_items,
        group_by=[g.rename_columns(pr_rename) for g in block.group_by],
        aggregates=block.aggregates,
        having=block.having,
        distinct=block.distinct,
        order_by=list(block.order_by),
        limit=block.limit,
    )
    return MagicRewriting(
        partial_result=partial_result,
        filter_block=filter_block,
        restricted_view=restricted_view,
        final_block=final_block,
        view_alias=view_alias,
        bound_columns=[vcol for _, vcol in chosen],
    )


# ------------------------------------------------- recursive magic sets

def magic_safe_positions(relation) -> set:
    """Output positions of a recursive relation whose value passes
    *unchanged* from the delta through the recursive branch.

    A position is safe when the recursive branch's select item at that
    position is a direct reference to the delta's column at the same
    position. For such a column, every recursive output row inherits its
    value from some delta row, so by induction
    ``fixpoint(sigma(base)) == sigma(fixpoint(base))`` for any predicate
    over safe columns — the magic-sets condition for pushing query
    bindings into the fixpoint seed.
    """
    block = relation.recursive_block
    delta_alias = None
    delta_names: List[str] = []
    for rel in block.relations:
        if getattr(rel, "param_id", None) == relation.delta_param:
            delta_alias = rel.alias
            delta_names = rel.base_schema.names()
    if delta_alias is None or not block.select_items:
        return set()
    safe = set()
    for pos, item in enumerate(block.select_items):
        expr = item.expr
        if not isinstance(expr, ColumnRef) or "." not in expr.name:
            continue
        alias, col = expr.name.split(".", 1)
        if alias != delta_alias:
            continue
        try:
            if delta_names.index(col) == pos:
                safe.add(pos)
        except ValueError:
            pass
    return safe


@dataclass
class RecursiveBinding:
    """One query binding pushable into a recursive relation's seed."""

    position: int          # output column position it restricts
    predicate: Expr        # the original (qualified) predicate

    def pushed(self, base_names: Sequence[str]) -> Expr:
        """The same restriction, renamed onto a base plan's output."""
        target = ColumnRef(base_names[self.position])
        pred = self.predicate
        if isinstance(pred, Comparison):
            if isinstance(pred.left, Literal):
                pred = pred.flipped()
            return Comparison(pred.op, target, pred.right)
        if isinstance(pred, InList):
            return InList(target, pred.values, negated=False)
        raise PlanError("predicate %r is not pushable" % pred.display())


def recursive_magic_bindings(relation, predicates):
    """Split a consuming block's local predicates over ``relation`` into
    ``(pushable, remaining)``.

    Pushable predicates are literal comparisons (or non-negated IN lists)
    over magic-safe output columns; they may seed the fixpoint. Everything
    else stays above the fixpoint. Restriction commutes with the fixpoint
    only on safe columns, so this is deliberately conservative.
    """
    safe = magic_safe_positions(relation)
    if not safe:
        return [], list(predicates)
    pos_by_name = {
        "%s.%s" % (relation.alias, name): pos
        for pos, name in enumerate(relation.base_schema.names())
    }
    pushable: List[RecursiveBinding] = []
    remaining: List[Expr] = []
    for pred in predicates:
        pos = _pushable_position(pred, pos_by_name, safe)
        if pos is None:
            remaining.append(pred)
        else:
            pushable.append(RecursiveBinding(pos, pred))
    return pushable, remaining


def _pushable_position(pred, pos_by_name, safe):
    if isinstance(pred, Comparison):
        left, right = pred.left, pred.right
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right = right, left
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            pos = pos_by_name.get(left.name)
            if pos is not None and pos in safe:
                return pos
        return None
    if isinstance(pred, InList) and not pred.negated \
            and isinstance(pred.operand, ColumnRef):
        pos = pos_by_name.get(pred.operand.name)
        if pos is not None and pos in safe:
            return pos
    return None
