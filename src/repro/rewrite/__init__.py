"""Magic-sets rewriting (SIPS-driven) over query blocks."""

from .magic import (
    MagicRewriting,
    RestrictedInner,
    bindable_columns,
    magic_rewrite,
    restricted_stored_block,
    restricted_stored_block_lossy,
    restricted_view_block,
    restricted_view_block_lossy,
)

__all__ = [
    "MagicRewriting",
    "RestrictedInner",
    "bindable_columns",
    "magic_rewrite",
    "restricted_stored_block",
    "restricted_stored_block_lossy",
    "restricted_view_block",
    "restricted_view_block_lossy",
]
