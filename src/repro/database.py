"""The public façade: an embedded database with a cost-based optimizer
that treats magic-sets rewriting as a join method.

Typical use::

    from repro import Database

    db = Database()
    db.execute_script(open("schema.sql").read())
    db.analyze()
    result = db.sql("SELECT ... FROM Emp E, Dept D, DepAvgSal V WHERE ...")
    print(result.rows)
    print(db.explain("SELECT ..."))

Every query is parsed, bound against the catalog, optimized by the
System-R planner (with Filter Joins), lowered, and executed; the measured
cost ledger rides along on the :class:`QueryResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from .algebra.block import QueryBlock
from .errors import ReproError
from .executor.lowering import lower
from .executor.runtime import RuntimeContext
from .ledger import CostLedger
from .optimizer.config import OptimizerConfig
from .optimizer.planner import Planner, PlannerMetrics
from .optimizer.plans import PlanNode
from .sql import ast
from .sql.binder import Binder
from .sql.parser import parse, parse_script
from .storage.catalog import Catalog
from .storage.schema import Column, DataType, Schema
from .udf.relation import FunctionRegistry

_TYPE_MAP = {
    "int": DataType.INT,
    "float": DataType.FLOAT,
    "str": DataType.STR,
    "bool": DataType.BOOL,
}


@dataclass
class QueryResult:
    """Rows plus everything an experiment wants to know about the run."""

    rows: List[tuple]
    schema: Schema
    plan: Optional[PlanNode] = None
    ledger: CostLedger = field(default_factory=CostLedger)
    metrics: Optional[PlannerMetrics] = None
    elapsed_seconds: float = 0.0
    statement_kind: str = "select"

    @property
    def columns(self) -> List[str]:
        return self.schema.names()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[dict]:
        names = self.columns
        return [dict(zip(names, row)) for row in self.rows]

    def measured_cost(self, params=None) -> float:
        return self.ledger.total(params)

    def __repr__(self) -> str:
        return "QueryResult(%d rows, cost=%.1f)" % (
            len(self.rows), self.ledger.total(),
        )


class Database:
    """An embedded relational database with Filter Join optimization."""

    def __init__(self, config: Optional[OptimizerConfig] = None):
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self.config = config or OptimizerConfig()
        self.config.validate()
        self.last_planner: Optional[Planner] = None

    # ----------------------------------------------------------------- DDL

    def create_table(self, name: str,
                     columns: Sequence[Tuple[str, DataType]]):
        """Create a table from (name, DataType) pairs."""
        schema = Schema(Column(col, dtype) for col, dtype in columns)
        return self.catalog.create_table(name, schema)

    def create_view(self, name: str, sql_text: str,
                    column_aliases: Optional[Sequence[str]] = None):
        """Register a view; its body is bound lazily at query time."""
        statement = parse(sql_text)  # validate eagerly
        if not isinstance(statement, (ast.SelectStmt, ast.UnionStmt)):
            raise ReproError("a view must be defined by a query")
        return self.catalog.create_view(name, sql_text, column_aliases)

    def create_index(self, table: str, column: str,
                     kind: str = "hash") -> None:
        self.catalog.table(table).create_index(column, kind)

    def insert(self, table: str, rows) -> int:
        return self.catalog.table(table).insert_many(rows)

    def analyze(self, table: Optional[str] = None) -> None:
        """(Re)collect optimizer statistics."""
        self.catalog.analyze(table)

    # --------------------------------------------------------------- binding

    def binder(self) -> Binder:
        return Binder(self.catalog, self.functions.binder_map())

    def bind(self, sql_text: str):
        """Parse and bind a SELECT (or UNION chain) into its canonical
        bound form."""
        return self._bind_statement(parse(sql_text))

    def _bind_statement(self, statement):
        binder = self.binder()
        if isinstance(statement, ast.UnionStmt):
            return binder.bind_union(statement)
        if isinstance(statement, ast.SelectStmt):
            return binder.bind(statement)
        raise ReproError("expected a query, got %r"
                         % type(statement).__name__)

    # -------------------------------------------------------------- planning

    def plan(self, sql_or_block: Union[str, QueryBlock],
             config: Optional[OptimizerConfig] = None
             ) -> Tuple[PlanNode, Planner]:
        """Optimize a query; returns the plan and the planner (for its
        metrics and costers)."""
        block = (
            self.bind(sql_or_block) if isinstance(sql_or_block, str)
            else sql_or_block
        )
        planner = Planner(self.catalog, config or self.config)
        plan = planner.plan(block)
        self.last_planner = planner
        return plan, planner

    def explain(self, sql_text: str,
                config: Optional[OptimizerConfig] = None) -> str:
        plan, _planner = self.plan(sql_text, config)
        return plan.explain()

    def explain_analyze(self, sql_text: str,
                        config: Optional[OptimizerConfig] = None) -> str:
        """EXPLAIN plus execution: the plan annotated with per-operator
        actual row counts, followed by the measured cost ledger and
        estimate-vs-actual totals."""
        from .executor.lowering import lower_traced

        config = config or self.config
        plan, planner = self.plan(sql_text, config)
        ctx = RuntimeContext(
            params=config.cost_params,
            memory_pages=config.memory_pages,
            message_payload_bytes=config.message_payload_bytes,
        )
        root, tracers = lower_traced(plan, ctx)
        rows = list(root.rows())
        result = QueryResult(rows=rows, schema=plan.schema, plan=plan,
                             ledger=ctx.ledger, metrics=planner.metrics)

        def render(node, indent=0):
            tracer = tracers.get(id(node))
            if tracer is not None and tracer.executions > 0:
                actual = "actual rows=%d" % tracer.rows_out
                if tracer.executions > 1:
                    actual += " over %d runs" % tracer.executions
            else:
                actual = "never executed"
            line = "%s%s  [est rows=%.0f | %s | cost=%.1f]" % (
                "  " * indent, node.label(), node.est_rows, actual,
                node.est_cost,
            )
            parts = [line]
            for child in node.children():
                parts.append(render(child, indent + 1))
            return "\n".join(parts)

        measured = result.ledger.total(config.cost_params)
        lines = [
            render(plan),
            "",
            "actual rows: %d" % len(result.rows),
            "estimated cost: %.1f   measured cost: %.1f   (ratio %.2f)"
            % (plan.est_cost, measured,
               plan.est_cost / measured if measured else float("nan")),
            "measured: %s" % result.ledger,
            "optimizer: %d plans considered, %d filter joins costed, "
            "%d nested optimizations"
            % (planner.metrics.plans_considered,
               planner.metrics.filter_joins_considered,
               planner.metrics.nested_optimizations),
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------- execution

    def run_plan(self, plan: PlanNode,
                 metrics: Optional[PlannerMetrics] = None,
                 config: Optional[OptimizerConfig] = None) -> QueryResult:
        """Execute a physical plan and collect rows + measured costs.

        ``config`` supplies the runtime environment (memory, cost
        weights); it should match the config the plan was optimized
        under, defaulting to the database-wide config.
        """
        config = config or self.config
        ctx = RuntimeContext(
            params=config.cost_params,
            memory_pages=config.memory_pages,
            message_payload_bytes=config.message_payload_bytes,
        )
        started = time.perf_counter()
        operator = lower(plan, ctx)
        rows = list(operator.rows())
        elapsed = time.perf_counter() - started
        return QueryResult(
            rows=rows,
            schema=plan.schema,
            plan=plan,
            ledger=ctx.ledger,
            metrics=metrics,
            elapsed_seconds=elapsed,
        )

    def sql(self, text: str,
            config: Optional[OptimizerConfig] = None) -> QueryResult:
        """Execute one SQL statement (query or DDL/DML)."""
        statement = parse(text)
        return self._execute_statement(statement, text, config)

    def execute_script(self, text: str) -> List[QueryResult]:
        """Execute a ';'-separated script; returns one result per
        statement."""
        results = []
        for statement in parse_script(text):
            results.append(self._execute_statement(statement, text, None))
        return results

    # ------------------------------------------------------------- internals

    def _execute_statement(self, statement, original_text: str,
                           config: Optional[OptimizerConfig]) -> QueryResult:
        if isinstance(statement, (ast.SelectStmt, ast.UnionStmt)):
            block = self._bind_statement(statement)
            plan, planner = self.plan(block, config)
            return self.run_plan(plan, planner.metrics, config)
        if isinstance(statement, ast.ExplainStmt):
            block = self._bind_statement(statement.select)
            plan, planner = self.plan(block, config)
            text_rows = [(line,) for line in plan.explain().splitlines()]
            return QueryResult(
                rows=text_rows,
                schema=Schema([Column("plan", DataType.STR)]),
                plan=plan,
                metrics=planner.metrics,
                statement_kind="explain",
            )
        if isinstance(statement, ast.CreateTableStmt):
            columns = [
                (col.name, _TYPE_MAP[col.type_name])
                for col in statement.columns
            ]
            self.create_table(statement.name, columns)
            return _ddl_result("create table")
        if isinstance(statement, ast.CreateTableAsStmt):
            block = self._bind_statement(statement.query)
            plan, planner = self.plan(block, config)
            result = self.run_plan(plan, planner.metrics, config)
            table = self.catalog.create_table(statement.name,
                                              result.schema)
            table.insert_many(result.rows)
            out = _ddl_result("create table as")
            out.rows = [(len(result.rows),)]
            out.schema = Schema([Column("inserted", DataType.INT)])
            return out
        if isinstance(statement, ast.CreateViewStmt):
            self.catalog.create_view(
                statement.name, statement.select_text,
                statement.column_aliases,
            )
            return _ddl_result("create view")
        if isinstance(statement, ast.CreateIndexStmt):
            self.create_index(statement.table, statement.column,
                              statement.kind)
            return _ddl_result("create index")
        if isinstance(statement, ast.InsertStmt):
            count = self.insert(statement.table, statement.rows)
            result = _ddl_result("insert")
            result.rows = [(count,)]
            result.schema = Schema([Column("inserted", DataType.INT)])
            return result
        if isinstance(statement, ast.DropStmt):
            if statement.kind == "table":
                self.catalog.drop_table(statement.name)
            else:
                self.catalog.drop_view(statement.name)
            return _ddl_result("drop")
        raise ReproError("unsupported statement %r" % type(statement).__name__)


def _ddl_result(kind: str) -> QueryResult:
    return QueryResult(rows=[], schema=Schema(()), statement_kind=kind)
