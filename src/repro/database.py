"""The public façade: an embedded database with a cost-based optimizer
that treats magic-sets rewriting as a join method.

Typical use::

    from repro import Database

    db = Database()
    db.execute_script(open("schema.sql").read())
    db.analyze()
    result = db.sql("SELECT ... FROM Emp E, Dept D, DepAvgSal V WHERE ...")
    print(result.rows)
    print(db.explain("SELECT ..."))

Every query is parsed, bound against the catalog, optimized by the
System-R planner (with Filter Joins), lowered, and executed; the measured
cost ledger rides along on the :class:`QueryResult`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from .algebra.block import QueryBlock
from .errors import (
    ParameterError,
    ReproError,
    SchemaError,
    TransactionError,
)
from .executor.lowering import execute_collect as execute_tree
from .executor.lowering import lower
from .executor.runtime import RuntimeContext
from .expr.nodes import PARAMETER_TYPES
from .ledger import CostLedger
from .obs.adaptive import AdaptiveController
from .obs.drift import DriftRecorder, DriftReport
from .obs.log import EventLog
from .obs.metrics import MetricsRegistry, global_metrics
from .obs.querylog import QueryLog
from .obs.opttrace import OptimizerTrace, WhyNotReport
from .obs.render import render_explain_analyze
from .obs.trace import QueryTrace, TraceBuilder
from .options import OPTION_FIELDS, Options, warn_legacy_kwargs
from .optimizer.config import OptimizerConfig
from .optimizer.planner import Planner, PlannerMetrics
from .optimizer.plans import PlanNode
from .plancache import (
    DEFAULT_CAPACITY,
    PlanCache,
    PlanCacheEntry,
    cache_key,
)
from .sql import ast
from .sql.binder import Binder
from .sql.dml import compile_expr
from .sql.parser import Parser, parse
from .storage import columnar
from .storage.catalog import Catalog
from .storage.schema import Column, DataType, Schema
from .txn.manager import TransactionManager
from .udf.relation import FunctionRegistry

_TYPE_MAP = {
    "int": DataType.INT,
    "float": DataType.FLOAT,
    "str": DataType.STR,
    "bool": DataType.BOOL,
}

#: statement class -> label for the queries_total metric
_STATEMENT_KINDS = {
    "SelectStmt": "select",
    "UnionStmt": "union",
    "WithStmt": "select",
    "ExplainStmt": "explain",
    "CreateTableStmt": "create_table",
    "CreateTableAsStmt": "create_table_as",
    "CreateViewStmt": "create_view",
    "CreateIndexStmt": "create_index",
    "InsertStmt": "insert",
    "UpdateStmt": "update",
    "DeleteStmt": "delete",
    "DropStmt": "drop",
    "BeginStmt": "begin",
    "CommitStmt": "commit",
    "RollbackStmt": "rollback",
    "SavepointStmt": "savepoint",
    "ReleaseStmt": "release",
}


class ColumnNames(list):
    """The result's column names — a plain list of strings, so every
    pre-existing ``result.columns`` call site (the shell, the wire
    protocol, ``to_dicts``) keeps working — that is *also* callable:
    ``result.columns()`` returns the columnar view, a dict mapping each
    column name to its numpy value array (see
    :meth:`QueryResult.column` for the per-column form with the null
    mask)."""

    def __init__(self, names, result: "QueryResult"):
        super().__init__(names)
        self._result = result

    def __call__(self) -> dict:
        return {name: self._result.column(name)[0] for name in self}


@dataclass
class QueryResult:
    """Rows plus everything an experiment wants to know about the run."""

    rows: List[tuple]
    schema: Schema
    plan: Optional[PlanNode] = None
    ledger: CostLedger = field(default_factory=CostLedger)
    metrics: Optional[PlannerMetrics] = None
    elapsed_seconds: float = 0.0
    statement_kind: str = "select"
    # True when the plan was served by the cross-statement plan cache
    # rather than freshly optimized for this call
    cached_plan: bool = False
    # the span tree for this execution (only when traced)
    trace: Optional[QueryTrace] = None
    # the optimizer's DP search trace (only when the search_trace
    # option is on); see OptimizerTrace.render() / .why_not()
    search: Optional[OptimizerTrace] = None
    # event-log correlation id ("q1", "q2", ...) assigned while the
    # database's event log is enabled
    query_id: Optional[str] = None
    # per-column typed arrays retained from a vector-engine execution
    # (ColumnVector or plain list per column); None after iterator runs
    # — column()/columns() then build arrays from the rows on demand
    column_data: Optional[list] = None

    @property
    def columns(self) -> "ColumnNames":
        return ColumnNames(self.schema.names(), self)

    def column(self, name: str):
        """One output column as ``(values, nulls)`` numpy arrays.

        ``values`` is a typed array (int64/float64/bool; strings decode
        from their dictionary into an object array) and ``nulls`` is a
        boolean array marking NULL positions — where ``nulls`` is True
        the corresponding ``values`` slot is padding (0 for numerics,
        None for strings) and must not be read. After a vector-engine
        execution the numeric ``values`` array *is* the engine's own
        column (zero-copy); otherwise both arrays are built from the
        rows on first access. Treat them as read-only.
        """
        np = columnar.np
        if np is None:
            raise ReproError("columnar results require numpy")
        try:
            j = self.schema.index_of(name)
        except Exception:
            raise ReproError(
                "no output column %r (have: %s)"
                % (name, ", ".join(self.schema.names()) or "none"))
        vec = None
        if self.column_data is not None:
            candidate = self.column_data[j]
            if isinstance(candidate, columnar.ColumnVector):
                vec = candidate
        if vec is None:
            values = [row[j] for row in self.rows]
            vec = columnar.ColumnVector.from_values(
                self.schema.columns[j].dtype, values)
            if vec is None:  # mixed / huge / non-encodable values
                arr = np.empty(len(values), dtype=object)
                for i, value in enumerate(values):
                    arr[i] = value
                nulls = np.fromiter((v is None for v in values),
                                    dtype=bool, count=len(values))
                return arr, nulls
        nulls = (~vec.mask if vec.mask is not None
                 else np.zeros(len(vec), dtype=bool))
        if vec.dictionary is not None:
            entries = np.array(list(vec.dictionary.entries) + [None],
                               dtype=object)
            codes = vec.values
            if vec.mask is not None:
                codes = np.where(vec.mask, codes, len(entries) - 1)
            return entries[codes], nulls
        return vec.values, nulls

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[dict]:
        names = self.schema.names()
        return [dict(zip(names, row)) for row in self.rows]

    def measured_cost(self, params=None) -> float:
        return self.ledger.total(params)

    def __repr__(self) -> str:
        return "QueryResult(%d rows, cost=%.1f)" % (
            len(self.rows), self.ledger.total(),
        )


class Database:
    """An embedded relational database with Filter Join optimization."""

    def __init__(self, config: Optional[OptimizerConfig] = None,
                 plan_cache_size: int = DEFAULT_CAPACITY):
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self.config = config or OptimizerConfig()
        self.config.validate()
        self.last_planner: Optional[Planner] = None
        # execution defaults (engine, tracing, timeout, cache, memory
        # budget); per-call Options layer over these — see configure()
        self.defaults = Options()
        # observability: per-database metrics chained to the process
        # registry and the estimate-drift window
        self.metrics_registry = MetricsRegistry("db",
                                                parent=global_metrics())
        self.drift = DriftRecorder()
        # serving telemetry: per-query ring buffer + latency histograms
        # (records only when the telemetry option is on)
        self.querylog = QueryLog()
        # the drift->re-analyze feedback loop; acts only when a traced
        # query ran with an enabled Options.adaptive policy
        self.adaptive = AdaptiveController(self)
        # structured query-lifecycle log (off until .enable() is called)
        self.event_log = EventLog()
        self._current_query_id: Optional[str] = None
        # cross-statement cache of optimized plans; size 0 disables it
        self.plan_cache = PlanCache(plan_cache_size,
                                    listener=self._plan_cache_event)
        # resilience: an optional SimulatedNetwork every shipment routes
        # through (deadlines now live on self.defaults.timeout)
        self.network = None
        # transactions: statement/transaction atomicity and the WAL
        # (durability is off until configure(durability=...) enables it)
        self.txn = TransactionManager(self)
        # concurrency: statements execute one at a time under this lock
        # (re-entrant: public methods nest through sql()/atomic());
        # isolation between concurrent sessions comes from MVCC row
        # versions, never from interleaving inside a statement
        self._lock = threading.RLock()

    # ----------------------------------------------------------- options

    def configure(self, **options) -> Options:
        """Set execution defaults for this database; returns the new
        defaults. Accepts :class:`Options` field names::

            db.configure(engine="vector", use_cache=True)

        Per-call ``options=`` values layer over these; pass ``None`` to
        reset a field to the built-in behavior.
        """
        unknown = set(options) - set(OPTION_FIELDS)
        if unknown:
            raise TypeError(
                "unknown option(s): %s (valid: %s)"
                % (", ".join(sorted(unknown)), ", ".join(OPTION_FIELDS))
            )
        self.defaults = self.defaults.replace(**options)
        return self.defaults

    @contextmanager
    def session(self, **options):
        """Scope execution defaults to a ``with`` block::

            with db.session(engine="vector", trace=True):
                db.sql(...)

        Restores the previous defaults on exit, even on error.
        """
        saved = self.defaults
        self.configure(**options)
        try:
            yield self
        finally:
            self.defaults = saved

    def _resolve_options(self, options: Optional[Options]) -> Options:
        """BUILTIN <- database defaults <- per-call options."""
        return self.defaults.merged(options).resolved()

    # ---------------------------------------------------------- sessions

    def new_session(self, name: Optional[str] = None) -> "Session":
        """Open an independent session (connection): its own
        transaction state over the shared catalog, plan cache, and
        metrics. Safe to use from another thread — statements from all
        sessions execute one at a time under the database lock, with
        MVCC snapshots isolating concurrent transactions::

            s1, s2 = db.new_session(), db.new_session()
            s1.sql("BEGIN")
            s1.sql("INSERT INTO t VALUES (1)")
            s2.sql("SELECT * FROM t")   # does not see s1's row yet
            s1.sql("COMMIT")

        Close with :meth:`Session.close` (or use as a context manager);
        closing rolls back any open transaction, like a disconnect.
        """
        with self._lock:
            return Session(self, self.txn.new_session(name))

    # Pre-Options attributes, kept as views over self.defaults so
    # existing ``db.tracing = True`` / ``db.default_timeout = 2.0``
    # call sites keep their exact behavior.

    @property
    def tracing(self) -> bool:
        return bool(self.defaults.trace)

    @tracing.setter
    def tracing(self, value: bool) -> None:
        self.defaults = self.defaults.replace(trace=bool(value))

    @property
    def default_timeout(self) -> Optional[float]:
        return self.defaults.timeout

    @default_timeout.setter
    def default_timeout(self, value: Optional[float]) -> None:
        self.defaults = self.defaults.replace(timeout=value)

    # ---------------------------------------------------------- observability

    def _plan_cache_event(self, event: str, count: int) -> None:
        self.metrics_registry.inc("plan_cache_events_total", count,
                                  label=event)

    def metrics(self) -> dict:
        """A snapshot of every recorded metric, plus network counters
        when a simulated network is installed."""
        data = self.metrics_registry.as_dict()
        if self.network is not None:
            data["network"] = self.network.stats.as_dict()
        wal = self.txn._wal  # peek: metrics must not open a WAL lazily
        if wal is not None:
            data["wal"] = wal.stats()
        if self.querylog.recorded:
            data["latency"] = self.querylog.latency_summary()
        return data

    def drift_report(self) -> DriftReport:
        """Estimate drift over the recent traced-query window, worst
        operators first (see ``docs/observability.md``)."""
        return self.drift.report()

    def _record_trace(self, result: "QueryResult") -> None:
        trace = result.trace
        self.drift.record_trace(trace)
        registry = self.metrics_registry
        registry.observe("query_qerror", trace.max_q_error)
        for span in trace.operator_spans():
            if span.executions:
                registry.inc("operator_rows_total", span.actual_rows,
                             label=span.node_type)

    # ----------------------------------------------------------------- DDL

    def create_table(self, name: str,
                     columns: Union[Schema, Sequence, None] = None, *,
                     schema: Union[Schema, Sequence, None] = None,
                     rows=None):
        """Create a table with a typed schema.

        The schema comes from either positional ``columns`` or the
        ``schema=`` keyword (they are aliases; passing both raises) and
        may be a :class:`Schema`, ``(name, DataType)`` pairs, or — the
        untyped legacy spelling — plain column-name strings, in which
        case dtypes are inferred from ``rows`` (:meth:`Schema.inferred`
        backfill; bools before ints, INT+FLOAT widens to FLOAT).
        Dtype-violating inserts against the resulting table raise
        :class:`~repro.errors.SchemaError`. ``rows``, when given, are
        inserted after creation::

            db.create_table("emp", schema=Schema.of(
                ("eno", DataType.INT), ("name", DataType.STR)))
            db.create_table("legacy", ["a", "b"],
                            rows=[(1, "x"), (2, None)])
        """
        if (columns is None) == (schema is None):
            raise TypeError(
                "create_table() takes a schema either positionally or "
                "as schema=, not both (and not neither)")
        spec = columns if columns is not None else schema
        if isinstance(spec, Schema):
            resolved = spec
        else:
            spec = list(spec)
            if all(isinstance(item, str) for item in spec) and spec:
                if rows is None:
                    raise SchemaError(
                        "untyped column names require rows= to infer "
                        "dtypes from (or declare (name, DataType) "
                        "pairs)")
                rows = [tuple(row) for row in rows]
                resolved = Schema.inferred(spec, rows)
            else:
                resolved = Schema(
                    Column(col, dtype) for col, dtype in spec)
        with self._lock, self.txn.atomic():
            table = self.txn.do_create_table(name, resolved)
            if rows:
                self.txn.do_insert(name, rows)
            return table

    def drop_table(self, name: str) -> None:
        with self._lock, self.txn.atomic():
            self.txn.do_drop_table(name)

    def create_view(self, name: str, sql_text: str,
                    column_aliases: Optional[Sequence[str]] = None,
                    recursive: bool = False):
        """Register a view; its body is bound lazily at query time.

        ``recursive=True`` declares a recursive view (``CREATE RECURSIVE
        VIEW``): its body may reference the view's own name and is
        evaluated by semi-naive fixpoint (see docs/recursion.md).
        """
        statement = parse(sql_text)  # validate eagerly
        if not isinstance(statement, (ast.SelectStmt, ast.UnionStmt)):
            raise ReproError("a view must be defined by a query")
        with self._lock, self.txn.atomic():
            return self.txn.do_create_view(name, sql_text, column_aliases,
                                           recursive=recursive)

    def drop_view(self, name: str) -> None:
        with self._lock, self.txn.atomic():
            self.txn.do_drop_view(name)

    def create_index(self, table: str, column: str,
                     kind: str = "hash") -> None:
        with self._lock, self.txn.atomic():
            self.txn.do_create_index(table, column, kind)

    def insert(self, table: str, rows) -> int:
        # data changes shift row counts/stats under cached plans; the
        # operation bumps the catalog version so they are re-optimized
        # rather than run with stale estimates
        with self._lock, self.txn.atomic():
            return self.txn.do_insert(table, rows)

    def update(self, table: str, assignments, where: Optional[str] = None
               ) -> int:
        """Programmatic UPDATE: ``assignments`` maps column names to SQL
        value expressions (strings); ``where`` is an optional SQL
        predicate. Equivalent to the UPDATE statement."""
        where_sql = " WHERE %s" % where if where else ""
        sets = ", ".join("%s = %s" % (col, expr)
                         for col, expr in dict(assignments).items())
        return self.sql("UPDATE %s SET %s%s"
                        % (table, sets, where_sql)).rows[0][0]

    def delete(self, table: str, where: Optional[str] = None) -> int:
        """Programmatic DELETE with an optional SQL predicate."""
        where_sql = " WHERE %s" % where if where else ""
        return self.sql("DELETE FROM %s%s"
                        % (table, where_sql)).rows[0][0]

    def delete_rows(self, table: str, rows) -> int:
        """Delete the first visible occurrence of each row value (the
        WAL-replay form of DELETE/UPDATE; see
        :meth:`TransactionManager.do_delete_values`)."""
        with self._lock, self.txn.atomic():
            return self.txn.do_delete_values(table, rows)

    def analyze(self, table: Optional[str] = None) -> None:
        """(Re)collect optimizer statistics."""
        with self._lock, self.txn.atomic():
            self.txn.do_analyze(table)

    def vacuum(self) -> dict:
        """Compact away dead row versions in every table; returns
        ``{table: versions_reclaimed}``. Refused while any session has
        an open transaction."""
        with self._lock:
            return self.txn.vacuum()

    # ----------------------------------------------------------- durability

    def checkpoint(self) -> dict:
        """Snapshot the full logical state into the WAL and truncate it
        (durability must be on; refused inside a transaction)."""
        with self._lock:
            return self.txn.checkpoint()

    def attach_wal(self, wal) -> None:
        """Install a specific :class:`~repro.txn.wal.WriteAheadLog`
        (tests, crash harnesses, resuming after recovery)."""
        self.txn.attach_wal(wal)

    # --------------------------------------------------------------- binding

    def binder(self) -> Binder:
        return Binder(self.catalog, self.functions.binder_map())

    def bind(self, sql_text: str):
        """Parse and bind a SELECT (or UNION chain) into its canonical
        bound form."""
        return self._bind_statement(parse(sql_text))

    def _bind_statement(self, statement):
        binder = self.binder()
        Binder.check_bindable(statement)
        if isinstance(statement, ast.WithStmt):
            return binder.bind_with(statement)
        if isinstance(statement, ast.UnionStmt):
            return binder.bind_union(statement)
        if isinstance(statement, ast.SelectStmt):
            return binder.bind(statement)
        raise ReproError("expected a query, got %r"
                         % type(statement).__name__)

    # -------------------------------------------------------------- planning

    def plan(self, sql_or_block: Union[str, QueryBlock],
             config: Optional[OptimizerConfig] = None,
             search: Optional[OptimizerTrace] = None
             ) -> Tuple[PlanNode, Planner]:
        """Optimize a query; returns the plan and the planner (for its
        metrics and costers). Pass an :class:`OptimizerTrace` as
        ``search`` to record the full DP search; the trace is finalized
        against the winning plan before returning."""
        block = (
            self.bind(sql_or_block) if isinstance(sql_or_block, str)
            else sql_or_block
        )
        planner = Planner(self.catalog, config or self.config,
                          trace=search)
        plan = planner.plan(block)
        if search is not None:
            search.finalize(plan)
        self.last_planner = planner
        self._record_planner_metrics(planner)
        return plan, planner

    def _record_planner_metrics(self, planner: Planner) -> None:
        """Fold one optimization run's counters into the registry so
        the search shows up in db.metrics() / the shell's ``\\metrics``."""
        registry = self.metrics_registry
        m = planner.metrics
        registry.inc("planner_plans_considered_total", m.plans_considered)
        registry.inc("planner_memo_entries_total", m.dp_entries)
        registry.inc("planner_nested_optimizations_total",
                     m.nested_optimizations)
        for method, count in m.candidates_by_method.items():
            registry.inc("planner_candidates_total", count, label=method)
        for method, count in m.pruned_by_method.items():
            registry.inc("planner_candidates_pruned_total", count,
                         label=method)
        saved = sum(
            max(0, coster.estimate_calls - coster.nested_optimizations)
            for coster in planner._costers.values()
        )
        if saved:
            registry.inc("planner_parametric_plans_saved_total", saved)

    def explain(self, sql_text: str,
                config: Optional[OptimizerConfig] = None,
                mode: str = "plan",
                why_not: Optional[str] = None) -> str:
        """The chosen plan as text.

        ``mode="search"`` appends the optimizer's DP search trace: the
        memo lattice level by level with every candidate's cost delta
        and pruning verdict, the parametric-coster anchors, and the
        join methods that never produced a candidate. ``why_not`` names
        a join method (e.g. ``"filter_join"``) and appends a report on
        why the chosen plan does not use it.
        """
        if mode not in ("plan", "search"):
            raise ReproError(
                'explain() mode must be "plan" or "search", got %r'
                % (mode,)
            )
        if mode == "plan" and why_not is None:
            plan, _planner = self.plan(sql_text, config)
            return plan.explain()
        search = OptimizerTrace()
        plan, _planner = self.plan(sql_text, config, search=search)
        sections = [plan.explain()]
        if mode == "search":
            sections.append(search.render())
        if why_not is not None:
            sections.append(search.why_not(why_not).render())
        return "\n\n".join(sections)

    def why_not(self, sql_text: str, method: str,
                config: Optional[OptimizerConfig] = None) -> WhyNotReport:
        """Why the chosen plan does not use ``method`` ("filter_join",
        "bloom", "hash", ...): the nearest rejected candidate, the
        rival that beat it, and the exact cost-ledger terms that lost
        it. Returns a :class:`WhyNotReport`; print ``.render()``."""
        search = OptimizerTrace()
        self.plan(sql_text, config, search=search)
        return search.why_not(method)

    def explain_analyze(self, sql_text: str,
                        config: Optional[OptimizerConfig] = None,
                        search: bool = False) -> str:
        """EXPLAIN plus execution: the plan annotated with per-operator
        actual row counts (from the query's span tree), followed by the
        measured cost ledger and the measured/est cost q-error.
        ``search=True`` also attaches an optimizer search trace, adding
        a candidates-vs-memo summary line to the report."""
        config = config or self.config
        parse_started = time.perf_counter()
        statement = parse(sql_text)
        parse_seconds = time.perf_counter() - parse_started
        if not isinstance(statement, (ast.SelectStmt, ast.UnionStmt,
                                      ast.WithStmt)):
            raise ReproError(
                "EXPLAIN ANALYZE requires a query, got %s"
                % type(statement).__name__
            )
        opts = Options(trace=True, search_trace=True if search else None)
        result = self._execute_statement(statement, sql_text, config,
                                         options=opts,
                                         parse_seconds=parse_seconds)
        return render_explain_analyze(result, config.cost_params)

    # ------------------------------------------------------- prepared plans

    def prepare(self, text: str,
                config: Optional[OptimizerConfig] = None
                ) -> "PreparedStatement":
        """Parse (and for queries, optimize) one statement with optional
        ``?`` placeholders; returns a reusable handle.

        Queries are planned immediately through the versioned plan
        cache, so ``db.prepare(sql).execute(params)`` called repeatedly
        pays for parse/bind/optimize once. The handle re-validates the
        catalog version on every execution — DDL or statistics changes
        transparently trigger a re-plan instead of running a stale plan.
        """
        parser = Parser(text)
        statement = parser.parse_statement()
        return PreparedStatement(self, text, statement,
                                 parser.param_count, config)

    def cache_stats(self) -> dict:
        """Plan cache counters plus the current catalog version."""
        stats = self.plan_cache.stats()
        stats["catalog_version"] = self.catalog.version
        return stats

    def _plan_entry(self, text: str, statement,
                    config: Optional[OptimizerConfig]
                    ) -> Tuple[PlanCacheEntry, bool]:
        """The cached plan for a query statement, planning on a miss.

        Returns ``(entry, hit)``. The entry's catalog version is
        captured *after* planning so that lazy statistics builds
        triggered by the planner itself do not invalidate the new entry.
        """
        config = config or self.config
        key = cache_key(text, config)
        entry = self.plan_cache.lookup(key, self.catalog.version)
        if entry is not None:
            return entry, True
        binder = self.binder()
        if isinstance(statement, ast.WithStmt):
            block = binder.bind_with(statement)
        elif isinstance(statement, ast.UnionStmt):
            block = binder.bind_union(statement)
        else:
            block = binder.bind(statement)
        plan, planner = self.plan(block, config)
        entry = PlanCacheEntry(
            key=key,
            plan=plan,
            metrics=planner.metrics,
            parameters=binder.parameter_list(),
            catalog_version=self.catalog.version,
        )
        self.plan_cache.store(entry)
        return entry, False

    # ------------------------------------------------------------- execution

    def run_plan(self, plan: PlanNode,
                 metrics: Optional[PlannerMetrics] = None,
                 config: Optional[OptimizerConfig] = None,
                 timeout: Optional[float] = None,
                 memory_budget_bytes: Optional[float] = None,
                 trace: Optional[TraceBuilder] = None,
                 engine: Optional[str] = None,
                 max_fixpoint_iterations: Optional[int] = None
                 ) -> QueryResult:
        """Execute a physical plan and collect rows + measured costs.

        ``config`` supplies the runtime environment (memory, cost
        weights); it should match the config the plan was optimized
        under, defaulting to the database-wide config. ``timeout`` is a
        per-call deadline in seconds (defaulting to
        ``self.default_timeout``); ``memory_budget_bytes`` caps operator
        working memory (defaulting to the config's budget). ``trace``
        is an optional :class:`TraceBuilder` to record this execution
        into; the finished span tree rides on ``result.trace`` and
        feeds the drift recorder and metrics registry. ``engine``
        selects the execution protocol (``"iterator"`` or ``"vector"``,
        defaulting to the database's configured engine); either way the
        same lowered operator tree runs and charges the same ledger.
        """
        config = config or self.config
        deadline = timeout if timeout is not None else self.default_timeout
        budget = (memory_budget_bytes if memory_budget_bytes is not None
                  else config.memory_budget_bytes)
        if engine is None:
            engine = self.defaults.resolved().engine
        if max_fixpoint_iterations is None:
            max_fixpoint_iterations = \
                self.defaults.resolved().max_fixpoint_iterations
        ctx = RuntimeContext(
            params=config.cost_params,
            memory_pages=config.memory_pages,
            message_payload_bytes=config.message_payload_bytes,
            network=self.network,
            deadline_seconds=deadline,
            memory_budget_bytes=budget,
            max_fixpoint_iterations=max_fixpoint_iterations,
        )
        started = time.perf_counter()
        with self._lock:
            if trace is None:
                operator = lower(plan, ctx)
                rows, column_data = execute_tree(operator, engine)
                elapsed = time.perf_counter() - started
                ledger = ctx.ledger
            else:
                trace.install(ctx)
                with trace.phase("lower"):
                    operator = lower(plan, ctx)
                with trace.phase("execute"):
                    rows, column_data = execute_tree(operator, engine)
                elapsed = time.perf_counter() - started
                # a plain snapshot, not the tee subclass, so ledger
                # equality against untraced runs behaves normally
                ledger = ctx.ledger.snapshot()
        result = QueryResult(
            rows=rows,
            schema=plan.schema,
            plan=plan,
            ledger=ledger,
            metrics=metrics,
            elapsed_seconds=elapsed,
            column_data=column_data,
        )
        if trace is not None:
            result.trace = trace.finish(plan)
            self._record_trace(result)
        return result

    def _legacy_options(self, kwargs: dict) -> Optional[Options]:
        """Fold non-None legacy keyword arguments into an Options value,
        emitting the deprecation warning once per call site."""
        supplied = {k: v for k, v in kwargs.items() if v is not None}
        if not supplied:
            return None
        # stacklevel 4: warn at the caller of the public method (this
        # helper -> sql/execute_script -> user code)
        warn_legacy_kwargs(supplied, stacklevel=4)
        return Options(**supplied)

    def sql(self, text: str,
            config: Optional[OptimizerConfig] = None,
            options: Optional[Options] = None, *,
            use_cache: Optional[bool] = None,
            timeout: Optional[float] = None,
            memory_budget_bytes: Optional[float] = None,
            trace: Optional[bool] = None) -> QueryResult:
        """Execute one SQL statement (query or DDL/DML).

        ``options`` carries the per-call execution knobs — engine
        selection, tracing, the plan cache, timeouts, and memory
        budgets (see :class:`repro.Options`); anything unset inherits
        the database defaults installed with :meth:`configure` /
        :meth:`session`. The individual keywords (``use_cache=``,
        ``timeout=``, ``memory_budget_bytes=``, ``trace=``) are the
        deprecated pre-Options spelling: they still bind, layered under
        ``options``, and emit a :class:`DeprecationWarning` once per
        call site.
        """
        legacy = self._legacy_options({
            "use_cache": use_cache, "timeout": timeout,
            "memory_budget_bytes": memory_budget_bytes, "trace": trace,
        })
        effective = self.defaults.merged(legacy).merged(options).resolved()
        parse_started = time.perf_counter() if effective.trace else 0.0
        statement = parse(text)
        parse_seconds = (time.perf_counter() - parse_started
                         if effective.trace else 0.0)
        return self._execute_statement(statement, text, config,
                                       options=effective,
                                       parse_seconds=parse_seconds)

    def execute_script(self, text: str,
                       options: Optional[Options] = None, *,
                       use_cache: Optional[bool] = None,
                       timeout: Optional[float] = None
                       ) -> List[QueryResult]:
        """Execute a ';'-separated script; returns one result per
        statement.

        The whole script is parsed before anything runs, so a syntax
        error anywhere — even in the last statement — means no
        statement executes. At execution time the contract is
        statement-level atomicity: each statement either takes full
        effect or none. When statement *k* of *n* raises, the effects
        of statements 1..k-1 persist, statement *k* leaves no partial
        state behind, and statements k+1..n never run. There is no
        script-level rollback. ``options`` applies per statement, not
        to the script as a whole (``use_cache=`` / ``timeout=`` are the
        deprecated spelling).
        """
        legacy = self._legacy_options({
            "use_cache": use_cache, "timeout": timeout,
        })
        effective = self.defaults.merged(legacy).merged(options).resolved()
        results = []
        for statement, span in Parser(text).parse_script_spans():
            results.append(
                self._execute_statement(statement, span, None,
                                        options=effective)
            )
        return results

    # ------------------------------------------------------------- internals

    def _execute_statement(self, statement, original_text: str,
                           config: Optional[OptimizerConfig],
                           options: Optional[Options] = None,
                           parse_seconds: float = 0.0
                           ) -> QueryResult:
        with self._lock:
            return self._execute_locked(statement, original_text, config,
                                        options, parse_seconds)

    def _execute_locked(self, statement, original_text: str,
                        config: Optional[OptimizerConfig],
                        options: Optional[Options],
                        parse_seconds: float) -> QueryResult:
        opts = self.defaults.merged(options).resolved()
        kind = _STATEMENT_KINDS.get(type(statement).__name__, "other")
        self.metrics_registry.inc("queries_total", label=kind)
        log = self.event_log
        qid = log.new_query_id() if log.enabled else None
        self._current_query_id = qid
        if qid is not None:
            log.emit("query_start", query_id=qid, kind=kind,
                     statement=" ".join(original_text.split())[:200],
                     session=self.txn.session.name)
            log.emit("parse", query_id=qid,
                     seconds=round(parse_seconds, 6))
        telemetry = bool(opts.telemetry)
        started = time.perf_counter() if telemetry else 0.0
        try:
            with self.txn.statement_snapshot():
                result = self._dispatch_statement(statement,
                                                  original_text,
                                                  config, opts,
                                                  parse_seconds, qid)
        except Exception as exc:
            self.txn.note_error(exc)
            if qid is not None:
                log.emit("error", query_id=qid,
                         error=type(exc).__name__,
                         message=str(exc)[:200])
                log.emit("query_end", query_id=qid, status="error")
            raise
        except BaseException as exc:
            # Ctrl-C and friends: atomic() already undid the statement;
            # the open explicit transaction still becomes aborted
            self.txn.note_error(exc)
            raise
        result.query_id = qid
        if telemetry:
            self._record_telemetry(result, original_text, kind, opts,
                                   time.perf_counter() - started)
        if qid is not None:
            log.emit("query_end", query_id=qid, status="ok",
                     rows=len(result.rows))
        # the feedback loop: a traced query just fed the drift recorder;
        # let the adaptive policy act on it (outside the statement
        # snapshot, so a triggered re-analyze is its own transaction)
        policy = opts.adaptive
        if result.trace is not None and policy is not None \
                and policy.enabled:
            self.adaptive.observe(policy, result)
        return result

    def _record_telemetry(self, result: QueryResult, original_text: str,
                          kind: str, opts: Options,
                          seconds: float) -> None:
        """One QueryLog entry for a completed statement; slow offenders
        carry the full plan text and (when traced) the span tree."""
        slow = seconds >= opts.slow_query_seconds
        plan_text = None
        trace_dict = None
        if slow:
            if result.plan is not None:
                plan_text = result.plan.explain()
            if result.trace is not None:
                trace_dict = result.trace.to_dict()
            self.metrics_registry.inc("slow_queries_total", label=kind)
        self.querylog.record(
            statement=" ".join(original_text.split())[:500],
            kind=kind,
            seconds=seconds,
            rows=len(result.rows),
            cost=result.ledger.total(),
            session=self.txn.session.name,
            cached_plan=result.cached_plan,
            slow=slow,
            plan=plan_text,
            trace=trace_dict,
        )

    def _emit_execute(self, qid: Optional[str],
                      result: QueryResult) -> None:
        if qid is not None:
            self.event_log.emit(
                "execute", query_id=qid, rows=len(result.rows),
                seconds=round(result.elapsed_seconds, 6),
                measured_cost=round(result.ledger.total(), 3),
            )

    def _dispatch_statement(self, statement, original_text: str,
                            config: Optional[OptimizerConfig],
                            opts: Options, parse_seconds: float,
                            qid: Optional[str]) -> QueryResult:
        log = self.event_log
        if isinstance(statement, ast.TXN_STATEMENTS):
            return self._txn_statement(statement, opts)
        # an aborted explicit transaction refuses everything except
        # COMMIT/ROLLBACK (handled above) until it is rolled back
        self.txn.check_usable()
        if isinstance(statement, (ast.SelectStmt, ast.UnionStmt,
                                  ast.WithStmt)):
            builder = None
            if opts.trace:
                builder = TraceBuilder(original_text)
                builder.add_phase("parse", parse_seconds)
            # a search trace documents *this* optimization run, so the
            # plan cache is bypassed while it is on
            search = OptimizerTrace() if opts.search_trace else None
            if opts.use_cache and search is None:
                lookup_started = time.perf_counter()
                if builder is None:
                    entry, hit = self._plan_entry(original_text,
                                                  statement, config)
                else:
                    # the cache path folds bind into optimize on a miss
                    with builder.phase("optimize") as span:
                        entry, hit = self._plan_entry(original_text,
                                                      statement, config)
                        span.extras["plan_cache"] = (
                            "hit" if hit else "miss")
                if qid is not None:
                    if not hit:
                        # a miss planned from scratch inside the lookup
                        log.emit(
                            "optimize", query_id=qid,
                            seconds=round(
                                time.perf_counter() - lookup_started, 6),
                            plans_considered=entry.metrics.plans_considered,
                            memo_entries=entry.metrics.dp_entries,
                        )
                    log.emit("plan_cache", query_id=qid,
                             outcome="hit" if hit else "miss")
                if entry.parameters:
                    raise ParameterError(
                        "statement has %d unbound parameter(s); use "
                        "db.prepare(...).execute(values)"
                        % len(entry.parameters)
                    )
                entry.executions += 1
                result = self.run_plan(
                    entry.plan, entry.metrics, config,
                    opts.timeout, opts.memory_budget_bytes,
                    trace=builder, engine=opts.engine,
                    max_fixpoint_iterations=opts.max_fixpoint_iterations,
                )
                result.cached_plan = hit
                self._emit_execute(qid, result)
                return result
            optimize_started = time.perf_counter()
            if builder is None:
                block = self._bind_statement(statement)
                plan, planner = self.plan(block, config, search=search)
            else:
                with builder.phase("bind"):
                    block = self._bind_statement(statement)
                with builder.phase("optimize"):
                    plan, planner = self.plan(block, config,
                                              search=search)
            if qid is not None:
                log.emit(
                    "optimize", query_id=qid,
                    seconds=round(
                        time.perf_counter() - optimize_started, 6),
                    plans_considered=planner.metrics.plans_considered,
                    memo_entries=planner.metrics.dp_entries,
                )
            result = self.run_plan(
                plan, planner.metrics, config,
                opts.timeout, opts.memory_budget_bytes,
                trace=builder, engine=opts.engine,
                max_fixpoint_iterations=opts.max_fixpoint_iterations,
            )
            result.search = search
            self._emit_execute(qid, result)
            return result
        if isinstance(statement, ast.ExplainStmt):
            block = self._bind_statement(statement.select)
            plan, planner = self.plan(block, config)
            text_rows = [(line,) for line in plan.explain().splitlines()]
            return QueryResult(
                rows=text_rows,
                schema=Schema([Column("plan", DataType.STR)]),
                plan=plan,
                metrics=planner.metrics,
                statement_kind="explain",
            )
        if isinstance(statement, ast.CreateTableStmt):
            columns = [
                (col.name, _TYPE_MAP[col.type_name])
                for col in statement.columns
            ]
            self.create_table(statement.name, columns)
            return _ddl_result("create table")
        if isinstance(statement, ast.CreateTableAsStmt):
            # run the query first (outside the mutation scope: a failing
            # query leaves nothing behind), then create+fill atomically
            block = self._bind_statement(statement.query)
            plan, planner = self.plan(block, config)
            result = self.run_plan(plan, planner.metrics, config)
            with self.txn.atomic():
                self.txn.do_create_table(statement.name, result.schema)
                if result.rows:
                    self.txn.do_insert(statement.name, result.rows)
            out = _ddl_result("create table as")
            out.rows = [(len(result.rows),)]
            out.schema = Schema([Column("inserted", DataType.INT)])
            return out
        if isinstance(statement, ast.CreateViewStmt):
            self.create_view(
                statement.name, statement.select_text,
                statement.column_aliases,
                recursive=statement.recursive,
            )
            return _ddl_result("create view")
        if isinstance(statement, ast.CreateIndexStmt):
            self.create_index(statement.table, statement.column,
                              statement.kind)
            return _ddl_result("create index")
        if isinstance(statement, ast.InsertStmt):
            count = self.insert(statement.table, statement.rows)
            result = _ddl_result("insert")
            result.rows = [(count,)]
            result.schema = Schema([Column("inserted", DataType.INT)])
            return result
        if isinstance(statement, (ast.UpdateStmt, ast.DeleteStmt)):
            return self._dml_statement(statement, qid)
        if isinstance(statement, ast.DropStmt):
            if statement.kind == "table":
                self.drop_table(statement.name)
            else:
                self.drop_view(statement.name)
            return _ddl_result("drop")
        raise ReproError("unsupported statement %r" % type(statement).__name__)

    def _dml_statement(self, statement, qid: Optional[str]
                       ) -> QueryResult:
        """UPDATE/DELETE: compiled against the target table's schema
        and executed by a direct visible-row scan (no planner)."""
        table = self.catalog.table(statement.table)
        schema = table.schema
        where = (compile_expr(statement.where, schema, statement.table)
                 if statement.where is not None else None)
        if isinstance(statement, ast.UpdateStmt):
            assignments = [
                (column, compile_expr(expr, schema, statement.table))
                for column, expr in statement.assignments
            ]
            with self.txn.atomic():
                count = self.txn.do_update(statement.table,
                                           assignments, where)
            kind, column = "update", "updated"
        else:
            with self.txn.atomic():
                count = self.txn.do_delete(statement.table, where)
            kind, column = "delete", "deleted"
        if qid is not None:
            self.event_log.emit("execute", query_id=qid, rows=count)
        result = _ddl_result(kind)
        result.rows = [(count,)]
        result.schema = Schema([Column(column, DataType.INT)])
        return result

    def _txn_statement(self, statement, opts: Options) -> QueryResult:
        """BEGIN/COMMIT/ROLLBACK/SAVEPOINT/RELEASE. The result's
        ``statement_kind`` reports what actually happened — COMMIT of an
        aborted transaction rolls back and says so."""
        txn = self.txn
        if isinstance(statement, ast.BeginStmt):
            txn.check_usable()
            txn.begin(isolation=opts.isolation)
            return _ddl_result("begin")
        if isinstance(statement, ast.CommitStmt):
            return _ddl_result(txn.commit())
        if isinstance(statement, ast.RollbackStmt):
            txn.rollback(statement.savepoint)
            return _ddl_result("rollback")
        if isinstance(statement, ast.SavepointStmt):
            txn.check_usable()
            txn.savepoint(statement.name)
            return _ddl_result("savepoint")
        txn.check_usable()
        txn.release(statement.name)
        return _ddl_result("release")


class Session:
    """One connection's view of a shared :class:`Database`.

    A session owns nothing but its transaction state
    (BEGIN/COMMIT/ROLLBACK/SAVEPOINT are per-session); the catalog,
    plan cache, metrics registry, and event log are shared with every
    other session. Statements execute one at a time under the database
    lock — concurrency between sessions is isolation (MVCC snapshots),
    not parallelism. Thread-safe: each server connection or worker
    thread gets its own session.
    """

    def __init__(self, db: Database, state):
        self._db = db
        self._state = state
        self.closed = False

    @property
    def name(self) -> str:
        return self._state.name

    @property
    def in_transaction(self) -> bool:
        return self._state.txn is not None

    def sql(self, text: str, **kwargs) -> QueryResult:
        """Execute one statement as this session (see
        :meth:`Database.sql`)."""
        return self._run(self._db.sql, text, **kwargs)

    def execute_script(self, text: str, **kwargs) -> List[QueryResult]:
        return self._run(self._db.execute_script, text, **kwargs)

    def _run(self, method, *args, **kwargs):
        if self.closed:
            raise TransactionError(
                "session %r is closed" % self.name)
        db = self._db
        with db._lock:
            previous = db.txn.session
            db.txn.bind(self._state)
            try:
                return method(*args, **kwargs)
            finally:
                db.txn.bind(previous)

    def close(self) -> None:
        """Roll back any open transaction and release the session
        (idempotent)."""
        if self.closed:
            return
        with self._db._lock:
            self._db.txn.close_session(self._state)
        self.closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else (
            "in txn" if self.in_transaction else "idle")
        return "Session(%r, %s)" % (self.name, state)


class PreparedStatement:
    """A reusable handle over one parsed statement with ``?`` params.

    Queries execute through the database's versioned plan cache: the
    first execution (or :meth:`Database.prepare` itself) optimizes and
    caches the plan; later executions bind parameter values onto the
    cached plan and run it directly. If the catalog version moved (DDL,
    data change, ANALYZE, placement change), the stale plan is discarded
    and the query is transparently re-optimized.

    INSERT statements may also carry ``?`` placeholders; they are
    substituted per execution (there is no plan to cache).
    """

    def __init__(self, db: Database, text: str, statement,
                 param_count: int,
                 config: Optional[OptimizerConfig] = None):
        self.db = db
        self.text = text
        self.statement = statement
        self.param_count = param_count
        self.config = config
        self.is_query = isinstance(
            statement, (ast.SelectStmt, ast.UnionStmt, ast.WithStmt)
        )
        if param_count and not self.is_query and not isinstance(
            statement, ast.InsertStmt
        ):
            raise ParameterError(
                "?-parameters are only supported in queries and INSERT "
                "VALUES, not %s" % type(statement).__name__
            )
        if self.is_query:
            # plan (or find) eagerly so prepare-time errors surface here
            self.db._plan_entry(self.text, self.statement, self.config)

    def __repr__(self) -> str:
        return "PreparedStatement(%r, %d param(s))" % (
            self.text.strip().splitlines()[0][:60], self.param_count,
        )

    @property
    def plan(self) -> Optional[PlanNode]:
        """The currently-cached plan for this query (None for DDL/DML,
        or if the cache entry was evicted)."""
        if not self.is_query:
            return None
        key = cache_key(self.text, self.config or self.db.config)
        entry = self.db.plan_cache.peek(key)
        return entry.plan if entry is not None else None

    def execute(self, params: Sequence = (),
                timeout: Optional[float] = None,
                options: Optional[Options] = None) -> QueryResult:
        """Bind ``params`` (one value per ``?``, in order) and run.

        ``options`` layers over the database defaults (engine, timeout,
        memory budget); ``timeout`` is a shorthand that wins over both.
        """
        params = tuple(params)
        if len(params) != self.param_count:
            raise ParameterError(
                "statement takes %d parameter(s), got %d"
                % (self.param_count, len(params))
            )
        opts = self.db.defaults.merged(options).resolved()
        if timeout is not None:
            opts = opts.replace(timeout=timeout)
        if self.is_query:
            entry, hit = self.db._plan_entry(self.text, self.statement,
                                             self.config)
            for node, value in zip(entry.parameters, params):
                node.bind(value)
            entry.executions += 1
            result = self.db.run_plan(
                entry.plan, entry.metrics,
                self.config, opts.timeout,
                opts.memory_budget_bytes,
                engine=opts.engine,
                max_fixpoint_iterations=opts.max_fixpoint_iterations,
            )
            result.cached_plan = hit
            return result
        statement = self._substituted(params) if params else self.statement
        return self.db._execute_statement(statement, self.text,
                                          self.config, options=options)

    def _substituted(self, params: tuple) -> ast.InsertStmt:
        """An InsertStmt copy with every placeholder replaced by its
        bound value (validated against the supported parameter types)."""
        rows = []
        for row in self.statement.rows:
            out = []
            for value in row:
                if isinstance(value, ast.AstParameter):
                    bound = params[value.index]
                    if not isinstance(bound, PARAMETER_TYPES):
                        raise ParameterError(
                            "parameter ?%d: unsupported value type %s"
                            % (value.index + 1, type(bound).__name__)
                        )
                    out.append(bound)
                else:
                    out.append(value)
            rows.append(out)
        return ast.InsertStmt(self.statement.table, rows)


def _ddl_result(kind: str) -> QueryResult:
    return QueryResult(rows=[], schema=Schema(()), statement_kind=kind)
