"""Query blocks: the canonical bound form of a single SELECT.

A :class:`QueryBlock` is what the SQL binder produces and the optimizer
consumes: a FROM list of :class:`RelationRef` entries, a conjunctive WHERE
predicate over alias-qualified columns, optional GROUP BY / aggregates /
HAVING, a final projection, and optional DISTINCT / ORDER BY.

Canonical-form rules (enforced by :meth:`validate`):

- ``predicates`` is a flat list of conjuncts over the *combined schema*
  (the concatenation of every relation's qualified output schema).
- In a grouped block, ``select_items`` reference only the group output
  schema (group columns by their output names, aggregates by alias).
- In an ungrouped block, ``select_items`` are arbitrary scalar
  expressions over the combined schema.

Views are query blocks too; :class:`VirtualRelation` wraps one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import BindError
from ..expr.aggregates import AggregateSpec
from ..expr.nodes import ColumnRef, Expr, conjoin
from ..storage.schema import Column, Schema
from .relations import RelationRef


def _output_name(expr: Expr, alias: Optional[str]) -> str:
    """The output column name for a select item."""
    if alias:
        return alias
    if isinstance(expr, ColumnRef):
        # strip the qualifier: E.did -> did
        return expr.name.split(".")[-1]
    raise BindError(
        "select item %s needs an explicit alias" % expr.display()
    )


@dataclass
class SelectItem:
    """One output column: an expression and its output name."""

    expr: Expr
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        return _output_name(self.expr, self.alias)

    def display(self) -> str:
        rendered = self.expr.display()
        if self.alias and rendered != self.alias:
            return "%s AS %s" % (rendered, self.alias)
        return rendered


@dataclass
class QueryBlock:
    """A single bound SELECT block (see module docstring)."""

    relations: List[RelationRef]
    predicates: List[Expr] = field(default_factory=list)
    select_items: List[SelectItem] = field(default_factory=list)
    group_by: List[ColumnRef] = field(default_factory=list)
    aggregates: List[AggregateSpec] = field(default_factory=list)
    having: Optional[Expr] = None
    distinct: bool = False
    order_by: List[Tuple[ColumnRef, bool]] = field(default_factory=list)
    limit: Optional[int] = None

    # ---------------------------------------------------------------- schemas

    def combined_schema(self) -> Schema:
        """The join row schema: all relations' qualified columns, in
        FROM-list order."""
        schema = Schema(())
        for rel in self.relations:
            schema = schema.concat(rel.output_schema)
        return schema

    @property
    def is_grouped(self) -> bool:
        return bool(self.group_by) or bool(self.aggregates)

    def group_output_schema(self) -> Schema:
        """Schema after grouping: group columns (unqualified output names)
        then aggregate aliases."""
        if not self.is_grouped:
            raise BindError("block has no GROUP BY / aggregates")
        combined = self.combined_schema()
        columns = []
        for ref in self.group_by:
            source = combined.column(ref.name)
            columns.append(source.renamed(ref.name.split(".")[-1]))
        for agg in self.aggregates:
            columns.append(Column(agg.alias, agg.output_dtype(combined)))
        return Schema(columns)

    def projection_input_schema(self) -> Schema:
        """The schema select_items are written over."""
        return (
            self.group_output_schema() if self.is_grouped
            else self.combined_schema()
        )

    def output_schema(self) -> Schema:
        """The block's final output schema."""
        source = self.projection_input_schema()
        if not self.select_items:
            return source
        return Schema(
            Column(item.output_name, item.expr.dtype(source))
            for item in self.select_items
        )

    # ------------------------------------------------------------- utilities

    def relation(self, alias: str) -> RelationRef:
        for rel in self.relations:
            if rel.alias == alias:
                return rel
        raise BindError("no relation aliased %r in block" % alias)

    def aliases(self) -> List[str]:
        return [rel.alias for rel in self.relations]

    def validate(self) -> None:
        """Check the canonical-form rules; raises BindError on violation."""
        seen = set()
        for rel in self.relations:
            if rel.alias in seen:
                raise BindError("duplicate alias %r in FROM list" % rel.alias)
            seen.add(rel.alias)
        combined = self.combined_schema()
        for pred in self.predicates:
            for name in pred.columns():
                combined.index_of(name)  # raises if unknown
        for ref in self.group_by:
            combined.index_of(ref.name)
        for agg in self.aggregates:
            if agg.argument is not None:
                for name in agg.argument.columns():
                    combined.index_of(name)
        projection_input = self.projection_input_schema()
        for item in self.select_items:
            for name in item.expr.columns():
                projection_input.index_of(name)
        if self.having is not None:
            if not self.is_grouped:
                raise BindError("HAVING requires GROUP BY")
            group_schema = self.group_output_schema()
            for name in self.having.columns():
                group_schema.index_of(name)
        output = self.output_schema()
        for ref, _ascending in self.order_by:
            output.index_of(ref.name)

    def _grouped_rendering(self, expr: Expr) -> str:
        """Render an expression over the group-output schema back to
        parseable SQL: aggregate aliases become their calls, group-output
        names become the underlying qualified columns."""
        agg_text = {}
        for agg in self.aggregates:
            arg = "*" if agg.argument is None else agg.argument.display()
            agg_text[agg.alias] = "%s(%s)" % (agg.function.upper(), arg)
        group_text = {
            ref.name.split(".")[-1]: ref.name for ref in self.group_by
        }

        def render(node: Expr) -> str:
            if isinstance(node, ColumnRef):
                if node.name in agg_text:
                    return agg_text[node.name]
                return group_text.get(node.name, node.name)
            from ..expr.nodes import Arithmetic, BooleanExpr, Comparison
            if isinstance(node, Comparison):
                return "%s %s %s" % (render(node.left), node.op,
                                     render(node.right))
            if isinstance(node, Arithmetic):
                return "(%s %s %s)" % (render(node.left), node.op,
                                       render(node.right))
            if isinstance(node, BooleanExpr):
                if node.op == "NOT":
                    return "NOT (%s)" % render(node.args[0])
                joiner = " %s " % node.op
                return "(%s)" % joiner.join(render(a) for a in node.args)
            return node.display()

        return render(expr)

    def display_sql(self, indent: int = 0) -> str:
        """Render back to SQL text (used by EXPLAIN and the rewriter).

        Grouped blocks are rendered through :meth:`_grouped_rendering` so
        the emitted text re-parses (aggregate aliases become calls)."""
        pad = " " * indent
        parts = []
        select = "SELECT "
        if self.distinct:
            select += "DISTINCT "
        if self.select_items:
            rendered_items = []
            for item in self.select_items:
                if self.is_grouped:
                    body = self._grouped_rendering(item.expr)
                    name = item.output_name
                    rendered_items.append(
                        body if body == name else "%s AS %s" % (body, name)
                    )
                else:
                    rendered_items.append(item.display())
            select += ", ".join(rendered_items)
        else:
            select += "*"
        parts.append(pad + select)
        from_entries = []
        for rel in self.relations:
            name = rel.display_name()
            entry = name if name == rel.alias else "%s %s" % (name, rel.alias)
            from_entries.append(entry)
        parts.append(pad + "FROM " + ", ".join(from_entries))
        if self.predicates:
            where = conjoin(self.predicates)
            parts.append(pad + "WHERE " + where.display())
        if self.group_by:
            parts.append(
                pad + "GROUP BY " + ", ".join(g.display() for g in self.group_by)
            )
        if self.having is not None:
            parts.append(pad + "HAVING " + self._grouped_rendering(self.having))
        if self.order_by:
            rendered = ", ".join(
                "%s%s" % (ref.display(), "" if asc else " DESC")
                for ref, asc in self.order_by
            )
            parts.append(pad + "ORDER BY " + rendered)
        return "\n".join(parts)


@dataclass
class UnionQuery:
    """A bound UNION [ALL] chain (left-associative SQL semantics).

    ``all_flags[i]`` keeps duplicates across the link joining the
    accumulated prefix with ``parts[i+1]``; a plain UNION link
    de-duplicates everything accumulated so far.
    """

    parts: List[QueryBlock]
    all_flags: List[bool]
    order_by: List[Tuple[ColumnRef, bool]] = field(default_factory=list)
    limit: Optional[int] = None

    def output_schema(self) -> Schema:
        """The union's schema: first part's names, promoted types."""
        from ..storage.schema import DataType

        schemas = [part.output_schema() for part in self.parts]
        first = schemas[0]
        for other in schemas[1:]:
            if len(other) != len(first):
                raise BindError(
                    "UNION branches produce %d vs %d columns"
                    % (len(first), len(other))
                )
        columns = []
        for position, col in enumerate(first.columns):
            dtypes = {s.columns[position].dtype for s in schemas}
            if len(dtypes) == 1:
                dtype = col.dtype
            elif dtypes <= {DataType.INT, DataType.FLOAT}:
                dtype = DataType.FLOAT
            else:
                raise BindError(
                    "UNION branch column %d has incompatible types %s"
                    % (position, sorted(d.value for d in dtypes))
                )
            columns.append(Column(col.name, dtype))
        return Schema(columns)

    def validate(self) -> None:
        if len(self.parts) < 2:
            raise BindError("UNION needs at least two branches")
        if len(self.all_flags) != len(self.parts) - 1:
            raise BindError("UNION flag/branch arity mismatch")
        for part in self.parts:
            part.validate()
        output = self.output_schema()
        for ref, _asc in self.order_by:
            output.index_of(ref.name)

    def display_sql(self, indent: int = 0) -> str:
        pad = " " * indent
        pieces = [self.parts[0].display_sql(indent)]
        for flag, part in zip(self.all_flags, self.parts[1:]):
            pieces.append(pad + ("UNION ALL" if flag else "UNION"))
            pieces.append(part.display_sql(indent))
        if self.order_by:
            rendered = ", ".join(
                "%s%s" % (ref.display(), "" if asc else " DESC")
                for ref, asc in self.order_by
            )
            pieces.append(pad + "ORDER BY " + rendered)
        if self.limit is not None:
            pieces.append(pad + "LIMIT %d" % self.limit)
        return "\n".join(pieces)
