"""Predicate classification utilities for join planning.

Given a block's conjunct list, the optimizer needs to know, for any subset
of relation aliases: which conjuncts are local filters on one relation,
which are join predicates connecting two sides, and which must wait until
more relations are joined. These helpers do that bookkeeping; aliases are
extracted from qualified column names ("E.did" -> "E").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..expr.nodes import ColumnRef, Comparison, Expr, is_equijoin


def alias_of(column_name: str) -> str:
    """The relation alias of a qualified column name."""
    return column_name.split(".", 1)[0]


def aliases_in(predicate: Expr) -> FrozenSet[str]:
    """The set of relation aliases a predicate references."""
    return frozenset(alias_of(name) for name in predicate.columns())


def local_predicates(predicates: Sequence[Expr], alias: str) -> List[Expr]:
    """Conjuncts that touch only the given relation."""
    return [p for p in predicates if aliases_in(p) == frozenset((alias,))]


def applicable_predicates(predicates: Sequence[Expr],
                          available: Set[str]) -> List[Expr]:
    """Conjuncts fully evaluable once ``available`` aliases are joined."""
    available = frozenset(available)
    return [p for p in predicates if aliases_in(p) and
            aliases_in(p) <= available]


def join_predicates_between(predicates: Sequence[Expr],
                            left: Set[str],
                            right: Set[str]) -> List[Expr]:
    """Conjuncts that connect the two alias sets (touch both, nothing
    else)."""
    left, right = frozenset(left), frozenset(right)
    both = left | right
    out = []
    for pred in predicates:
        refs = aliases_in(pred)
        if refs & left and refs & right and refs <= both:
            out.append(pred)
    return out


def equijoin_pairs(predicates: Sequence[Expr],
                   left: Set[str],
                   right: Set[str]) -> List[Tuple[ColumnRef, ColumnRef]]:
    """(left_column, right_column) pairs for equi-join conjuncts between
    the two alias sets, with the left set's column first."""
    pairs = []
    for pred in join_predicates_between(predicates, left, right):
        if not is_equijoin(pred):
            continue
        assert isinstance(pred, Comparison)
        lcol, rcol = pred.left, pred.right
        if alias_of(lcol.name) in right:
            lcol, rcol = rcol, lcol
        if alias_of(lcol.name) in left and alias_of(rcol.name) in right:
            pairs.append((lcol, rcol))
    return pairs


def equality_classes(predicates: Sequence[Expr]) -> List[Set[str]]:
    """Equivalence classes of columns connected by col = col conjuncts.

    Classic optimizers infer transitive equalities (E.did = D.did and
    E.did = V.did imply D.did = V.did); magic rewriting uses this to
    allow any member of the class to feed the filter set.
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for pred in predicates:
        if is_equijoin(pred):
            union(pred.left.name, pred.right.name)
    groups: Dict[str, Set[str]] = {}
    for column in parent:
        groups.setdefault(find(column), set()).add(column)
    return [members for members in groups.values() if len(members) > 1]


def connected_aliases(predicates: Sequence[Expr], start: str,
                      universe: Iterable[str]) -> Set[str]:
    """Aliases reachable from ``start`` through join predicates (the join
    graph's connected component), restricted to ``universe``."""
    universe = set(universe)
    edges: Dict[str, Set[str]] = {a: set() for a in universe}
    for pred in predicates:
        refs = [a for a in aliases_in(pred) if a in universe]
        for a in refs:
            for b in refs:
                if a != b:
                    edges[a].add(b)
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbor in edges.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen
