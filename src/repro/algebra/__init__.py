"""Logical algebra: relation references, query blocks, predicate tools."""

from .block import QueryBlock, SelectItem
from .predicates import (
    alias_of,
    aliases_in,
    applicable_predicates,
    connected_aliases,
    equijoin_pairs,
    join_predicates_between,
    local_predicates,
)
from .relations import (
    FilterSetRelation,
    RelationRef,
    StoredRelation,
    VirtualRelation,
)

__all__ = [
    "FilterSetRelation",
    "QueryBlock",
    "RelationRef",
    "SelectItem",
    "StoredRelation",
    "VirtualRelation",
    "alias_of",
    "aliases_in",
    "applicable_predicates",
    "connected_aliases",
    "equijoin_pairs",
    "join_predicates_between",
    "local_predicates",
]
