"""Relation references: the FROM-list entries of a query block.

The paper's unifying idea is the *virtual relation*: anything that can be
joined but is not a locally materialized table — a view or table
expression, a remote table in a distributed database, or a user-defined
function. Each FROM-list entry is a :class:`RelationRef` whose ``kind``
tells the optimizer which join methods apply:

- ``stored``    — a local (or remote, if ``site`` is set) base table
- ``view``      — a virtual relation defined by a :class:`QueryBlock`
- ``function``  — a user-defined relation (see :mod:`repro.udf`)
- ``recursive`` — a virtual relation defined by a fixpoint (``WITH
  RECURSIVE`` / ``CREATE RECURSIVE VIEW``)

Every ref exposes an alias-qualified output schema; all predicates in the
enclosing block are written over those qualified names.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import BindError
from ..storage.schema import Schema
from ..storage.table import Table


class RelationRef:
    """Base class for FROM-list entries."""

    kind = "abstract"

    def __init__(self, alias: str):
        if not alias:
            raise BindError("relation reference requires an alias")
        self.alias = alias

    @property
    def base_schema(self) -> Schema:
        """Output schema with unqualified column names."""
        raise NotImplementedError

    @property
    def output_schema(self) -> Schema:
        """Output schema qualified by this reference's alias."""
        return self.base_schema.qualified(self.alias)

    @property
    def is_virtual(self) -> bool:
        """True when this relation is not a locally materialized table."""
        return True

    def display_name(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s(%s AS %s)" % (
            type(self).__name__, self.display_name(), self.alias,
        )


class StoredRelation(RelationRef):
    """A base table, locally stored or at a remote site.

    ``site`` of ``None`` means the local/coordinator site; a non-None site
    makes this a *remote* stored relation, which the distributed cost
    model charges shipping for (Section 5.1 of the paper).
    """

    kind = "stored"

    def __init__(self, alias: str, table: Table, site: Optional[str] = None):
        super().__init__(alias)
        self.table = table
        self.site = site

    @property
    def base_schema(self) -> Schema:
        return self.table.schema

    @property
    def is_virtual(self) -> bool:
        return self.site is not None

    def display_name(self) -> str:
        if self.site is not None:
            return "%s@%s" % (self.table.name, self.site)
        return self.table.name


class FilterSetRelation(RelationRef):
    """The filter ("magic") set, used as a relation inside a restricted
    view body.

    The filter set's contents are not known until run time: the executor
    binds ``param_id`` to a materialized set of distinct join-column
    values produced from the production set. The optimizer costs it
    through the parametric approximation of Section 4.2, parameterized by
    an *assumed cardinality* that equivalence classes vary.
    """

    kind = "filterset"

    def __init__(self, alias: str, schema: Schema, param_id: str,
                 assumed_rows: float = 1.0):
        super().__init__(alias)
        self._schema = schema
        self.param_id = param_id
        self.assumed_rows = assumed_rows

    @property
    def base_schema(self) -> Schema:
        return self._schema

    def with_assumed_rows(self, rows: float) -> "FilterSetRelation":
        return FilterSetRelation(self.alias, self._schema, self.param_id, rows)

    def display_name(self) -> str:
        return "<filter:%s>" % self.param_id


class RecursiveRelation(RelationRef):
    """A recursive virtual relation: the least fixpoint of base branches
    UNION [ALL] one linear recursive branch.

    The binder has already rewritten the recursive branch's
    self-reference into a :class:`FilterSetRelation` carrying
    ``delta_param``, so the branch doubles as the semi-naive *template*:
    each fixpoint pass binds the previous iteration's delta to
    ``delta_param`` and re-evaluates the template. The optimizer plans
    the template per candidate (full fixpoint vs. magic-restricted) by
    substituting an assumed delta cardinality.

    ``distinct`` is True for UNION semantics (set fixpoint, guaranteed
    to terminate) and False for UNION ALL (bag semantics, guarded by
    ``max_fixpoint_iterations`` on cyclic data).
    """

    kind = "recursive"

    def __init__(self, alias: str, view_name: str, base_blocks,
                 recursive_block, delta_param: str, schema: Schema,
                 distinct: bool = True):
        super().__init__(alias)
        self.view_name = view_name
        self.base_blocks = list(base_blocks)
        self.recursive_block = recursive_block
        self.delta_param = delta_param
        self._schema = schema
        self.distinct = distinct
        self.site = None  # the fixpoint always runs at the coordinator

    @property
    def base_schema(self) -> Schema:
        return self._schema

    def display_name(self) -> str:
        return "<recursive:%s>" % self.view_name


class VirtualRelation(RelationRef):
    """A view or table expression: a query block used as a relation.

    The block is the view's *definition*; it is not planned until the
    optimizer chooses how to evaluate it (full computation, correlated
    iteration, or a filter join that restricts it with a filter set).
    """

    kind = "view"

    def __init__(self, alias: str, view_name: str, block,
                 column_aliases: Optional[List[str]] = None,
                 site: Optional[str] = None):
        super().__init__(alias)
        self.view_name = view_name
        self.block = block
        self.column_aliases = list(column_aliases) if column_aliases else None
        self.site = site
        self._base_schema: Optional[Schema] = None

    @property
    def base_schema(self) -> Schema:
        if self._base_schema is None:
            schema = self.block.output_schema()
            if self.column_aliases is not None:
                if len(self.column_aliases) != len(schema):
                    raise BindError(
                        "view %s declares %d columns but its query produces %d"
                        % (self.view_name, len(self.column_aliases), len(schema))
                    )
                schema = Schema(
                    col.renamed(name)
                    for col, name in zip(schema.columns, self.column_aliases)
                )
            self._base_schema = schema
        return self._base_schema

    def display_name(self) -> str:
        return self.view_name
