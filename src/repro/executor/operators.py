"""Physical operators (iterator and vectorized batch models).

Every operator exposes ``rows()``, returning a fresh iterator per call;
re-invoking ``rows()`` re-executes the subtree (and re-charges its cost),
which is exactly what correlated nested iteration needs. All work is
charged to the shared :class:`RuntimeContext` ledger using the same
formulas as the optimizer's :class:`~repro.optimizer.cost.CostModel`, so
measured and estimated cost components are directly comparable.

Operators additionally expose ``batches()``, the vectorized execution
protocol: column-oriented :class:`~repro.executor.vectorize.Batch`
objects of ~1024 rows flow between operators, with predicates and
projections compiled once per execution into column-level closures.
Batch implementations charge the *same* ledger unit counts as their
iterator twins, just chunked (one ``charge_cpu(n)`` per batch instead of
``n`` unit charges), so cost totals, golden plans, memory budgets, and
trace reconciliation are engine-independent. Operators without a native
batch implementation inherit a bridge that runs their ``rows()``
iterator and chunks it — trivially charge-identical — and the two
protocols compose freely within one tree.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from ..bloom.filter import BloomFilter
from ..errors import ExecutionError, FixpointLimitExceeded
from ..expr.aggregates import Accumulator, AggregateSpec
from ..expr.nodes import Expr, RuntimeMembership
from ..stats.estimator import yao_blocks
from ..storage.schema import Schema
from ..storage.table import Table, pages_for
from .runtime import RuntimeContext, TempTable
from ..storage import columnar
from ..storage.columnar import ColumnVector
from .vectorize import (
    Batch,
    KernelStats,
    batches_from_list,
    batches_from_rows,
    batches_from_store,
    compile_expr,
    compile_optional_filter,
)

_np = columnar.np  # None when numpy is unavailable

Row = tuple

# Memory accounting granularity: collection-building loops charge their
# working memory against the per-query budget once per this many rows,
# so a runaway build fails with ResourceExhausted long before the
# process feels it, while the per-row hot path stays branch-cheap.
_MEM_CHUNK_MASK = 1023
_MEM_CHUNK_ROWS = _MEM_CHUNK_MASK + 1


def bind_memberships(expr: Optional[Expr], ctx: RuntimeContext) -> None:
    """Bind every RuntimeMembership node in a resolved tree to its
    run-time structure before evaluation."""
    if expr is None:
        return
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, RuntimeMembership):
            node.membership = ctx.membership(node.param_id)
        for attr in ("left", "right"):
            child = getattr(node, attr, None)
            if isinstance(child, Expr):
                stack.append(child)
        for child in getattr(node, "args", ()) or ():
            if isinstance(child, Expr):
                stack.append(child)


class Operator:
    """Base class for physical operators."""

    #: kernel-vs-fallback batch counts, armed lazily by kernel_counter()
    #: under tracing only; the span finalizer lifts the derived
    #: kernel_batches / fallback_batches properties into span extras
    kernel_stats: Optional[KernelStats] = None

    def __init__(self, ctx: RuntimeContext, schema: Schema):
        self.ctx = ctx
        self.schema = schema

    def kernel_counter(self) -> Optional[KernelStats]:
        """This operator's KernelStats when the execution is traced,
        else None — so untraced compiled closures carry no counting
        wrapper at all."""
        if self.ctx.trace is None:
            return None
        stats = self.kernel_stats
        if stats is None:
            stats = self.kernel_stats = KernelStats()
        return stats

    @property
    def kernel_batches(self) -> Optional[int]:
        stats = self.kernel_stats
        return stats.kernel if stats is not None else None

    @property
    def fallback_batches(self) -> Optional[int]:
        stats = self.kernel_stats
        return stats.fallback if stats is not None else None

    def rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def batches(self) -> Iterator[Batch]:
        """Vectorized protocol; the default bridges through ``rows()``,
        running this subtree tuple-at-a-time (identical charges)."""
        return batches_from_rows(self.rows(), len(self.schema))

    def drain(self) -> List[Row]:
        """Materialize ``batches()`` back into row tuples."""
        out: List[Row] = []
        for batch in self.batches():
            out.extend(batch.rows())
        return out

    def to_list(self) -> List[Row]:
        return list(self.rows())


def _sort_key(values: Sequence) -> tuple:
    """Total-order key tolerant of NULLs (None sorts first)."""
    return tuple((value is not None, value) for value in values)


# ------------------------------------------------------------------ leaves

class SeqScanOp(Operator):
    """Full table scan with an optional pushed-down predicate."""

    def __init__(self, ctx: RuntimeContext, table: Table, schema: Schema,
                 predicate: Optional[Expr] = None):
        super().__init__(ctx, schema)
        self.table = table
        self.predicate = predicate

    def rows(self) -> Iterator[Row]:
        self.ctx.charge_scan(self.table.num_pages)
        bind_memberships(self.predicate, self.ctx)
        for row in self.table.rows:
            self.ctx.charge_cpu(1)
            if self.predicate is not None:
                self.ctx.charge_cpu(1)
                if self.predicate.eval(row) is not True:
                    continue
            yield row

    def batches(self) -> Iterator[Batch]:
        self.ctx.charge_scan(self.table.num_pages)
        bind_memberships(self.predicate, self.ctx)
        predicate = compile_optional_filter(self.predicate,
                                            stats=self.kernel_counter())
        width = len(self.schema)
        # a quiesced table scans straight off its columnar base (batch
        # boundaries — and therefore every batch-granularity charge —
        # are identical to the row layout); versioned tables fall back
        # to the row path, where visibility filtering lives
        store = self.table.columnar_view()
        if store is not None and store.num_rows == len(self.table.rows):
            source = batches_from_store(store)
        else:
            source = batches_from_list(self.table.rows, width)
        for batch in source:
            self.ctx.charge_cpu(batch.n)
            if predicate is not None:
                self.ctx.charge_cpu(batch.n)
                batch = batch.select(predicate(batch))
            if batch.n:
                yield batch


def _probe_data_pages(table: Table, column: str, matches: int) -> float:
    """Data pages touched by one index probe: contiguous when the table
    is clustered on the probed column, Yao-scattered otherwise."""
    if table.clustered_on == column:
        if matches == 0:
            return 0.0
        return pages_for(matches, table.schema.row_width())
    return yao_blocks(max(table.num_rows, 1), max(table.num_pages, 1),
                      matches)


class IndexScanOp(Operator):
    """Equality or range probe through a secondary index."""

    def __init__(self, ctx: RuntimeContext, table: Table, schema: Schema,
                 column: str, op: str, value,
                 residual: Optional[Expr] = None):
        super().__init__(ctx, schema)
        self.table = table
        self.column = column
        self.op = op
        self.value = value
        self.residual = residual

    def _positions(self) -> Sequence[int]:
        index = self.table.index_on(self.column)
        if index is None:
            raise ExecutionError(
                "no index on %s.%s" % (self.table.name, self.column)
            )
        if self.op == "=":
            positions = index.probe(self.value)
        elif index.kind != "sorted":
            raise ExecutionError("range probe requires a sorted index")
        elif self.op == "<":
            positions = index.probe_range(None, self.value,
                                          high_inclusive=False)
        elif self.op == "<=":
            positions = index.probe_range(None, self.value,
                                          high_inclusive=True)
        elif self.op == ">":
            positions = index.probe_range(self.value, None,
                                          low_inclusive=False)
        elif self.op == ">=":
            positions = index.probe_range(self.value, None,
                                          low_inclusive=True)
        else:
            raise ExecutionError(
                "unsupported index operator %r" % self.op)
        # indexes map to physical positions; drop versions this
        # statement's MVCC snapshot cannot see (identity on a table
        # with no in-flight or unvacuumed versions)
        return self.table.visible_positions(positions)

    def rows(self) -> Iterator[Row]:
        positions = self._positions()
        self.ctx.ledger.charge_reads(1.0 + _probe_data_pages(
            self.table, self.column, len(positions)))
        self.ctx.charge_cpu(len(positions) + 1)
        bind_memberships(self.residual, self.ctx)
        for position in positions:
            row = self.table.row_at(position)
            if self.residual is not None:
                self.ctx.charge_cpu(1)
                if self.residual.eval(row) is not True:
                    continue
            yield row

    def batches(self) -> Iterator[Batch]:
        positions = self._positions()
        self.ctx.ledger.charge_reads(1.0 + _probe_data_pages(
            self.table, self.column, len(positions)))
        self.ctx.charge_cpu(len(positions) + 1)
        bind_memberships(self.residual, self.ctx)
        residual = compile_optional_filter(self.residual,
                                           stats=self.kernel_counter())
        rows = [self.table.row_at(p) for p in positions]
        for batch in batches_from_list(rows, len(self.schema)):
            if residual is not None:
                self.ctx.charge_cpu(batch.n)
                batch = batch.select(residual(batch))
            if batch.n:
                yield batch


class FilterSetScanOp(Operator):
    """Scan the run-time-bound filter set (magic set)."""

    def __init__(self, ctx: RuntimeContext, param_id: str, schema: Schema):
        super().__init__(ctx, schema)
        self.param_id = param_id

    def rows(self) -> Iterator[Row]:
        temp = self.ctx.filter_set(self.param_id)
        self.ctx.charge_rescan(temp)
        return iter(temp.rows)

    def batches(self) -> Iterator[Batch]:
        temp = self.ctx.filter_set(self.param_id)
        self.ctx.charge_rescan(temp)
        return batches_from_list(temp.rows, len(self.schema))


class ValuesOp(Operator):
    """A constant in-memory rowset (tests and utilities)."""

    def __init__(self, ctx: RuntimeContext, rows: List[Row], schema: Schema):
        super().__init__(ctx, schema)
        self._rows = rows

    def rows(self) -> Iterator[Row]:
        self.ctx.charge_cpu(len(self._rows))
        return iter(self._rows)

    def batches(self) -> Iterator[Batch]:
        self.ctx.charge_cpu(len(self._rows))
        return batches_from_list(self._rows, len(self.schema))


# ------------------------------------------------------------- unary ops

class FilterOp(Operator):
    def __init__(self, ctx: RuntimeContext, child: Operator, predicate: Expr):
        super().__init__(ctx, child.schema)
        self.child = child
        self.predicate = predicate

    def rows(self) -> Iterator[Row]:
        bind_memberships(self.predicate, self.ctx)
        for row in self.child.rows():
            self.ctx.charge_cpu(1)
            if self.predicate.eval(row) is True:
                yield row

    def batches(self) -> Iterator[Batch]:
        bind_memberships(self.predicate, self.ctx)
        predicate = compile_optional_filter(self.predicate,
                                            stats=self.kernel_counter())
        for batch in self.child.batches():
            self.ctx.charge_cpu(batch.n)
            batch = batch.select(predicate(batch))
            if batch.n:
                yield batch


class ProjectOp(Operator):
    def __init__(self, ctx: RuntimeContext, child: Operator,
                 exprs: Sequence[Expr], schema: Schema):
        super().__init__(ctx, schema)
        self.child = child
        self.exprs = list(exprs)

    def rows(self) -> Iterator[Row]:
        for expr in self.exprs:
            bind_memberships(expr, self.ctx)
        for row in self.child.rows():
            self.ctx.charge_cpu(1)
            yield tuple(expr.eval(row) for expr in self.exprs)

    def batches(self) -> Iterator[Batch]:
        for expr in self.exprs:
            bind_memberships(expr, self.ctx)
        stats = self.kernel_counter()
        fns = [compile_expr(expr, stats=stats) for expr in self.exprs]
        for batch in self.child.batches():
            self.ctx.charge_cpu(batch.n)
            yield Batch([fn(batch) for fn in fns], batch.n)


class DistinctOp(Operator):
    def __init__(self, ctx: RuntimeContext, child: Operator):
        super().__init__(ctx, child.schema)
        self.child = child

    def rows(self) -> Iterator[Row]:
        seen = set()
        width = self.schema.row_width()
        held = 0.0
        try:
            for row in self.child.rows():
                self.ctx.charge_cpu(1)
                if row not in seen:
                    seen.add(row)
                    if not (len(seen) & _MEM_CHUNK_MASK):
                        self.ctx.mem_acquire(_MEM_CHUNK_ROWS * width)
                        held += _MEM_CHUNK_ROWS * width
                    yield row
        finally:
            self.ctx.mem_release(held)

    def batches(self) -> Iterator[Batch]:
        seen = set()
        width = self.schema.row_width()
        held = 0.0
        try:
            for batch in self.child.batches():
                self.ctx.charge_cpu(batch.n)
                keep = []
                for i, row in enumerate(batch.rows()):
                    if row not in seen:
                        seen.add(row)
                        if not (len(seen) & _MEM_CHUNK_MASK):
                            self.ctx.mem_acquire(_MEM_CHUNK_ROWS * width)
                            held += _MEM_CHUNK_ROWS * width
                        keep.append(i)
                if len(keep) == batch.n:
                    yield batch
                elif keep:
                    yield batch.take(keep)
        finally:
            self.ctx.mem_release(held)


class SortOp(Operator):
    """Full sort; charges external-merge I/O when the input spills."""

    def __init__(self, ctx: RuntimeContext, child: Operator,
                 keys: Sequence[Tuple[int, bool]]):
        super().__init__(ctx, child.schema)
        self.child = child
        self.keys = list(keys)

    def _sort(self, data: List[Row]) -> None:
        """Charge the sort and order ``data`` in place (shared by both
        protocols so the charge sequence is identical)."""
        n = len(data)
        if n > 1:
            self.ctx.charge_cpu(n * math.log2(n))
        sort_pages = pages_for(n, self.schema.row_width())
        if not self.ctx.fits(sort_pages):
            fan_in = max(2, self.ctx.memory_pages - 1)
            runs = sort_pages / self.ctx.memory_pages
            passes = max(1, math.ceil(math.log(max(runs, 2), fan_in)))
            self.ctx.ledger.charge_writes(sort_pages * passes)
            self.ctx.ledger.charge_reads(sort_pages * passes)
        for position, ascending in reversed(self.keys):
            data.sort(
                key=lambda row: _sort_key((row[position],)),
                reverse=not ascending,
            )

    def rows(self) -> Iterator[Row]:
        data = list(self.child.rows())
        n = len(data)
        width = self.schema.row_width()
        self.ctx.mem_acquire(n * width)
        try:
            self._sort(data)
            for row in data:
                yield row
        finally:
            self.ctx.mem_release(n * width)

    def batches(self) -> Iterator[Batch]:
        data = self.child.drain()
        n = len(data)
        width = self.schema.row_width()
        self.ctx.mem_acquire(n * width)
        try:
            self._sort(data)
            for batch in batches_from_list(data, len(self.schema)):
                yield batch
        finally:
            self.ctx.mem_release(n * width)


class LimitOp(Operator):
    def __init__(self, ctx: RuntimeContext, child: Operator, limit: int):
        super().__init__(ctx, child.schema)
        self.child = child
        self.limit = limit

    def rows(self) -> Iterator[Row]:
        count = 0
        for row in self.child.rows():
            if count >= self.limit:
                break
            count += 1
            yield row

    def batches(self) -> Iterator[Batch]:
        # Batch granularity: the child charges for whole batches, so a
        # limit over a *streaming* child can charge for up to one
        # batch's worth of rows the iterator engine never produced
        # (blocking children — sorts, aggregates — have already done
        # their work and are unaffected). See docs/execution.md.
        remaining = self.limit
        if remaining <= 0:
            return
        for batch in self.child.batches():
            if batch.n >= remaining:
                yield batch.head(remaining)
                return
            remaining -= batch.n
            yield batch


class AggregateOp(Operator):
    """Hash aggregation. With no GROUP BY columns, produces exactly one
    row (SQL scalar-aggregate semantics)."""

    def __init__(self, ctx: RuntimeContext, child: Operator,
                 group_positions: Sequence[int],
                 aggregates: Sequence[Tuple[AggregateSpec, Optional[Expr]]],
                 schema: Schema):
        super().__init__(ctx, schema)
        self.child = child
        self.group_positions = list(group_positions)
        self.aggregates = list(aggregates)  # (spec, resolved argument)

    def rows(self) -> Iterator[Row]:
        groups = {}
        width = self.schema.row_width()
        held = 0.0
        for spec, argument in self.aggregates:
            bind_memberships(argument, self.ctx)
        try:
            for row in self.child.rows():
                self.ctx.charge_cpu(1)
                key = tuple(row[p] for p in self.group_positions)
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = [
                        Accumulator.for_spec(spec)
                        for spec, _ in self.aggregates
                    ]
                    groups[key] = accumulators
                    if not (len(groups) & _MEM_CHUNK_MASK):
                        self.ctx.mem_acquire(_MEM_CHUNK_ROWS * width)
                        held += _MEM_CHUNK_ROWS * width
                for (spec, argument), accumulator in zip(self.aggregates,
                                                         accumulators):
                    value = None if argument is None else argument.eval(row)
                    accumulator.add(value)
            if not groups and not self.group_positions and self.aggregates:
                groups[()] = [
                    Accumulator.for_spec(spec) for spec, _ in self.aggregates
                ]
            for key, accumulators in groups.items():
                self.ctx.charge_cpu(1)
                yield key + tuple(a.result() for a in accumulators)
        finally:
            self.ctx.mem_release(held)

    def batches(self) -> Iterator[Batch]:
        groups = {}
        width = self.schema.row_width()
        held = 0.0
        for spec, argument in self.aggregates:
            bind_memberships(argument, self.ctx)
        stats = self.kernel_counter()
        arg_fns = [
            None if argument is None
            else compile_expr(argument, stats=stats)
            for _, argument in self.aggregates
        ]
        single_agg = (len(arg_fns) == 1)
        get = groups.get

        def register(key):
            nonlocal held
            accumulators = [
                Accumulator.for_spec(spec) for spec, _ in self.aggregates
            ]
            groups[key] = accumulators
            if not (len(groups) & _MEM_CHUNK_MASK):
                self.ctx.mem_acquire(_MEM_CHUNK_ROWS * width)
                held += _MEM_CHUNK_ROWS * width
            return accumulators

        try:
            for batch in self.child.batches():
                self.ctx.charge_cpu(batch.n)
                arg_values = [
                    None if fn is None else fn(batch) for fn in arg_fns
                ]
                if self._consume_columnar(batch, arg_values, groups,
                                          register):
                    continue
                key_columns = [batch.column(p)
                               for p in self.group_positions]
                keys = (list(zip(*key_columns)) if key_columns
                        else [()] * batch.n)
                arg_columns = [
                    [None] * batch.n if v is None else v
                    for v in arg_values
                ]
                if single_agg:
                    # one accumulator per group: skip the inner zip
                    for key, value in zip(keys, arg_columns[0]):
                        accumulators = get(key)
                        if accumulators is None:
                            accumulators = register(key)
                        accumulators[0].add(value)
                    continue
                for i, key in enumerate(keys):
                    accumulators = get(key)
                    if accumulators is None:
                        accumulators = register(key)
                    for column, accumulator in zip(arg_columns,
                                                   accumulators):
                        accumulator.add(column[i])
            if not groups and not self.group_positions and self.aggregates:
                groups[()] = [
                    Accumulator.for_spec(spec) for spec, _ in self.aggregates
                ]
            if groups:
                self.ctx.charge_cpu(len(groups))
            out = [
                key + tuple(a.result() for a in accumulators)
                for key, accumulators in groups.items()
            ]
            for batch in batches_from_list(out, len(self.schema)):
                yield batch
        finally:
            self.ctx.mem_release(held)

    def _consume_columnar(self, batch: Batch, arg_values, groups,
                          register) -> bool:
        """Fold one columnar batch into the group table with numpy
        kernels: factorize the key columns, then apply per-group bulk
        updates to the same :class:`Accumulator` objects the row path
        drives, preserving first-occurrence group order, exact Python
        arithmetic, and the row path's memory-chunk accounting.

        Returns False — before touching any state — whenever exact
        replication isn't possible wholesale (row-backed batch, DISTINCT,
        float SUM/AVG whose result depends on accumulation order, float
        group keys, overflow-risky int sums); the caller then runs the
        per-row path on this batch.
        """
        if _np is None:
            return False
        n = batch.n
        key_cols = []
        for p in self.group_positions:
            col = batch.column(p)
            if not isinstance(col, ColumnVector) or (
                    col.dictionary is None
                    and col.values.dtype == _np.float64):
                return False
            key_cols.append(col)

        # ---- plan per-aggregate updates; nothing is mutated yet ----
        plans = []
        for (spec, _), values in zip(self.aggregates, arg_values):
            if spec.distinct:
                return False
            if values is None:
                plans.append(("star", None))
                continue
            if not isinstance(values, ColumnVector):
                return False
            fname = spec.function
            if fname in ("sum", "avg") and (
                    values.dictionary is not None
                    or values.values.dtype not in (_np.int64, _np.bool_)):
                # float sums are order-dependent; strings raise — both
                # replicate exactly only on the per-row path
                return False
            plans.append((fname, values))

        # ---- factorize group keys (first occurrence order) ----
        # Small key domains (dictionary codes, narrow int ranges — the
        # overwhelmingly common GROUP BY shapes) factorize sort-free:
        # pack the per-column codes into one combined code and bincount
        # it. Wide domains fall back to np.unique.
        factored = self._factorize_small(key_cols, n) if key_cols \
            else None
        if factored is not None:
            first_idx, inverse, counts_all = factored
            k = len(first_idx)
        elif key_cols:
            enc = []
            for col in key_cols:
                part = col.values.astype(_np.int64)
                if col.mask is not None:
                    if col.dictionary is not None:
                        part = _np.where(col.mask, part, -1)
                    else:
                        enc.append((~col.mask).astype(_np.int64))
                enc.append(part)
            if len(enc) == 1:
                _, first_idx, inverse = _np.unique(
                    enc[0], return_index=True, return_inverse=True)
            else:
                key_mat = _np.column_stack(enc)
                _, first_idx, inverse = _np.unique(
                    key_mat, axis=0, return_index=True,
                    return_inverse=True)
            inverse = inverse.reshape(-1)
            k = len(first_idx)
            counts_all = _np.bincount(inverse, minlength=k)
        else:
            inverse = _np.zeros(n, dtype=_np.int64)
            first_idx = _np.zeros(1, dtype=_np.int64)
            k = 1
            counts_all = _np.bincount(inverse, minlength=k)

        base_order = None  # shared argsort for mask-free aggregates
        int64_safe = columnar.INT64_SAFE
        float_exact = 1 << 52

        def grouped(values_arr, vidx, per_counts):
            """(sorted values, nonzero groups' segment starts, nonzero
            flags). Empty groups are excluded from the reduceat index
            list so neighbouring segments stay exact."""
            nonlocal base_order
            if vidx is inverse:
                if base_order is None:
                    base_order = _np.argsort(inverse, kind="stable")
                order = base_order
            else:
                order = _np.argsort(vidx, kind="stable")
            sv = values_arr[order]
            starts = _np.searchsorted(vidx[order], _np.arange(k),
                                      side="left")
            nz = per_counts > 0
            return sv, starts[nz], nz

        updates = []
        for fname, values in plans:
            if fname == "star":
                updates.append(("count", counts_all))
                continue
            if values.mask is None:
                vidx, vvals, per_counts = (
                    inverse, values.values, counts_all)
            else:
                sel = values.mask
                vidx = inverse[sel]
                vvals = values.values[sel]
                per_counts = _np.bincount(vidx, minlength=k)
            if fname == "count":
                updates.append(("count", per_counts))
                continue
            if fname in ("sum", "avg"):
                vals = (vvals.astype(_np.int64)
                        if vvals.dtype == _np.bool_ else vvals)
                sums = _np.zeros(k, dtype=_np.int64)
                if len(vals):
                    worst = max(abs(int(vals.min())),
                                abs(int(vals.max()))) * \
                        max(1, int(per_counts.max()))
                    if worst >= int64_safe:
                        return False  # per-row path sums unbounded ints
                    if worst < float_exact:
                        # every partial stays an exact float64 integer
                        sums = _np.bincount(
                            vidx, weights=vals,
                            minlength=k).astype(_np.int64)
                    else:
                        sv, nz_starts, nz = grouped(vals, vidx,
                                                    per_counts)
                        sums[nz] = _np.add.reduceat(sv, nz_starts)
                updates.append(("sum", (per_counts, sums)))
                continue
            # min / max
            dictionary = values.dictionary
            if dictionary is not None:
                ranks = dictionary.sort_ranks()
                mv = ranks[vvals]
            else:
                mv = vvals
            candidates = [None] * k
            if len(mv):
                sv, nz_starts, nz = grouped(mv, vidx, per_counts)
                reducer = (_np.minimum if fname == "min"
                           else _np.maximum)
                red = reducer.reduceat(sv, nz_starts)
                nz_locals = _np.nonzero(nz)[0].tolist()
                if dictionary is not None:
                    by_rank = dictionary.sorted_entries()
                    for pos, local in enumerate(nz_locals):
                        candidates[local] = by_rank[int(red[pos])]
                else:
                    for pos, local in enumerate(nz_locals):
                        candidates[local] = red[pos].item()
            updates.append((fname, (per_counts, candidates)))

        # ---- apply: register groups in first-occurrence order ----
        acc_lists = [None] * k
        for local in _np.argsort(first_idx, kind="stable").tolist():
            i = int(first_idx[local])
            key = tuple(col.item(i) for col in key_cols)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = register(key)
            acc_lists[local] = accumulators

        for j, (kind, data) in enumerate(updates):
            if kind == "count":
                for local, c in enumerate(data.tolist()):
                    if c:
                        acc_lists[local][j].count += c
            elif kind == "sum":
                per_counts, sums = data
                pc = per_counts.tolist()
                sm = sums.tolist()
                for local in range(k):
                    if pc[local]:
                        acc = acc_lists[local][j]
                        acc.count += pc[local]
                        acc.total += sm[local]
            else:  # min / max
                per_counts, candidates = data
                pc = per_counts.tolist()
                is_min = (kind == "min")
                for local in range(k):
                    if pc[local]:
                        acc = acc_lists[local][j]
                        acc.count += pc[local]
                        value = candidates[local]
                        if is_min:
                            if acc.minimum is None or \
                                    value < acc.minimum:
                                acc.minimum = value
                        else:
                            if acc.maximum is None or \
                                    value > acc.maximum:
                                acc.maximum = value
        return True

    def _factorize_small(self, key_cols, n):
        """Sort-free factorization for small combined key domains.

        Each key column maps to a dense non-negative code (NULL takes
        slot 0) and the per-column codes pack into one combined code by
        mixed-radix arithmetic. A single bincount then yields group
        counts, first-occurrence row indices, and the inverse mapping —
        no O(n log n) sort, unlike ``np.unique``. Returns
        ``(first_idx, inverse, counts_all)`` with groups ordered by
        combined code, or None when any column (or the product of
        domains) exceeds the cap, in which case the caller falls back
        to ``np.unique``.
        """
        cap = 1 << 16
        domain = 1
        combined = None
        for col in key_cols:
            if col.dictionary is not None:
                d = len(col.dictionary.entries) + 1
                if d > cap:
                    return None
                e = col.values.astype(_np.int64) + 1
            elif col.values.dtype == _np.bool_:
                d = 3
                e = col.values.astype(_np.int64) + 1
            else:
                vals = col.values
                lo = int(vals.min()) if n else 0
                hi = int(vals.max()) if n else 0
                d = hi - lo + 2
                if d > cap:
                    return None
                e = (vals - lo) + 1
            if col.mask is not None:
                e = _np.where(col.mask, e, 0)
            domain *= d
            if domain > cap:
                return None
            combined = e if combined is None else combined * d + e
        counts_dom = _np.bincount(combined, minlength=domain)
        present = _np.flatnonzero(counts_dom)
        first = _np.empty(domain, dtype=_np.int64)
        first[combined[::-1]] = _np.arange(n - 1, -1, -1)
        remap = _np.empty(domain, dtype=_np.int64)
        remap[present] = _np.arange(len(present))
        return first[present], remap[combined], counts_dom[present]


class MaterializeOp(Operator):
    """Materialize the child into a temp each time it is consumed."""

    def __init__(self, ctx: RuntimeContext, child: Operator):
        super().__init__(ctx, child.schema)
        self.child = child

    def build(self) -> TempTable:
        data = list(self.child.rows())
        temp_pages = self.ctx.charge_materialize(
            len(data), self.schema.row_width()
        )
        return TempTable(data, self.schema,
                         spilled=not self.ctx.fits(temp_pages))

    def rows(self) -> Iterator[Row]:
        temp = self.build()
        nbytes = len(temp.rows) * self.schema.row_width()
        self.ctx.mem_acquire(nbytes)
        try:
            for row in temp.rows:
                yield row
        finally:
            self.ctx.mem_release(nbytes)

    def batches(self) -> Iterator[Batch]:
        data = self.child.drain()
        self.ctx.charge_materialize(len(data), self.schema.row_width())
        nbytes = len(data) * self.schema.row_width()
        self.ctx.mem_acquire(nbytes)
        try:
            for batch in batches_from_list(data, len(self.schema)):
                yield batch
        finally:
            self.ctx.mem_release(nbytes)


class RelabelOp(Operator):
    """Pass rows through under a renamed schema."""

    def __init__(self, ctx: RuntimeContext, child: Operator, schema: Schema):
        super().__init__(ctx, schema)
        self.child = child

    def rows(self) -> Iterator[Row]:
        return self.child.rows()

    def batches(self) -> Iterator[Batch]:
        return self.child.batches()


class ShipOp(Operator):
    """Move rows between sites, charging messages and bytes.

    With a simulated network installed on the context, the shipment is
    subject to fault injection (drops, truncation, latency, site-down)
    and the retry policy; ``from_site``/``to_site`` identify the link.
    """

    def __init__(self, ctx: RuntimeContext, child: Operator,
                 from_site: Optional[str] = None,
                 to_site: Optional[str] = None):
        super().__init__(ctx, child.schema)
        self.child = child
        self.from_site = from_site
        self.to_site = to_site

    def rows(self) -> Iterator[Row]:
        data = list(self.child.rows())
        self.ctx.charge_ship(len(data), self.schema.row_width(),
                             from_site=self.from_site,
                             to_site=self.to_site)
        return iter(data)

    def batches(self) -> Iterator[Batch]:
        # both protocols drain the child fully before transferring, so
        # the simulated network sees one transfer of the same size at
        # the same point in the fault schedule regardless of engine
        data = self.child.drain()
        self.ctx.charge_ship(len(data), self.schema.row_width(),
                             from_site=self.from_site,
                             to_site=self.to_site)
        return batches_from_list(data, len(self.schema))


class UnionOp(Operator):
    """Concatenate children; optionally de-duplicate the whole output."""

    def __init__(self, ctx: RuntimeContext, left: Operator, right: Operator,
                 schema: Schema, distinct: bool):
        super().__init__(ctx, schema)
        self.left = left
        self.right = right
        self.distinct = distinct

    def rows(self) -> Iterator[Row]:
        seen = set() if self.distinct else None
        width = self.schema.row_width()
        held = 0.0
        try:
            for source in (self.left, self.right):
                for row in source.rows():
                    self.ctx.charge_cpu(1)
                    if seen is not None:
                        if row in seen:
                            continue
                        seen.add(row)
                        if not (len(seen) & _MEM_CHUNK_MASK):
                            self.ctx.mem_acquire(_MEM_CHUNK_ROWS * width)
                            held += _MEM_CHUNK_ROWS * width
                    yield row
        finally:
            self.ctx.mem_release(held)

    def batches(self) -> Iterator[Batch]:
        seen = set() if self.distinct else None
        width = self.schema.row_width()
        held = 0.0
        try:
            for source in (self.left, self.right):
                for batch in source.batches():
                    self.ctx.charge_cpu(batch.n)
                    if seen is None:
                        yield batch
                        continue
                    keep = []
                    for i, row in enumerate(batch.rows()):
                        if row in seen:
                            continue
                        seen.add(row)
                        if not (len(seen) & _MEM_CHUNK_MASK):
                            self.ctx.mem_acquire(_MEM_CHUNK_ROWS * width)
                            held += _MEM_CHUNK_ROWS * width
                        keep.append(i)
                    if len(keep) == batch.n:
                        yield batch
                    elif keep:
                        yield batch.take(keep)
        finally:
            self.ctx.mem_release(held)


class FixpointOp(Operator):
    """Semi-naive fixpoint of a recursive relation.

    The base child seeds the result and the first delta; each pass binds
    the delta to ``delta_param`` (the template's FilterSetScanOp leaf)
    and re-runs the template, so the recursive branch only ever joins
    against rows discovered in the previous pass. With ``distinct``
    (UNION) only genuinely new rows enter the next delta, which
    guarantees termination; without it (UNION ALL) every produced row
    does, and ``ctx.max_fixpoint_iterations`` guards cyclic data.

    Both engines share one evaluation routine (the template is drained
    whole each pass either way), so iterator and vector runs write
    identical charge totals to the ledger.
    """

    def __init__(self, ctx: RuntimeContext, base: Operator,
                 template: Operator, delta_param: str, schema: Schema,
                 distinct: bool):
        super().__init__(ctx, schema)
        self.base = base
        self.template = template
        self.delta_param = delta_param
        self.distinct = distinct

    def _evaluate(self, drain) -> Tuple[List[Row], float]:
        """Run the fixpoint; returns (result rows, bytes still held)."""
        width = self.schema.row_width()
        limit = self.ctx.max_fixpoint_iterations
        held = 0.0
        try:
            seen = set() if self.distinct else None
            out: List[Row] = []
            delta: List[Row] = []
            for row in drain(self.base):
                self.ctx.charge_cpu(1)
                if seen is not None:
                    if row in seen:
                        continue
                    seen.add(row)
                out.append(row)
                delta.append(row)
                if not (len(out) & _MEM_CHUNK_MASK):
                    self.ctx.mem_acquire(_MEM_CHUNK_ROWS * width)
                    held += _MEM_CHUNK_ROWS * width
            iterations = 0
            while delta:
                if limit is not None and iterations >= limit:
                    raise FixpointLimitExceeded(
                        "fixpoint did not converge within %d iterations "
                        "(the last delta still holds %d rows); raise "
                        "Options.max_fixpoint_iterations or use UNION "
                        "instead of UNION ALL" % (limit, len(delta)),
                        iterations=iterations, limit=limit,
                    )
                iterations += 1
                temp_pages = self.ctx.charge_materialize(len(delta), width)
                temp = TempTable(delta, self.schema,
                                 spilled=not self.ctx.fits(temp_pages))
                self.ctx.bind_filter_set(self.delta_param, temp)
                new: List[Row] = []
                for row in drain(self.template):
                    self.ctx.charge_cpu(1)
                    if seen is not None:
                        if row in seen:
                            continue
                        seen.add(row)
                    out.append(row)
                    new.append(row)
                    if not (len(out) & _MEM_CHUNK_MASK):
                        self.ctx.mem_acquire(_MEM_CHUNK_ROWS * width)
                        held += _MEM_CHUNK_ROWS * width
                delta = new
        except BaseException:
            self.ctx.mem_release(held)
            raise
        return out, held

    def rows(self) -> Iterator[Row]:
        out, held = self._evaluate(lambda op: op.rows())
        try:
            for row in out:
                yield row
        finally:
            self.ctx.mem_release(held)

    def batches(self) -> Iterator[Batch]:
        out, held = self._evaluate(lambda op: op.drain())
        try:
            for batch in batches_from_list(out, len(self.schema)):
                yield batch
        finally:
            self.ctx.mem_release(held)


# -------------------------------------------------------------- join ops

def _null_free(key: tuple) -> bool:
    return all(value is not None for value in key)


class HashJoinOp(Operator):
    """Hash join: build on the inner, probe with the outer."""

    def __init__(self, ctx: RuntimeContext, outer: Operator, inner: Operator,
                 outer_positions: Sequence[int],
                 inner_positions: Sequence[int],
                 residual: Optional[Expr], schema: Schema,
                 semi: bool = False):
        super().__init__(ctx, schema)
        self.outer = outer
        self.inner = inner
        self.outer_positions = list(outer_positions)
        self.inner_positions = list(inner_positions)
        self.residual = residual
        self.semi = semi

    def rows(self) -> Iterator[Row]:
        bind_memberships(self.residual, self.ctx)
        table = {}
        build_rows = 0
        build_width = self.inner.schema.row_width()
        held = 0.0
        try:
            for row in self.inner.rows():
                self.ctx.charge_cpu(1)
                build_rows += 1
                if not (build_rows & _MEM_CHUNK_MASK):
                    self.ctx.mem_acquire(_MEM_CHUNK_ROWS * build_width)
                    held += _MEM_CHUNK_ROWS * build_width
                key = tuple(row[p] for p in self.inner_positions)
                if _null_free(key):
                    table.setdefault(key, []).append(row)
            tail = (build_rows & _MEM_CHUNK_MASK) * build_width
            self.ctx.mem_acquire(tail)
            held += tail
            build_pages = pages_for(build_rows, build_width)
            probe_rows = 0
            emitted_inner = set() if self.semi else None
            for outer_row in self.outer.rows():
                self.ctx.charge_cpu(1)
                probe_rows += 1
                key = tuple(outer_row[p] for p in self.outer_positions)
                if not _null_free(key):
                    continue
                for inner_row in table.get(key, ()):
                    self.ctx.charge_cpu(1)
                    if self.semi:
                        if id(inner_row) not in emitted_inner:
                            emitted_inner.add(id(inner_row))
                            yield inner_row
                        continue
                    combined = outer_row + inner_row
                    if self.residual is not None and \
                            self.residual.eval(combined) is not True:
                        continue
                    yield combined
            if not self.ctx.fits(build_pages):
                probe_pages = pages_for(probe_rows,
                                        self.outer.schema.row_width())
                self.ctx.ledger.charge_writes(build_pages + probe_pages)
                self.ctx.ledger.charge_reads(build_pages + probe_pages)
        finally:
            self.ctx.mem_release(held)

    def batches(self) -> Iterator[Batch]:
        bind_memberships(self.residual, self.ctx)
        residual = compile_optional_filter(self.residual,
                                           stats=self.kernel_counter())
        table = None
        build_rows = 0
        build_width = self.inner.schema.row_width()
        out_width = len(self.schema)
        held = 0.0
        try:
            # single-column keys (the common case) index the hash table
            # by the bare value — no per-row tuple allocation, and the
            # null check is an identity test instead of a call
            single = (len(self.inner_positions) == 1)
            build_batches = []
            for batch in self.inner.batches():
                self.ctx.charge_cpu(batch.n)
                # replicate the iterator's every-1024-rows memory
                # acquisitions: one per chunk boundary this batch crosses
                crossings = ((build_rows + batch.n) // _MEM_CHUNK_ROWS
                             - build_rows // _MEM_CHUNK_ROWS)
                build_rows += batch.n
                for _ in range(crossings):
                    self.ctx.mem_acquire(_MEM_CHUNK_ROWS * build_width)
                    held += _MEM_CHUNK_ROWS * build_width
                build_batches.append(batch)
            tail = (build_rows & _MEM_CHUNK_MASK) * build_width
            self.ctx.mem_acquire(tail)
            held += tail
            build_pages = pages_for(build_rows, build_width)
            # the sorted-key probe path covers single-column inner joins
            # whose key columns arrived columnar end-to-end; anything
            # else (semi joins, multi-column keys, row-backed batches)
            # builds the classic bucket table below, per batch
            vec = (self._vector_build(build_batches)
                   if single and not self.semi and _np is not None
                   else None)
            if vec is None:
                table = self._bucket_table(build_batches, single)
            probe_rows = 0
            emitted_inner = set() if self.semi else None
            for batch in self.outer.batches():
                self.ctx.charge_cpu(batch.n)
                probe_rows += batch.n
                if vec is not None:
                    probe_key = batch.column(self.outer_positions[0])
                    if isinstance(probe_key, ColumnVector):
                        result, pairs = self._vector_probe(
                            batch, probe_key, vec, out_width)
                        if result is not None or pairs == 0:
                            self.ctx.charge_cpu(pairs)
                            if result is None:
                                continue
                            if residual is not None:
                                result = result.select(residual(result))
                            if result.n:
                                yield result
                            continue
                    # probe batch incompatible with the sorted arrays:
                    # fall back to buckets for it (built only once)
                    if table is None:
                        table = self._bucket_table(build_batches, single)
                batch_out = self._probe_batch_rows(
                    batch, table, single, emitted_inner)
                out, pairs = batch_out
                self.ctx.charge_cpu(pairs)
                if not out:
                    continue
                result = Batch.from_rows(out, out_width)
                if residual is not None and not self.semi:
                    result = result.select(residual(result))
                if result.n:
                    yield result
            if not self.ctx.fits(build_pages):
                probe_pages = pages_for(probe_rows,
                                        self.outer.schema.row_width())
                self.ctx.ledger.charge_writes(build_pages + probe_pages)
                self.ctx.ledger.charge_reads(build_pages + probe_pages)
        finally:
            self.ctx.mem_release(held)

    def _bucket_table(self, build_batches, single) -> dict:
        """The iterator engine's bucket table, built from collected
        build batches (identical insertion order)."""
        table = {}
        setdefault = table.setdefault
        for batch in build_batches:
            rows = batch.rows()
            if single:
                for key, row in zip(
                        batch.column(self.inner_positions[0]), rows):
                    if key is not None:
                        setdefault(key, []).append(row)
            else:
                key_columns = [batch.column(p)
                               for p in self.inner_positions]
                keys = (zip(*key_columns) if key_columns
                        else [()] * batch.n)
                for key, row in zip(keys, rows):
                    if _null_free(key):
                        setdefault(key, []).append(row)
        return table

    def _probe_batch_rows(self, batch, table, single, emitted_inner):
        """One probe batch against the bucket table (the per-row path);
        returns (output rows, pair count)."""
        get = table.get
        if single:
            keys = batch.column(self.outer_positions[0])
        else:
            key_columns = [batch.column(p)
                           for p in self.outer_positions]
            keys = (list(zip(*key_columns)) if key_columns
                    else [()] * batch.n)
        rows = batch.rows()
        out: List[Row] = []
        append = out.append
        pairs = 0
        if self.semi:
            seen_add = emitted_inner.add
            for key in keys:
                if key is None or (not single
                                   and not _null_free(key)):
                    continue
                bucket = get(key)
                if not bucket:
                    continue
                pairs += len(bucket)
                for inner_row in bucket:
                    if id(inner_row) not in emitted_inner:
                        seen_add(id(inner_row))
                        append(inner_row)
        else:
            for outer_row, key in zip(rows, keys):
                if key is None or (not single
                                   and not _null_free(key)):
                    continue
                bucket = get(key)
                if not bucket:
                    continue
                pairs += len(bucket)
                for inner_row in bucket:
                    append(outer_row + inner_row)
        return out, pairs

    def _vector_build(self, build_batches):
        """Sorted-key arrays over the build side for binary-search
        probing. Returns None unless every build batch's key column is a
        ColumnVector of one consistent kind (int64/bool, float64, or
        codes of one shared dictionary); bucket insertion order — build
        position ascending — is preserved by the stable sort, so probe
        emission order matches the bucket path exactly."""
        pos = self.inner_positions[0]
        parts = [b.column(pos) for b in build_batches]
        if not all(isinstance(p, ColumnVector) for p in parts):
            return None
        if parts:
            first = parts[0]
            if first.dictionary is not None:
                if any(p.dictionary is not first.dictionary
                       for p in parts):
                    return None
                keyvals = _np.concatenate(
                    [p.values.astype(_np.int64) for p in parts])
                kind = first.dictionary
            else:
                if any(p.dictionary is not None for p in parts):
                    return None
                dtypes = {str(p.values.dtype) for p in parts}
                if dtypes <= {"int64", "bool"}:
                    keyvals = _np.concatenate(
                        [p.values.astype(_np.int64) for p in parts])
                    kind = "int"
                elif dtypes == {"float64"}:
                    # NaN never encodes into a ColumnVector, so float
                    # keys compare identically to dict hashing
                    keyvals = _np.concatenate(
                        [p.values for p in parts])
                    kind = "float"
                else:
                    return None
            if any(p.mask is not None for p in parts):
                valid = _np.concatenate([p.valid_mask() for p in parts])
            else:
                valid = None
        else:
            keyvals = _np.empty(0, dtype=_np.int64)
            valid = None
            kind = "int"
        positions = _np.arange(len(keyvals))
        if valid is not None:
            positions = positions[valid]
            keyvals = keyvals[valid]
        order = _np.argsort(keyvals, kind="stable")
        sorted_keys = keyvals[order]
        sorted_pos = positions[order]
        unique = bool(sorted_keys.size < 2 or
                      (sorted_keys[1:] != sorted_keys[:-1]).all())
        # small unique int domains (surrogate keys, dictionary codes)
        # get a dense position lookup table: probing is then one fancy
        # index instead of a binary search per batch
        lut = None
        lut_lo = 0
        if unique and sorted_keys.size and \
                sorted_keys.dtype == _np.int64:
            lut_lo = int(sorted_keys[0])
            span = int(sorted_keys[-1]) - lut_lo + 1
            if span <= max(1 << 16, 4 * sorted_keys.size):
                lut = _np.zeros(span, dtype=_np.int64)
                lut[sorted_keys - lut_lo] = sorted_pos + 1  # 0 = absent
        inner_width = len(self.inner.schema)
        inner_columns = [
            columnar.concat_columns([b.column(j) for b in build_batches])
            for j in range(inner_width)
        ]
        return {
            "keys": sorted_keys,
            "pos": sorted_pos,
            "kind": kind,
            "unique": unique,
            "lut": lut,
            "lut_lo": lut_lo,
            "columns": inner_columns,
            "trans": {},  # per-probe-dictionary code translations
        }

    def _vector_probe(self, batch, probe_key, vec, out_width):
        """One columnar probe batch against the sorted build arrays;
        returns (result batch or None, pair count), or (None, -1) when
        this batch's key column is incompatible with the build kind."""
        kind = vec["kind"]
        values = probe_key.values
        if probe_key.dictionary is not None:
            if not isinstance(kind, columnar.StringDictionary):
                return None, -1
            if probe_key.dictionary is kind:
                vals = values.astype(_np.int64)
            else:
                trans = vec["trans"].get(id(probe_key.dictionary))
                if trans is None:
                    entries = probe_key.dictionary.entries
                    trans = (_np.fromiter(
                        (kind.lookup(e) for e in entries),
                        dtype=_np.int64, count=len(entries))
                        if entries else _np.empty(0, dtype=_np.int64))
                    vec["trans"][id(probe_key.dictionary)] = trans
                vals = (trans[values] if len(trans)
                        else _np.full(len(values), -1, dtype=_np.int64))
        elif kind == "int":
            if values.dtype != _np.int64 and values.dtype != _np.bool_:
                return None, -1
            vals = values.astype(_np.int64)
        elif kind == "float":
            if values.dtype != _np.float64:
                return None, -1
            vals = values
        else:
            return None, -1
        sorted_keys = vec["keys"]
        m = sorted_keys.size
        lut = vec["lut"]
        if lut is not None and vals.dtype == _np.int64:
            idx = vals - vec["lut_lo"]
            in_range = (idx >= 0) & (idx < lut.size)
            slot = lut[_np.where(in_range, idx, 0)]
            found = in_range & (slot > 0)
            if probe_key.mask is not None:
                found &= probe_key.mask
            pairs = int(_np.count_nonzero(found))
            if pairs == 0:
                return None, 0
            probe_idx = _np.flatnonzero(found)
            build_pos = slot[found] - 1
        elif vec["unique"]:
            # at most one match per probe row: a single binary search
            # plus an equality check replaces the repeat/cumsum expansion
            lo = _np.searchsorted(sorted_keys, vals, side="left")
            if m:
                found = sorted_keys[_np.minimum(lo, m - 1)] == vals
                found &= lo < m
            else:
                found = _np.zeros(len(vals), dtype=bool)
            if probe_key.mask is not None:
                found &= probe_key.mask
            pairs = int(_np.count_nonzero(found))
            if pairs == 0:
                return None, 0
            probe_idx = _np.flatnonzero(found)
            build_pos = vec["pos"][lo[found]]
        else:
            lo = _np.searchsorted(sorted_keys, vals, side="left")
            hi = _np.searchsorted(sorted_keys, vals, side="right")
            counts = hi - lo
            if probe_key.mask is not None:
                counts = _np.where(probe_key.mask, counts, 0)
            pairs = int(counts.sum())
            if pairs == 0:
                return None, 0
            # expand each probe row into its matches: ascending build
            # position within a key = bucket insertion order
            probe_idx = _np.repeat(_np.arange(batch.n), counts)
            starts = _np.repeat(lo, counts)
            offsets = _np.arange(pairs) - _np.repeat(
                _np.cumsum(counts) - counts, counts)
            build_pos = vec["pos"][starts + offsets]
        outer_columns = [
            (c.take(probe_idx) if isinstance(c, ColumnVector)
             else [c[i] for i in probe_idx])
            for c in (batch.columns if batch.width else [])
        ]
        inner_columns = [
            (c.take(build_pos) if isinstance(c, ColumnVector)
             else [c[i] for i in build_pos])
            for c in vec["columns"]
        ]
        return Batch(outer_columns + inner_columns, pairs), pairs


class MergeJoinOp(Operator):
    """Merge join over inputs already sorted on the join keys."""

    def __init__(self, ctx: RuntimeContext, outer: Operator, inner: Operator,
                 outer_positions: Sequence[int],
                 inner_positions: Sequence[int],
                 residual: Optional[Expr], schema: Schema):
        super().__init__(ctx, schema)
        self.outer = outer
        self.inner = inner
        self.outer_positions = list(outer_positions)
        self.inner_positions = list(inner_positions)
        self.residual = residual

    def rows(self) -> Iterator[Row]:
        bind_memberships(self.residual, self.ctx)
        left = list(self.outer.rows())
        right = list(self.inner.rows())
        held = (len(left) * self.outer.schema.row_width()
                + len(right) * self.inner.schema.row_width())
        self.ctx.mem_acquire(held)
        self.ctx.charge_cpu(len(left) + len(right))
        lkey = lambda row: _sort_key(
            tuple(row[p] for p in self.outer_positions))
        rkey = lambda row: _sort_key(
            tuple(row[p] for p in self.inner_positions))
        try:
            i = j = 0
            while i < len(left) and j < len(right):
                lval = tuple(left[i][p] for p in self.outer_positions)
                rval = tuple(right[j][p] for p in self.inner_positions)
                if not _null_free(lval):
                    i += 1
                    continue
                if not _null_free(rval):
                    j += 1
                    continue
                if lkey(left[i]) < rkey(right[j]):
                    i += 1
                elif lkey(left[i]) > rkey(right[j]):
                    j += 1
                else:
                    # gather the equal-key groups on both sides
                    i2 = i
                    while i2 < len(left) and tuple(
                        left[i2][p] for p in self.outer_positions
                    ) == lval:
                        i2 += 1
                    j2 = j
                    while j2 < len(right) and tuple(
                        right[j2][p] for p in self.inner_positions
                    ) == rval:
                        j2 += 1
                    for a in range(i, i2):
                        for b in range(j, j2):
                            self.ctx.charge_cpu(1)
                            combined = left[a] + right[b]
                            if self.residual is not None and \
                                    self.residual.eval(combined) is not True:
                                continue
                            yield combined
                    i, j = i2, j2
        finally:
            self.ctx.mem_release(held)


class BlockNLJoinOp(Operator):
    """Block nested loops over a materialized inner."""

    def __init__(self, ctx: RuntimeContext, outer: Operator, inner: Operator,
                 outer_positions: Sequence[int],
                 inner_positions: Sequence[int],
                 residual: Optional[Expr], schema: Schema):
        super().__init__(ctx, schema)
        self.outer = outer
        self.inner = inner
        self.outer_positions = list(outer_positions)
        self.inner_positions = list(inner_positions)
        self.residual = residual

    def rows(self) -> Iterator[Row]:
        bind_memberships(self.residual, self.ctx)
        inner_rows = list(self.inner.rows())
        inner_held = len(inner_rows) * self.inner.schema.row_width()
        self.ctx.mem_acquire(inner_held)
        inner_pages = pages_for(len(inner_rows),
                                self.inner.schema.row_width())
        inner_spilled = not self.ctx.fits(inner_pages)
        outer_width = self.outer.schema.row_width()
        block_pages = max(1, self.ctx.memory_pages - 2)
        rows_per_block = max(
            1, int(block_pages * max(1, 4096 // max(1, outer_width)))
        )
        block: List[Row] = []

        # When the join is (partly) equi, matches can be located through a
        # hash table without changing the *charged* cost: nested loops
        # still pays one CPU step per (outer, inner) pair. This keeps the
        # simulator honest while avoiding Python-level quadratic time.
        inner_index = None
        if self.inner_positions:
            inner_index = {}
            for inner_row in inner_rows:
                key = tuple(inner_row[p] for p in self.inner_positions)
                if _null_free(key):
                    inner_index.setdefault(key, []).append(inner_row)

        def flush(block_rows: List[Row]) -> Iterator[Row]:
            if inner_spilled:
                self.ctx.ledger.charge_reads(inner_pages)
            self.ctx.charge_cpu(len(inner_rows))
            if inner_index is not None:
                # bulk-charge the pairwise comparisons NLJ would perform
                self.ctx.charge_cpu(len(block_rows) * len(inner_rows))
                for outer_row in block_rows:
                    okey = tuple(outer_row[p] for p in self.outer_positions)
                    if not _null_free(okey):
                        continue
                    for inner_row in inner_index.get(okey, ()):
                        combined = outer_row + inner_row
                        if self.residual is not None and \
                                self.residual.eval(combined) is not True:
                            continue
                        yield combined
                return
            for outer_row in block_rows:
                for inner_row in inner_rows:
                    self.ctx.charge_cpu(1)
                    combined = outer_row + inner_row
                    if self.residual is not None and \
                            self.residual.eval(combined) is not True:
                        continue
                    yield combined

        try:
            for outer_row in self.outer.rows():
                block.append(outer_row)
                if len(block) >= rows_per_block:
                    for result in flush(block):
                        yield result
                    block = []
            if block:
                for result in flush(block):
                    yield result
        finally:
            self.ctx.mem_release(inner_held)


class IndexNLJoinOp(Operator):
    """Index nested loops; with a remote inner this is "fetch matches"."""

    def __init__(self, ctx: RuntimeContext, outer: Operator, table: Table,
                 inner_schema: Schema, index_column: str,
                 outer_position: int, residual: Optional[Expr],
                 schema: Schema, remote: bool = False,
                 local_site: Optional[str] = None,
                 remote_site: Optional[str] = None):
        super().__init__(ctx, schema)
        self.outer = outer
        self.table = table
        self.inner_schema = inner_schema
        self.index_column = index_column
        self.outer_position = outer_position
        self.residual = residual
        self.remote = remote
        self.local_site = local_site
        self.remote_site = remote_site

    def rows(self) -> Iterator[Row]:
        bind_memberships(self.residual, self.ctx)
        index = self.table.index_on(self.index_column)
        if index is None:
            raise ExecutionError(
                "no index on %s.%s" % (self.table.name, self.index_column)
            )
        width = self.inner_schema.row_width()
        for outer_row in self.outer.rows():
            key = outer_row[self.outer_position]
            if key is None:
                continue
            positions = self.table.visible_positions(index.probe(key))
            self.ctx.ledger.charge_reads(1.0 + _probe_data_pages(
                self.table, self.index_column, len(positions)))
            self.ctx.charge_cpu(len(positions) + 1)
            if self.remote:
                self.ctx.charge_probe_roundtrip(
                    self.local_site, self.remote_site,
                    16, len(positions) * width,
                )
            for position in positions:
                combined = outer_row + self.table.row_at(position)
                if self.residual is not None and \
                        self.residual.eval(combined) is not True:
                    continue
                yield combined


class NestedIterationOp(Operator):
    """Correlated per-outer-row execution of a parameterized template."""

    def __init__(self, ctx: RuntimeContext, outer: Operator,
                 template: Operator, param_id: str,
                 bind_positions: Sequence[int], filter_schema: Schema,
                 residual: Optional[Expr], schema: Schema):
        super().__init__(ctx, schema)
        self.outer = outer
        self.template = template
        self.param_id = param_id
        self.bind_positions = list(bind_positions)
        self.filter_schema = filter_schema
        self.residual = residual

    def rows(self) -> Iterator[Row]:
        bind_memberships(self.residual, self.ctx)
        # Figure 6's "optimized nested iteration": consecutive outer rows
        # with the same binding reuse the previous probe's result, so a
        # sorted outer pays one template run per *distinct* binding.
        last_key = object()
        cached: List[Row] = []
        for outer_row in self.outer.rows():
            self.ctx.charge_cpu(1)
            key = tuple(outer_row[p] for p in self.bind_positions)
            if not _null_free(key):
                continue
            if key != last_key:
                temp = TempTable([key], self.filter_schema)
                self.ctx.bind_filter_set(self.param_id, temp)
                cached = list(self.template.rows())
                last_key = key
            for inner_row in cached:
                combined = outer_row + inner_row
                if self.residual is not None and \
                        self.residual.eval(combined) is not True:
                    continue
                yield combined


class FilterJoinOp(Operator):
    """The Filter Join (Definition 2.1), charging Table 1's components.

    ``measured_components`` records each component's cost delta so the
    Table 1 experiment can print estimate vs. measured side by side.
    """

    def __init__(self, ctx: RuntimeContext, outer: Operator,
                 template: Operator, param_id: str,
                 bind_positions: Sequence[int], filter_schema: Schema,
                 final_outer_positions: Sequence[int],
                 final_inner_positions: Sequence[int],
                 residual: Optional[Expr], schema: Schema,
                 materialize_production: bool = True,
                 lossy: bool = False, bloom_bits: int = 64 * 1024,
                 ship_filter: bool = False,
                 site: Optional[str] = None,
                 filter_site: Optional[str] = None):
        super().__init__(ctx, schema)
        self.outer = outer
        self.template = template
        self.site = site
        self.filter_site = filter_site
        self.param_id = param_id
        self.bind_positions = list(bind_positions)
        self.filter_schema = filter_schema
        self.final_outer_positions = list(final_outer_positions)
        self.final_inner_positions = list(final_inner_positions)
        self.residual = residual
        self.materialize_production = materialize_production
        self.lossy = lossy
        self.bloom_bits = bloom_bits
        self.ship_filter = ship_filter
        self.measured_components = {}
        # filter effectiveness, filled in by rows() and lifted into the
        # operator's trace span: how many production rows there were, how
        # many distinct keys the filter carried, and how many inner rows
        # survived the restriction
        self.production_rows: Optional[int] = None
        self.filter_set_size: Optional[int] = None
        self.restricted_rows: Optional[int] = None

    def _component(self, name: str, before) -> None:
        delta = self.ctx.ledger.delta(before)
        self.measured_components[name] = delta.total(self.ctx.params)

    def rows(self) -> Iterator[Row]:
        bind_memberships(self.residual, self.ctx)
        ledger = self.ctx.ledger
        outer_width = self.outer.schema.row_width()

        # 1. Production set (JoinCost_P + ProductionCost_P)
        before = ledger.snapshot()
        production = list(self.outer.rows())
        self.ctx.mem_acquire(len(production) * outer_width)
        self._component("JoinCost_P", before)
        before = ledger.snapshot()
        if self.materialize_production:
            temp_pages = self.ctx.charge_materialize(
                len(production), outer_width
            )
            production_spilled = not self.ctx.fits(temp_pages)
        else:
            production_spilled = False
        self._component("ProductionCost_P", before)

        # 2. Distinct projection into the filter set (ProjCost_F)
        before = ledger.snapshot()
        keys = set()
        for row in production:
            self.ctx.charge_cpu(1)
            key = tuple(row[p] for p in self.bind_positions)
            if _null_free(key):
                keys.add(key)
        self._component("ProjCost_F", before)
        self.production_rows = len(production)
        self.filter_set_size = len(keys)

        # 3. Make the filter available (AvailCost_F)
        before = ledger.snapshot()
        if self.lossy:
            bloom = BloomFilter(self.bloom_bits,
                                expected_items=max(1, len(keys)))
            for key in keys:
                self.ctx.charge_cpu(1)
                bloom.add(key if len(key) > 1 else key[0])
            self.ctx.bind_membership(self.param_id, bloom)
            if self.ship_filter:
                self.ctx.charge_message(bloom.size_bytes,
                                        from_site=self.site,
                                        to_site=self.filter_site)
        else:
            temp = TempTable(sorted(keys, key=_sort_key),
                             self.filter_schema)
            self.ctx.mem_acquire(
                len(keys) * self.filter_schema.row_width())
            self.ctx.bind_filter_set(self.param_id, temp)
            if self.ship_filter:
                self.ctx.charge_ship(len(keys),
                                     self.filter_schema.row_width(),
                                     from_site=self.site,
                                     to_site=self.filter_site)
        self._component("AvailCost_F", before)

        # 4. Restricted inner (FilterCost_Rk). Any ship-home of a remote
        # restriction is performed by the template's own Ship operator,
        # so AvailCost_Rk' is zero here (it pipelines into the join).
        before = ledger.snapshot()
        restricted = list(self.template.rows())
        self.ctx.mem_acquire(
            len(restricted) * self.template.schema.row_width())
        self._component("FilterCost_Rk", before)
        self.measured_components["AvailCost_Rk'"] = 0.0
        self.restricted_rows = len(restricted)

        # 5. Final join (FinalJoinCost): hash join production x restricted
        before = ledger.snapshot()
        if self.materialize_production:
            self.ctx.charge_cpu(len(production))
            if production_spilled:
                ledger.charge_reads(pages_for(len(production), outer_width))
        else:
            # recompute the production set instead of re-reading a temp
            production = list(self.outer.rows())
        table = {}
        for row in restricted:
            self.ctx.charge_cpu(1)
            key = tuple(row[p] for p in self.final_inner_positions)
            if _null_free(key):
                table.setdefault(key, []).append(row)
        build_pages = pages_for(len(restricted),
                                self.template.schema.row_width())
        matches: List[Row] = []
        for outer_row in production:
            self.ctx.charge_cpu(1)
            key = tuple(outer_row[p] for p in self.final_outer_positions)
            if not _null_free(key):
                continue
            for inner_row in table.get(key, ()):
                self.ctx.charge_cpu(1)
                combined = outer_row + inner_row
                if self.residual is not None and \
                        self.residual.eval(combined) is not True:
                    continue
                matches.append(combined)
        if not self.ctx.fits(build_pages):
            probe_pages = pages_for(len(production), outer_width)
            ledger.charge_writes(build_pages + probe_pages)
            ledger.charge_reads(build_pages + probe_pages)
        self._component("FinalJoinCost", before)
        return iter(matches)

    def batches(self) -> Iterator[Batch]:
        """Vectorized Filter Join: same phases, same Table 1 component
        charges, with the production/template subtrees pulled as batches
        and the final hash join evaluated batch-at-a-time."""
        bind_memberships(self.residual, self.ctx)
        residual = compile_optional_filter(self.residual,
                                           stats=self.kernel_counter())
        ledger = self.ctx.ledger
        outer_width = self.outer.schema.row_width()

        # 1. Production set (JoinCost_P + ProductionCost_P)
        before = ledger.snapshot()
        production = self.outer.drain()
        self.ctx.mem_acquire(len(production) * outer_width)
        self._component("JoinCost_P", before)
        before = ledger.snapshot()
        if self.materialize_production:
            temp_pages = self.ctx.charge_materialize(
                len(production), outer_width
            )
            production_spilled = not self.ctx.fits(temp_pages)
        else:
            production_spilled = False
        self._component("ProductionCost_P", before)

        # 2. Distinct projection into the filter set (ProjCost_F)
        before = ledger.snapshot()
        self.ctx.charge_cpu(len(production))
        keys = set()
        for row in production:
            key = tuple(row[p] for p in self.bind_positions)
            if _null_free(key):
                keys.add(key)
        self._component("ProjCost_F", before)
        self.production_rows = len(production)
        self.filter_set_size = len(keys)

        # 3. Make the filter available (AvailCost_F)
        before = ledger.snapshot()
        if self.lossy:
            bloom = BloomFilter(self.bloom_bits,
                                expected_items=max(1, len(keys)))
            self.ctx.charge_cpu(len(keys))
            for key in keys:
                bloom.add(key if len(key) > 1 else key[0])
            self.ctx.bind_membership(self.param_id, bloom)
            if self.ship_filter:
                self.ctx.charge_message(bloom.size_bytes,
                                        from_site=self.site,
                                        to_site=self.filter_site)
        else:
            temp = TempTable(sorted(keys, key=_sort_key),
                             self.filter_schema)
            self.ctx.mem_acquire(
                len(keys) * self.filter_schema.row_width())
            self.ctx.bind_filter_set(self.param_id, temp)
            if self.ship_filter:
                self.ctx.charge_ship(len(keys),
                                     self.filter_schema.row_width(),
                                     from_site=self.site,
                                     to_site=self.filter_site)
        self._component("AvailCost_F", before)

        # 4. Restricted inner (FilterCost_Rk); AvailCost_Rk' pipelines
        before = ledger.snapshot()
        restricted = self.template.drain()
        self.ctx.mem_acquire(
            len(restricted) * self.template.schema.row_width())
        self._component("FilterCost_Rk", before)
        self.measured_components["AvailCost_Rk'"] = 0.0
        self.restricted_rows = len(restricted)

        # 5. Final join (FinalJoinCost): hash join production x restricted
        before = ledger.snapshot()
        if self.materialize_production:
            self.ctx.charge_cpu(len(production))
            if production_spilled:
                ledger.charge_reads(pages_for(len(production), outer_width))
        else:
            production = self.outer.drain()
        self.ctx.charge_cpu(len(restricted))
        table = {}
        for row in restricted:
            key = tuple(row[p] for p in self.final_inner_positions)
            if _null_free(key):
                table.setdefault(key, []).append(row)
        build_pages = pages_for(len(restricted),
                                self.template.schema.row_width())
        self.ctx.charge_cpu(len(production))
        candidates: List[Row] = []
        pairs = 0
        for outer_row in production:
            key = tuple(outer_row[p] for p in self.final_outer_positions)
            if not _null_free(key):
                continue
            bucket = table.get(key)
            if bucket:
                pairs += len(bucket)
                for inner_row in bucket:
                    candidates.append(outer_row + inner_row)
        self.ctx.charge_cpu(pairs)
        if not self.ctx.fits(build_pages):
            probe_pages = pages_for(len(production), outer_width)
            ledger.charge_writes(build_pages + probe_pages)
            ledger.charge_reads(build_pages + probe_pages)
        self._component("FinalJoinCost", before)
        out_width = len(self.schema)
        for batch in batches_from_list(candidates, out_width):
            if residual is not None:
                batch = batch.select(residual(batch))
            if batch.n:
                yield batch


class FunctionJoinOp(Operator):
    """Join with a user-defined (function-backed) relation.

    The three modes mirror Figure 6's UDF column: repeated invocation,
    memoized invocation, and the Filter Join (distinct arguments invoked
    consecutively, then joined back).
    """

    def __init__(self, ctx: RuntimeContext, outer: Operator,
                 function_relation, bind_positions: Sequence[int],
                 mode: str, residual: Optional[Expr], schema: Schema):
        super().__init__(ctx, schema)
        self.outer = outer
        self.fn = function_relation
        self.bind_positions = list(bind_positions)
        self.mode = mode
        self.residual = residual
        self.invocation_count = 0

    def _invoke(self, args: tuple, consecutive: bool = False) -> List[tuple]:
        factor = self.fn.locality_factor if consecutive else 1.0
        self.ctx.ledger.charge_invocation(
            self.fn.cost_per_invocation * factor
        )
        self.invocation_count += 1
        results = self.fn.invoke(args)
        return [args + tuple(r) for r in results]

    def rows(self) -> Iterator[Row]:
        bind_memberships(self.residual, self.ctx)

        def emit(outer_row: Row, fn_rows: List[tuple]) -> Iterator[Row]:
            for fn_row in fn_rows:
                combined = outer_row + fn_row
                if self.residual is not None and \
                        self.residual.eval(combined) is not True:
                    continue
                yield combined

        if self.mode == "repeated":
            for outer_row in self.outer.rows():
                self.ctx.charge_cpu(1)
                args = tuple(outer_row[p] for p in self.bind_positions)
                if not _null_free(args):
                    continue
                for result in emit(outer_row, self._invoke(args)):
                    yield result
            return
        if self.mode == "memo":
            cache = {}
            for outer_row in self.outer.rows():
                self.ctx.charge_cpu(1)
                args = tuple(outer_row[p] for p in self.bind_positions)
                if not _null_free(args):
                    continue
                if args not in cache:
                    cache[args] = self._invoke(args)
                for result in emit(outer_row, cache[args]):
                    yield result
            return
        # filter mode: materialize, distinct args, consecutive invocation
        production = list(self.outer.rows())
        self.ctx.charge_materialize(len(production),
                                    self.outer.schema.row_width())
        args_seen = set()
        for row in production:
            self.ctx.charge_cpu(1)
            args = tuple(row[p] for p in self.bind_positions)
            if _null_free(args):
                args_seen.add(args)
        results = {}
        for args in sorted(args_seen, key=_sort_key):
            results[args] = self._invoke(args, consecutive=True)
        for outer_row in production:
            self.ctx.charge_cpu(1)
            args = tuple(outer_row[p] for p in self.bind_positions)
            if not _null_free(args):
                continue
            for result in emit(outer_row, results[args]):
                yield result
