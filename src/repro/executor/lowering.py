"""Lowering: physical plan nodes -> runnable operator trees.

Name resolution happens here, once: every expression is resolved against
the concrete input schema of the operator that will evaluate it, so the
operators themselves work purely positionally.
"""

from __future__ import annotations

import time
from typing import List

from ..errors import PlanError
from ..optimizer.plans import (
    AggregateNode,
    DistinctNode,
    FilterJoinNode,
    FilterNode,
    FilterSetScanNode,
    FixpointNode,
    FunctionJoinNode,
    IndexScanNode,
    JoinMethod,
    JoinNode,
    LimitNode,
    MaterializeNode,
    NestedIterationNode,
    PlanNode,
    ProjectNode,
    RelabelNode,
    SeqScanNode,
    ShipNode,
    SortNode,
    UnionNode,
)
from ..storage import columnar
from ..storage.schema import Column, Schema
from .operators import (
    AggregateOp,
    BlockNLJoinOp,
    DistinctOp,
    FilterJoinOp,
    FilterOp,
    FilterSetScanOp,
    FixpointOp,
    FunctionJoinOp,
    HashJoinOp,
    IndexNLJoinOp,
    IndexScanOp,
    LimitOp,
    MaterializeOp,
    MergeJoinOp,
    NestedIterationOp,
    Operator,
    ProjectOp,
    RelabelOp,
    SeqScanOp,
    ShipOp,
    SortOp,
    UnionOp,
)
from .runtime import RuntimeContext


def lower(node: PlanNode, ctx: RuntimeContext) -> Operator:
    """Lower a physical plan into an operator tree bound to ``ctx``."""
    return _Lowering(ctx).lower(node)


#: valid execution engines: tuple-at-a-time Volcano iterators, or the
#: vectorized batch protocol (column-oriented batches of ~1024 rows)
ENGINES = ("iterator", "vector")


def execute(root: Operator, engine: str = "iterator") -> List[tuple]:
    """Run a lowered operator tree to completion under ``engine``.

    Both engines drive the *same* operator tree — the engine only
    selects which protocol the root is drained through (``rows()`` or
    ``batches()``); operators without a native batch implementation
    transparently bridge to their iterator form, charging identically.
    """
    return execute_collect(root, engine)[0]


def execute_collect(root: Operator, engine: str = "iterator"):
    """Like :func:`execute`, but additionally returns the root's output
    columns — ``(rows, columns_or_None)``.

    Under the vector engine the root's batches are column-major
    already; concatenating them per column preserves the typed arrays
    (and string dictionaries) that :meth:`QueryResult.column` then
    exposes zero-copy. The rows list is byte-identical to the plain
    :func:`execute` result — columns are retained *next to* the row
    materialization, never instead of it. The iterator engine (and an
    empty result) returns None for the columns.
    """
    if engine == "vector":
        batches = list(root.batches())
        rows: List[tuple] = []
        for batch in batches:
            rows.extend(batch.rows())
        width = len(root.schema)
        columns = None
        if batches and width:
            columns = [
                columnar.concat_columns(
                    [batch.column(j) for batch in batches])
                for j in range(width)
            ]
        return rows, columns
    if engine == "iterator":
        return list(root.rows()), None
    raise PlanError(
        "unknown engine %r (expected one of %s)"
        % (engine, ", ".join(ENGINES))
    )


class SpanOperator(Operator):
    """Transparent wrapper recording one plan node's execution into its
    trace span.

    The span is pushed onto the trace's stack around the initial
    ``rows()`` call (eager operators like FilterJoinOp do all their work
    there) *and* around every advancement of the resulting iterator, and
    popped before each row is yielded — so every ledger charge routed by
    the tee ledger lands on the innermost operator actually doing the
    work, exactly once. Wall time accumulates inclusively over the same
    windows; the builder derives self-time at finalize.
    """

    def __init__(self, inner: Operator, plan_node: PlanNode, trace):
        super().__init__(inner.ctx, inner.schema)
        self.inner = inner
        self.plan_node = plan_node
        self.trace = trace
        self.span = trace.span_for_node(plan_node, inner)
        # keep the structural attributes visible for tree walkers
        for attr in ("child", "outer", "template", "base"):
            if hasattr(inner, attr):
                setattr(self, attr, getattr(inner, attr))

    def rows(self):
        span = self.span
        trace = self.trace
        clock = time.perf_counter
        span.executions += 1
        trace.push(span)
        started = clock()
        try:
            iterator = iter(self.inner.rows())
        finally:
            span.wall_seconds += clock() - started
            trace.pop()
        while True:
            trace.push(span)
            started = clock()
            try:
                try:
                    row = next(iterator)
                except StopIteration:
                    return
            finally:
                span.wall_seconds += clock() - started
                trace.pop()
            span.actual_rows += 1
            yield row

    def batches(self):
        """Vectorized twin of :meth:`rows`: the span brackets every
        *batch* advancement, so bulk charges land on the operator doing
        the work and ``actual_rows`` counts rows, not batches."""
        span = self.span
        trace = self.trace
        clock = time.perf_counter
        span.executions += 1
        trace.push(span)
        started = clock()
        try:
            iterator = iter(self.inner.batches())
        finally:
            span.wall_seconds += clock() - started
            trace.pop()
        while True:
            trace.push(span)
            started = clock()
            try:
                try:
                    batch = next(iterator)
                except StopIteration:
                    return
            finally:
                span.wall_seconds += clock() - started
                trace.pop()
            span.actual_rows += batch.n
            span.batches += 1
            yield batch


def lower_traced(node: PlanNode, ctx: RuntimeContext):
    """Lower with per-node row counting (compatibility wrapper).

    Returns (root operator, {id(plan node): span}) — after execution,
    each span holds the actual row count (``rows_out``) and execution
    count for its node. New code should trace through
    ``db.sql(..., trace=True)`` and read ``QueryResult.trace`` instead;
    this shim rides on the same span machinery without installing the
    tee ledger (row counts only, no per-span cost attribution).
    """
    from ..obs.trace import TraceBuilder

    builder = TraceBuilder()
    ctx.trace = builder
    try:
        root = lower(node, ctx)
    finally:
        ctx.trace = None
    return root, builder._by_node


class _Lowering:
    def __init__(self, ctx: RuntimeContext):
        self.ctx = ctx
        self.trace = getattr(ctx, "trace", None)

    def lower(self, node: PlanNode) -> Operator:
        method = getattr(self, "_lower_%s" % type(node).__name__, None)
        if method is None:
            raise PlanError("cannot lower plan node %r" % type(node).__name__)
        op = method(node)
        if self.trace is not None:
            op = SpanOperator(op, node, self.trace)
        return op

    # ----------------------------------------------------------------- leaves

    def _lower_SeqScanNode(self, node: SeqScanNode) -> Operator:
        predicate = (
            node.predicate.resolve(node.schema)
            if node.predicate is not None else None
        )
        return SeqScanOp(self.ctx, node.relation.table, node.schema,
                         predicate)

    def _lower_IndexScanNode(self, node: IndexScanNode) -> Operator:
        residual = (
            node.residual.resolve(node.schema)
            if node.residual is not None else None
        )
        column = node.column.split(".", 1)[1]
        return IndexScanOp(self.ctx, node.relation.table, node.schema,
                           column, node.op, node.value, residual)

    def _lower_FilterSetScanNode(self, node: FilterSetScanNode) -> Operator:
        return FilterSetScanOp(self.ctx, node.param_id, node.schema)

    # ------------------------------------------------------------ unary nodes

    def _lower_FilterNode(self, node: FilterNode) -> Operator:
        child = self.lower(node.child)
        return FilterOp(self.ctx, child,
                        node.predicate.resolve(child.schema))

    def _lower_ProjectNode(self, node: ProjectNode) -> Operator:
        child = self.lower(node.child)
        exprs = [item.expr.resolve(child.schema) for item in node.items]
        return ProjectOp(self.ctx, child, exprs, node.schema)

    def _lower_DistinctNode(self, node: DistinctNode) -> Operator:
        return DistinctOp(self.ctx, self.lower(node.child))

    def _lower_SortNode(self, node: SortNode) -> Operator:
        child = self.lower(node.child)
        keys = [
            (child.schema.index_of(name), ascending)
            for name, ascending in node.keys
        ]
        return SortOp(self.ctx, child, keys)

    def _lower_LimitNode(self, node: LimitNode) -> Operator:
        return LimitOp(self.ctx, self.lower(node.child), node.limit)

    def _lower_AggregateNode(self, node: AggregateNode) -> Operator:
        child = self.lower(node.child)
        group_positions = [
            child.schema.index_of(name) for name in node.group_names
        ]
        aggregates = [
            (spec,
             spec.argument.resolve(child.schema)
             if spec.argument is not None else None)
            for spec in node.aggregates
        ]
        return AggregateOp(self.ctx, child, group_positions, aggregates,
                           node.schema)

    def _lower_MaterializeNode(self, node: MaterializeNode) -> Operator:
        return MaterializeOp(self.ctx, self.lower(node.child))

    def _lower_RelabelNode(self, node: RelabelNode) -> Operator:
        return RelabelOp(self.ctx, self.lower(node.child), node.schema)

    def _lower_ShipNode(self, node: ShipNode) -> Operator:
        return ShipOp(self.ctx, self.lower(node.child),
                      from_site=node.from_site, to_site=node.to_site)

    def _lower_UnionNode(self, node: UnionNode) -> Operator:
        return UnionOp(self.ctx, self.lower(node.left),
                       self.lower(node.right), node.schema, node.distinct)

    def _lower_FixpointNode(self, node: FixpointNode) -> Operator:
        return FixpointOp(self.ctx, self.lower(node.base),
                          self.lower(node.template), node.delta_param,
                          node.schema, node.distinct)

    # ------------------------------------------------------------- join nodes

    def _positions(self, schema: Schema, names) -> List[int]:
        return [schema.index_of(name) for name in names]

    def _lower_JoinNode(self, node: JoinNode) -> Operator:
        outer = self.lower(node.outer)
        inner = self.lower(node.inner)
        combined = outer.schema.concat(inner.schema)
        residual = (
            node.residual.resolve(combined)
            if node.residual is not None else None
        )
        outer_positions = self._positions(
            outer.schema, [o for o, _ in node.equi_pairs]
        )
        inner_positions = self._positions(
            inner.schema, [i for _, i in node.equi_pairs]
        )
        if node.method == JoinMethod.HASH:
            return HashJoinOp(self.ctx, outer, inner, outer_positions,
                              inner_positions, residual, node.schema,
                              semi=node.semi)
        if node.method == JoinMethod.MERGE:
            return MergeJoinOp(self.ctx, outer, inner, outer_positions,
                               inner_positions, residual, node.schema)
        if node.method == JoinMethod.NLJ:
            return BlockNLJoinOp(self.ctx, outer, inner, outer_positions,
                                 inner_positions, residual, node.schema)
        if node.method == JoinMethod.INL:
            if node.index_column is None:
                raise PlanError("INL join without an index column")
            pair = next(
                (p for p in node.equi_pairs if p[1] == node.index_column),
                None,
            )
            if pair is None:
                raise PlanError("INL join: no pair for the index column")
            # non-probe equality pairs must be checked as residual
            extra = [p for p in node.equi_pairs if p is not pair]
            if extra:
                from ..expr.nodes import ColumnRef, Comparison, conjoin
                extras = [
                    Comparison("=", ColumnRef(o), ColumnRef(i))
                    for o, i in extra
                ]
                combined_pred = conjoin(
                    extras + ([node.residual] if node.residual else [])
                )
                residual = combined_pred.resolve(combined)
            inner_node = node.inner
            if not isinstance(inner_node, SeqScanNode):
                raise PlanError("INL join requires a base-table inner")
            remote = (inner_node.relation.site is not None
                      and inner_node.relation.site != node.site)
            return IndexNLJoinOp(
                self.ctx, outer, inner_node.relation.table,
                inner_node.schema, node.index_column.split(".", 1)[1],
                outer.schema.index_of(pair[0]), residual, node.schema,
                remote=remote, local_site=node.site,
                remote_site=inner_node.relation.site,
            )
        raise PlanError("unknown join method %r" % node.method)

    def _filter_schema(self, node, outer_schema: Schema) -> Schema:
        """Schema of the filter set, derived from the bind pairs."""
        return Schema(
            Column(filter_col, outer_schema.column(outer_col).dtype)
            for outer_col, filter_col in node.bind_pairs
        )

    @staticmethod
    def _remote_site(plan: PlanNode):
        """The remote site a filter set must be shipped to: the first
        non-local site found in the template subtree (a ship-home's
        origin, or a remote scan's placement)."""
        stack = [plan]
        while stack:
            node = stack.pop()
            from_site = getattr(node, "from_site", None)
            if from_site is not None:
                return from_site
            if node.site is not None:
                return node.site
            stack.extend(node.children())
        return None

    def _lower_NestedIterationNode(self, node: NestedIterationNode) -> Operator:
        outer = self.lower(node.outer)
        template = self.lower(node.inner_template)
        combined = outer.schema.concat(template.schema)
        residual = (
            node.residual.resolve(combined)
            if node.residual is not None else None
        )
        bind_positions = self._positions(
            outer.schema, [o for o, _ in node.bind_pairs]
        )
        return NestedIterationOp(
            self.ctx, outer, template, node.param_id, bind_positions,
            self._filter_schema(node, outer.schema), residual, node.schema,
        )

    def _lower_FilterJoinNode(self, node: FilterJoinNode) -> Operator:
        outer = self.lower(node.outer)
        template = self.lower(node.inner_template)
        combined = outer.schema.concat(template.schema)
        residual = (
            node.residual.resolve(combined)
            if node.residual is not None else None
        )
        bind_positions = self._positions(
            outer.schema, [o for o, _ in node.bind_pairs]
        )
        final_outer = self._positions(
            outer.schema, [o for o, _ in node.final_equi_pairs]
        )
        final_inner = self._positions(
            template.schema, [i for _, i in node.final_equi_pairs]
        )
        return FilterJoinOp(
            self.ctx, outer, template, node.param_id, bind_positions,
            self._filter_schema(node, outer.schema),
            final_outer, final_inner, residual, node.schema,
            materialize_production=node.materialize_production,
            lossy=node.lossy, bloom_bits=node.bloom_bits,
            ship_filter=node.ship_filter,
            site=node.site,
            filter_site=(self._remote_site(node.inner_template)
                         if node.ship_filter else None),
        )

    def _lower_FunctionJoinNode(self, node: FunctionJoinNode) -> Operator:
        outer = self.lower(node.outer)
        fn = node.function_relation
        combined = outer.schema.concat(fn.output_schema)
        residual = (
            node.residual.resolve(combined)
            if node.residual is not None else None
        )
        bind_positions = self._positions(
            outer.schema, [o for o, _ in node.bind_pairs]
        )
        return FunctionJoinOp(self.ctx, outer, fn, bind_positions,
                              node.mode, residual, node.schema)
