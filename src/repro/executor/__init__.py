"""Physical executor: runtime context, operators, plan lowering."""

from .lowering import lower
from .operators import Operator, bind_memberships
from .runtime import RuntimeContext, TempTable

__all__ = [
    "Operator",
    "RuntimeContext",
    "TempTable",
    "bind_memberships",
    "lower",
]
