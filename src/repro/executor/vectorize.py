"""Columnar batches and the batch-at-a-time expression compiler.

The vector engine moves data between operators as :class:`Batch` objects
— column-oriented slices of ~:data:`BATCH_ROWS` rows. A column is either
a plain Python sequence (a join output reassembled from tuples, the
iterator-engine bridge) or a typed numpy
:class:`~repro.storage.columnar.ColumnVector` — values array + validity
bitmap (+ string dictionary) — flowing straight out of columnar table
storage. Scalar expression trees are *compiled once per operator
execution* into column-level closures (:func:`compile_expr`); over
ColumnVector operands they evaluate as numpy kernels (mask-based
three-valued logic, dictionary-code comparisons for strings), and fall
back to the per-element path whenever exact Python semantics cannot be
guaranteed wholesale (mixed-type arithmetic, int64 overflow risk,
unhashable literals, floats as hash keys).

Two invariants tie the vector engine to the iterator engine:

- **Value fidelity.** Rows materialized from columns hold exactly the
  Python objects the storage layer holds (int64 ↔ int, float64 ↔ float,
  dictionary code ↔ the stored str), and every kernel implements the
  same SQL three-valued logic — and raises the same errors — as
  ``Expr.eval``, so reassembled rows are byte-identical to the iterator
  engine's output. Any value or operation that cannot round-trip
  exactly refuses the kernel and runs per-element.
- **Chunked cost parity.** Batch operators charge the same ledger unit
  counts as their tuple-at-a-time twins, just in bulk (one
  ``charge_cpu(n)`` per batch instead of ``n`` calls of 1); every count
  is an exact integer, so the totals — and therefore estimated-vs-
  measured comparisons — are identical between engines.
"""

from __future__ import annotations

import operator as _operator
import sys
import warnings
from itertools import compress
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from ..errors import ExecutionError
from ..expr.nodes import (
    Arithmetic,
    BooleanExpr,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Parameter,
    RuntimeMembership,
)
from ..storage import columnar
from ..storage.columnar import ColumnVector

np = columnar.np  # None when numpy is unavailable (kernels disabled)

#: target rows per batch; chosen so a batch of typical rows stays within
#: L2-cache-ish sizes while amortizing per-batch interpreter overhead
BATCH_ROWS = 1024

# once-per-call-site registry for the legacy Batch(rows=...) shim
_warned_batch_sites = set()


def _as_list(column) -> Sequence:
    """A column piece as a plain Python sequence (exact objects)."""
    if isinstance(column, ColumnVector):
        return column.tolist()
    return column


class Batch:
    """A slice of rows with lazy dual representation.

    A batch is backed by *either* row tuples (:meth:`from_rows` — e.g.
    a join's output reassembled from tuples) *or* columns (the
    constructor — columnar storage slices, a projection's computed
    outputs), and converts on demand: :attr:`columns` transposes once
    and caches, :meth:`column` extracts a single column without paying
    for a full transpose, and :meth:`rows` is free on row-backed
    batches. A column is a plain sequence or a
    :class:`~repro.storage.columnar.ColumnVector`; late materialization
    means ColumnVector columns stay arrays through filters, projections
    and joins, and turn into Python objects only when :meth:`rows` is
    called at a pipeline breaker.

    Columns and row lists are treated as immutable by every operator —
    transformations build new sequences — so both may be shared freely
    between batches.
    """

    __slots__ = ("_columns", "_rows", "n", "width")

    def __init__(self, columns: Sequence[Sequence] = None, n: int = None,
                 *, rows: Sequence[tuple] = None, width: int = None):
        if rows is not None:
            # Legacy row-backed constructor path (pre-columnar API).
            frame = sys._getframe(1)
            site = (frame.f_code.co_filename, frame.f_lineno)
            if site not in _warned_batch_sites:
                _warned_batch_sites.add(site)
                warnings.warn(
                    "Batch(rows=...) is deprecated; use "
                    "Batch.from_rows(rows, width) (or pass typed "
                    "columns to the constructor)",
                    DeprecationWarning, stacklevel=2,
                )
            self._columns = None
            self._rows = rows if isinstance(rows, list) else list(rows)
            self.n = len(self._rows)
            self.width = (width if width is not None
                          else (len(self._rows[0]) if self._rows else 0))
            return
        if columns is None or n is None:
            raise TypeError("Batch() requires columns and n")
        self._columns = list(columns)
        self._rows = None
        self.n = n
        self.width = len(self._columns)

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], width: int) -> "Batch":
        """Wrap a list of row tuples (``width`` disambiguates the
        zero-row case). The list is adopted, not copied — callers must
        not mutate it afterwards."""
        batch = cls.__new__(cls)
        batch._columns = None
        batch._rows = rows if isinstance(rows, list) else list(rows)
        batch.n = len(batch._rows)
        batch.width = width
        return batch

    @property
    def columns(self) -> List[Sequence]:
        """All columns (transposing from rows on first access). Entries
        may be ColumnVectors on columnar-sourced batches."""
        columns = self._columns
        if columns is None:
            if self._rows:
                columns = list(zip(*self._rows))
            else:
                columns = [() for _ in range(self.width)]
            self._columns = columns
        return columns

    def column(self, j: int) -> Sequence:
        """Column ``j`` alone — a single-column gather on row-backed
        batches, an index on column-backed ones."""
        if self._columns is not None:
            return self._columns[j]
        return [row[j] for row in self._rows]

    def rows(self) -> List[tuple]:
        """The rows as plain tuples (the iterator engine's row
        representation, byte for byte). This is the late-
        materialization pipeline breaker for columnar batches. Cached;
        treat as immutable."""
        rows = self._rows
        if rows is None:
            if not self._columns:
                rows = [()] * self.n
            else:
                rows = list(zip(*[_as_list(c) for c in self._columns]))
            self._rows = rows
        return rows

    def select(self, flags: Sequence[bool]) -> "Batch":
        """Keep the rows whose flag is truthy. ``flags`` may be a numpy
        boolean array (kernel output) or any Python sequence."""
        if self._columns is None:
            return Batch.from_rows(
                list(compress(self._rows, flags)), self.width)
        is_array = np is not None and isinstance(flags, np.ndarray)
        if not is_array and any(isinstance(c, ColumnVector)
                                for c in self._columns):
            flags = np.fromiter((bool(f) for f in flags),
                                dtype=np.bool_, count=self.n)
            is_array = True
        if is_array:
            columns = [
                c.select(flags) if isinstance(c, ColumnVector)
                else list(compress(c, flags))
                for c in self._columns
            ]
            return Batch(columns, int(flags.sum()))
        kept = flags.count(True) if isinstance(flags, list) else None
        columns = [list(compress(col, flags)) for col in self._columns]
        n = kept if kept is not None else (
            len(columns[0]) if columns else 0)
        if not columns:
            n = sum(1 for flag in flags if flag)
        return Batch(columns, n)

    def take(self, indices: Sequence[int]) -> "Batch":
        """Gather the rows at ``indices``, in order."""
        if self._columns is None:
            rows = self._rows
            return Batch.from_rows([rows[i] for i in indices], self.width)
        columns = [
            c.take(indices) if isinstance(c, ColumnVector)
            else [c[i] for i in indices]
            for c in self._columns
        ]
        return Batch(columns, len(indices))

    def head(self, count: int) -> "Batch":
        if self._columns is None:
            return Batch.from_rows(self._rows[:count], self.width)
        columns = [
            c.slice(0, count) if isinstance(c, ColumnVector)
            else c[:count]
            for c in self._columns
        ]
        return Batch(columns, min(count, self.n))

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return "Batch(%d cols x %d rows)" % (self.width, self.n)


def batches_from_rows(rows: Iterable[tuple], width: int,
                      batch_rows: int = BATCH_ROWS) -> Iterator[Batch]:
    """Chunk a row stream into batches (the iterator-engine bridge).

    Pulling through this helper executes the producing subtree in
    iterator mode, so its ledger charges are trivially identical; it is
    the fallback for operators without a native batch implementation.
    """
    chunk: List[tuple] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= batch_rows:
            yield Batch.from_rows(chunk, width)
            chunk = []
    if chunk:
        yield Batch.from_rows(chunk, width)


def batches_from_list(rows: Sequence[tuple], width: int,
                      batch_rows: int = BATCH_ROWS) -> Iterator[Batch]:
    """Batches over an already-materialized row list (no bridge pull)."""
    for start in range(0, len(rows), batch_rows):
        yield Batch.from_rows(rows[start:start + batch_rows], width)


def batches_from_store(store: "columnar.ColumnStore",
                       batch_rows: int = BATCH_ROWS) -> Iterator[Batch]:
    """Batches over a columnar table base: each batch's columns are
    zero-copy ColumnVector slices. Boundaries are identical to
    :func:`batches_from_list` over the same rows, so batch-granularity
    charges (and LimitOp behavior) are layout-independent."""
    for start in range(0, store.num_rows, batch_rows):
        stop = min(start + batch_rows, store.num_rows)
        yield Batch(store.column_slices(start, stop), stop - start)


# ------------------------------------------------------------- compiler

ColumnFn = Callable[[Batch], Sequence]


class KernelStats:
    """Per-operator count of batch evaluations that ran as numpy kernels
    vs. the per-element interpreter fallback.

    One compiled expression evaluating one batch is one count: the
    result stayed columnar (a :class:`ColumnVector`) → ``kernel``;
    anything materialized to Python objects → ``fallback``. Operators
    arm these only under tracing (see ``Operator.kernel_counter``) and
    the span finalizer lifts them into span extras as
    ``kernel_batches`` / ``fallback_batches``, so per-query columnar
    coverage is visible in ``explain_analyze`` and the Chrome-trace
    export without touching the untraced hot path.
    """

    __slots__ = ("kernel", "fallback")

    def __init__(self):
        self.kernel = 0
        self.fallback = 0

    def note(self, result) -> None:
        if isinstance(result, ColumnVector):
            self.kernel += 1
        else:
            self.fallback += 1

    def __repr__(self) -> str:
        return "KernelStats(kernel=%d, fallback=%d)" % (
            self.kernel, self.fallback)

_CMP_PYOP = {"=": "==", "!=": "!=", "<>": "!=",
             "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ARITH_PYOP = {"+": "+", "-": "-", "*": "*", "/": "/"}
_ARITH_PROBES = {"+": _operator.add, "-": _operator.sub,
                 "*": _operator.mul, "/": _operator.truediv}

# Codegen cache: one compiled comprehension per operator symbol. The
# generated lambda runs a single C-level list comprehension over the
# zipped operand columns — the per-element path for operands a numpy
# kernel cannot take exactly.
_BINOP_CACHE = {}


def _binop_fn(pyop: str):
    fn = _BINOP_CACHE.get(pyop)
    if fn is None:
        fn = eval(  # noqa: S307 - fixed template over a vetted op table
            "lambda lv, rv: "
            "[None if a is None or b is None else (a %s b) "
            "for a, b in zip(lv, rv)]" % pyop
        )
        _BINOP_CACHE[pyop] = fn
    return fn


def _const_reader(expr: Expr):
    """A zero-arg reader when ``expr`` is a per-batch constant (late-
    bound for parameters), else None."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda: value
    if isinstance(expr, Parameter):
        return lambda: expr.value
    return None


def compile_expr(expr: Expr,
                 stats: Optional[KernelStats] = None) -> ColumnFn:
    """Compile a resolved expression tree into a column-level closure.

    The closure takes a :class:`Batch` and returns a sequence of ``n``
    values — the expression evaluated for every row — with semantics
    identical to calling ``expr.eval(row)`` per row (SQL three-valued
    logic, the iterator engine's error messages, late-bound parameters
    and filter-set memberships). Over ColumnVector inputs the result is
    itself a ColumnVector whenever a numpy kernel applies.

    With ``stats``, every batch evaluation of the *top-level* closure
    is tallied kernel-vs-fallback (sub-expressions are not separately
    counted — the top-level result type already tells whether the
    pipeline stayed columnar). ``stats=None`` returns the bare closure:
    the untraced path is byte-identical to before.
    """
    fn = _compile(expr)
    if stats is None:
        return fn

    def counted(batch: Batch):
        result = fn(batch)
        stats.note(result)
        return result

    return counted


def _compile(expr: Expr) -> ColumnFn:
    if isinstance(expr, ColumnRef):
        if expr.position is None:
            raise ExecutionError(
                "unresolved column reference %r" % expr.name)
        position = expr.position
        return lambda batch: batch.column(position)

    if isinstance(expr, Literal):
        value = expr.value
        return lambda batch: [value] * batch.n

    if isinstance(expr, Parameter):
        # read through the node per batch so execute-time (re)binding of
        # the shared parameter cell is observed, like Parameter.eval
        return lambda batch: [expr.value] * batch.n

    if isinstance(expr, Comparison):
        return _compile_comparison(expr)

    if isinstance(expr, Arithmetic):
        return _compile_arithmetic(expr)

    if isinstance(expr, BooleanExpr):
        return _compile_boolean(expr)

    if isinstance(expr, InList):
        return _compile_in_list(expr)

    if isinstance(expr, RuntimeMembership):
        return _compile_membership(expr)

    raise ExecutionError(
        "cannot compile expression %r for batch evaluation"
        % type(expr).__name__
    )


def compile_filter(expr: Expr,
                   stats: Optional[KernelStats] = None
                   ) -> Callable[[Batch], Sequence]:
    """Compile a predicate into a selection-flag closure.

    Rows are kept only when the predicate is exactly ``True`` (never for
    NULL), matching the iterator engine's ``eval(row) is True`` checks.
    Returns a numpy boolean array when the predicate evaluated as a
    kernel, else a Python list of bools. ``stats`` tallies per batch
    exactly as in :func:`compile_expr`.
    """
    value_fn = compile_expr(expr, stats=stats)

    def run(batch: Batch):
        values = value_fn(batch)
        if isinstance(values, ColumnVector):
            return values.true_flags()
        return [v is True for v in values]

    return run


# ------------------------------------------------------ numpy kernels

def _all_null(n: int) -> ColumnVector:
    return ColumnVector(np.zeros(n, dtype=np.bool_),
                        np.zeros(n, dtype=np.bool_))


def _combined_mask(lvec: Optional[ColumnVector],
                   rvec: Optional[ColumnVector]):
    mask = None
    if lvec is not None and lvec.mask is not None:
        mask = lvec.mask
    if rvec is not None and rvec.mask is not None:
        mask = rvec.mask if mask is None else (mask & rvec.mask)
    return mask


def _is_plain_number(value) -> bool:
    return isinstance(value, (int, float)) or (
        np is not None and isinstance(value, (np.integer, np.floating)))


#: |int| bound under which an int64 -> float64 cast is exact. Python
#: compares (and divides) int/float pairs mathematically; numpy casts to
#: float64 first, so kernels mixing the two dtypes demand this bound.
_FLOAT_EXACT = 2 ** 53


def _int_vals_float_exact(values) -> bool:
    if not len(values):
        return True
    return max(abs(int(values.min())), abs(int(values.max()))) \
        < _FLOAT_EXACT


_NP_CMP = None


def _np_cmp_ops():
    global _NP_CMP
    if _NP_CMP is None:
        _NP_CMP = {"=": np.equal, "!=": np.not_equal, "<>": np.not_equal,
                   "<": np.less, "<=": np.less_equal,
                   ">": np.greater, ">=": np.greater_equal}
    return _NP_CMP


def _cmp_kernel(op: str, lvec, rvec, lconst, rconst,
                n: int) -> Optional[ColumnVector]:
    """Vectorized comparison over (vector|const) operands, or None to
    fall back to the exact per-element path."""
    if lvec is None and lconst is not None:
        value = lconst()
        if value is None:
            return _all_null(n)
        return _cmp_vec_const(op, rvec, value, n, flipped=True)
    if rvec is None and rconst is not None:
        value = rconst()
        if value is None:
            return _all_null(n)
        return _cmp_vec_const(op, lvec, value, n, flipped=False)
    if lvec is None or rvec is None:
        return None
    # vector vs vector
    mask = _combined_mask(lvec, rvec)
    if lvec.dictionary is not None or rvec.dictionary is not None:
        if lvec.dictionary is None or rvec.dictionary is None:
            return None  # str vs non-str: per-element path raises
        if op not in ("=", "!=", "<>"):
            return None  # ordered cross-dictionary compare: fall back
        if lvec.dictionary is rvec.dictionary:
            eq = lvec.values == rvec.values
        else:
            left_of = lvec.dictionary.lookup
            entries = rvec.dictionary.entries
            trans = np.fromiter((left_of(e) for e in entries),
                                dtype=np.int64,
                                count=len(entries)) if entries else \
                np.empty(0, dtype=np.int64)
            eq = lvec.values.astype(np.int64) == (
                trans[rvec.values] if len(entries)
                else np.full(n, -1, dtype=np.int64))
        values = eq if op == "=" else ~eq
        return ColumnVector(values, mask)
    lv, rv = lvec.values, rvec.values
    if (lv.dtype == np.int64 and rv.dtype == np.float64
            and not _int_vals_float_exact(lv)) or \
            (rv.dtype == np.int64 and lv.dtype == np.float64
             and not _int_vals_float_exact(rv)):
        return None  # the int64 -> float64 cast would round
    values = _np_cmp_ops()[op](lv, rv)
    return ColumnVector(values, mask)


def _cmp_vec_const(op: str, vec: ColumnVector, value, n: int,
                   flipped: bool) -> Optional[ColumnVector]:
    """``vec <op> value`` (or ``value <op> vec`` when flipped)."""
    if flipped:
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if vec.dictionary is not None:
        if not isinstance(value, str):
            return None  # str column vs non-str: per-element path raises
        if op in ("=", "!=", "<>"):
            code = vec.dictionary.lookup(value)
            eq = (vec.values == code if code >= 0
                  else np.zeros(n, dtype=np.bool_))
            values = eq if op == "=" else ~eq
        else:
            entries = vec.dictionary.entries
            py = {"<": _operator.lt, "<=": _operator.le,
                  ">": _operator.gt, ">=": _operator.ge}[op]
            lut = np.fromiter((py(e, value) for e in entries),
                              dtype=np.bool_, count=len(entries)) \
                if entries else np.empty(0, dtype=np.bool_)
            values = (lut[vec.values] if len(entries)
                      else np.zeros(n, dtype=np.bool_))
        return ColumnVector(values, vec.mask)
    if not _is_plain_number(value):
        return None
    if isinstance(value, float) and vec.values.dtype == np.int64 \
            and not _int_vals_float_exact(vec.values):
        return None
    if isinstance(value, int) and not isinstance(value, bool) \
            and vec.values.dtype == np.float64 \
            and abs(value) >= _FLOAT_EXACT:
        return None
    try:
        values = _np_cmp_ops()[op](vec.values, value)
    except (OverflowError, TypeError):
        return None  # e.g. an int constant beyond the int64 range
    return ColumnVector(values, vec.mask)


def _int_bounds_safe(values, other_scale: int) -> bool:
    """True when int64 arithmetic with operands bounded by these values
    cannot overflow (conservative)."""
    if not len(values):
        return True
    lo = int(values.min())
    hi = int(values.max())
    return max(abs(lo), abs(hi)) * max(1, other_scale) < columnar.INT64_SAFE


def _numeric_operand(vec: Optional[ColumnVector]):
    """The numeric values array of a vector operand (bools widened so
    Python's ``True + True == 2`` arithmetic is preserved), or None."""
    if vec is None:
        return None
    if vec.dictionary is not None:
        return None
    values = vec.values
    if values.dtype == np.bool_:
        return values.astype(np.int64)
    return values


def _arith_kernel(op: str, lvec, rvec, lconst, rconst,
                  n: int) -> Optional[ColumnVector]:
    lvals = _numeric_operand(lvec) if lvec is not None else None
    rvals = _numeric_operand(rvec) if rvec is not None else None
    if lvec is not None and lvals is None:
        return None
    if rvec is not None and rvals is None:
        return None
    if lvals is None:
        if lconst is None:
            return None
        value = lconst()
        if value is None:
            return _all_null(n)
        if not _is_plain_number(value):
            return None
        lvals = value
    if rvals is None:
        if rconst is None:
            return None
        value = rconst()
        if value is None:
            return _all_null(n)
        if not _is_plain_number(value):
            return None
        rvals = value
    mask = _combined_mask(lvec, rvec)

    scalar_l = not isinstance(lvals, np.ndarray)
    scalar_r = not isinstance(rvals, np.ndarray)
    if scalar_l and isinstance(lvals, bool):
        lvals = int(lvals)
    if scalar_r and isinstance(rvals, bool):
        rvals = int(rvals)

    if op == "/":
        # Python's int/int is the correctly-rounded true quotient;
        # float64 division rounds the operands first, which only agrees
        # when both sides convert to float64 exactly
        l_int = (isinstance(lvals, int) if scalar_l
                 else lvals.dtype == np.int64)
        r_int = (isinstance(rvals, int) if scalar_r
                 else rvals.dtype == np.int64)
        if l_int and r_int:
            lb = abs(lvals) if scalar_l else (
                max(abs(int(lvals.min())), abs(int(lvals.max())))
                if len(lvals) else 0)
            rb = abs(rvals) if scalar_r else (
                max(abs(int(rvals.min())), abs(int(rvals.max())))
                if len(rvals) else 0)
            if lb >= _FLOAT_EXACT or rb >= _FLOAT_EXACT:
                return None
        elif l_int and not scalar_l and not _int_vals_float_exact(lvals):
            return None
        elif r_int and not scalar_r and not _int_vals_float_exact(rvals):
            return None
        # the iterator engine raises whenever any row divides a non-NULL
        # numerator by zero — before producing a single value
        lvalid = (lvec.valid_mask() if lvec is not None
                  and lvec.mask is not None else None)
        if scalar_r:
            if rvals == 0:
                bad = np.ones(n, dtype=np.bool_) if lvalid is None \
                    else lvalid
                if bad.any():
                    raise ExecutionError("division by zero")
        else:
            bad = (rvals == 0)
            if rvec.mask is not None:
                bad = bad & rvec.mask
            if lvalid is not None:
                bad = bad & lvalid
            if bad.any():
                raise ExecutionError("division by zero")
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.true_divide(lvals, rvals)
        return ColumnVector(values, mask)

    # +, -, *: ints must not wrap — Python ints are unbounded, so an
    # operand range that could overflow int64 falls back to per-element
    int_l = scalar_l and isinstance(lvals, int) or (
        not scalar_l and lvals.dtype == np.int64)
    int_r = scalar_r and isinstance(rvals, int) or (
        not scalar_r and rvals.dtype == np.int64)
    if int_l and int_r:
        lscale = abs(lvals) if scalar_l else (
            max(abs(int(lvals.min())), abs(int(lvals.max())))
            if len(lvals) else 0)
        rscale = abs(rvals) if scalar_r else (
            max(abs(int(rvals.min())), abs(int(rvals.max())))
            if len(rvals) else 0)
        if op == "*":
            if lscale * max(1, rscale) >= columnar.INT64_SAFE:
                return None
        elif lscale + rscale >= columnar.INT64_SAFE:
            return None
    fn = {"+": np.add, "-": np.subtract, "*": np.multiply}[op]
    values = fn(lvals, rvals)
    return ColumnVector(values, mask)


def _decided_and_null(values, n: int, decided_value: bool):
    """(decided, null) boolean arrays for one boolean argument's output
    over the currently-alive rows."""
    if isinstance(values, ColumnVector):
        if values.dictionary is None and values.values.dtype == np.bool_:
            valid = values.mask
            v = values.values
            if valid is None:
                return (v == decided_value), np.zeros(len(v),
                                                      dtype=np.bool_)
            return (v == decided_value) & valid, ~valid
        values = values.tolist()
    m = len(values)
    decided = np.fromiter((x is decided_value for x in values),
                          dtype=np.bool_, count=m)
    null = np.fromiter((x is None for x in values),
                       dtype=np.bool_, count=m)
    return decided, null


def _compile_comparison(expr: Comparison) -> ColumnFn:
    lconst = _const_reader(expr.left)
    rconst = _const_reader(expr.right)
    left_fn = compile_expr(expr.left)
    right_fn = compile_expr(expr.right)
    op = expr.op
    fn = _binop_fn(_CMP_PYOP[op])

    def run(batch: Batch):
        lv = None if lconst is not None else left_fn(batch)
        rv = None if rconst is not None else right_fn(batch)
        if np is not None and (isinstance(lv, ColumnVector)
                               or isinstance(rv, ColumnVector)):
            result = _cmp_kernel(
                op,
                lv if isinstance(lv, ColumnVector) else None,
                rv if isinstance(rv, ColumnVector) else None,
                lconst, rconst, batch.n)
            if result is not None:
                return result
        if lv is None:
            lv = [lconst()] * batch.n
        if rv is None:
            rv = [rconst()] * batch.n
        lv = _as_list(lv)
        rv = _as_list(rv)
        try:
            return fn(lv, rv)
        except TypeError:
            for a, b in zip(lv, rv):
                if a is None or b is None:
                    continue
                try:
                    a < b if op not in ("=", "!=", "<>") else a == b
                except TypeError:
                    raise ExecutionError(
                        "cannot compare %r with %r" % (a, b))
            raise

    return run


def _compile_arithmetic(expr: Arithmetic) -> ColumnFn:
    lconst = _const_reader(expr.left)
    rconst = _const_reader(expr.right)
    left_fn = compile_expr(expr.left)
    right_fn = compile_expr(expr.right)
    op = expr.op
    fn = _binop_fn(_ARITH_PYOP[op])

    def run(batch: Batch):
        lv = None if lconst is not None else left_fn(batch)
        rv = None if rconst is not None else right_fn(batch)
        if np is not None and (isinstance(lv, ColumnVector)
                               or isinstance(rv, ColumnVector)):
            result = _arith_kernel(
                op,
                lv if isinstance(lv, ColumnVector) else None,
                rv if isinstance(rv, ColumnVector) else None,
                lconst, rconst, batch.n)
            if result is not None:
                return result
        if lv is None:
            lv = [lconst()] * batch.n
        if rv is None:
            rv = [rconst()] * batch.n
        lv = _as_list(lv)
        rv = _as_list(rv)
        if op == "/":
            for a, b in zip(lv, rv):
                if a is not None and b == 0:
                    raise ExecutionError("division by zero")
        try:
            return fn(lv, rv)
        except TypeError:
            probe = _ARITH_PROBES[op]
            for a, b in zip(lv, rv):
                if a is None or b is None:
                    continue
                try:
                    probe(a, b)
                except TypeError:
                    raise ExecutionError(
                        "cannot apply %r to %r and %r" % (op, a, b))
            raise

    return run


def _compile_boolean(expr: BooleanExpr) -> ColumnFn:
    arg_fns = [compile_expr(arg) for arg in expr.args]
    op = expr.op

    if op == "NOT":
        inner = arg_fns[0]

        def run_not(batch: Batch):
            values = inner(batch)
            if np is not None and isinstance(values, ColumnVector) \
                    and values.dictionary is None \
                    and values.values.dtype == np.bool_:
                return ColumnVector(~values.values, values.mask)
            return [None if v is None else (not v)
                    for v in _as_list(values)]

        return run_not

    # AND / OR short-circuit *per row across arguments* in the iterator
    # engine (a row decided by an earlier argument never evaluates later
    # ones — guards like ``b != 0 AND a / b > 1`` rely on this). The
    # batch version keeps that contract by narrowing to the still-
    # undecided rows before evaluating the next argument's column.
    decided_value = False if op == "AND" else True  # value that decides

    def run(batch: Batch) -> Sequence:
        if np is None:
            return _run_boolean_plain(batch, arg_fns, decided_value)
        n = batch.n
        result = np.full(n, not decided_value, dtype=np.bool_)
        saw_null = np.zeros(n, dtype=np.bool_)
        alive = None  # None = every row (avoids an arange on arg 1)
        current = batch
        for fn in arg_fns:
            if alive is not None and not len(alive):
                break
            values = fn(current)
            decided, null = _decided_and_null(values,
                                              current.n, decided_value)
            rows = alive if alive is not None else np.arange(n)
            dec_rows = rows[decided]
            result[dec_rows] = decided_value
            saw_null[rows[null]] = True
            survivors = ~decided
            if not survivors.all():
                alive = rows[survivors]
                current = batch.take(alive)
            elif alive is None:
                alive = rows
        null_out = np.zeros(n, dtype=np.bool_)
        if alive is not None and len(alive):
            live_null = alive[saw_null[alive]]
            null_out[live_null] = True
        elif alive is None:
            null_out = saw_null
        return ColumnVector(result, ~null_out if null_out.any() else None)

    return run


def _run_boolean_plain(batch: Batch, arg_fns, decided_value):
    result: list = [not decided_value] * batch.n
    saw_null = [False] * batch.n
    alive = list(range(batch.n))
    current = batch
    for fn in arg_fns:
        if not alive:
            break
        values = _as_list(fn(current))
        survivors = []
        for local, v in enumerate(values):
            row = alive[local]
            if v is decided_value:
                result[row] = decided_value
            else:
                if v is None:
                    saw_null[row] = True
                survivors.append(row)
        if len(survivors) != len(alive):
            alive = survivors
            current = batch.take(alive)
    for row in alive:
        if saw_null[row]:
            result[row] = None
    return result


def _probe_array(vec: ColumnVector, candidates):
    """Candidate match values encoded into ``vec``'s value domain, for
    set-membership kernels (IN lists, filter-set probes). Returns None
    when an exact encoding is impossible (fall back to per-element);
    candidates that can never equal a column value are simply dropped.
    """
    if vec.dictionary is not None:
        codes = [vec.dictionary.lookup(v) for v in candidates
                 if isinstance(v, str)]
        return np.asarray([c for c in codes if c >= 0],
                          dtype=vec.values.dtype)
    present = [v for v in candidates if _is_plain_number(v)]
    dtype = vec.values.dtype
    if dtype == np.bool_:
        present = [bool(v) for v in present if v == 0 or v == 1]
    elif dtype == np.int64:
        if any(isinstance(v, float) for v in present):
            # float candidates vs an int column: the float64
            # cast-compare is exact only for small ints — stay exact
            return None
    elif dtype == np.float64:
        if any(isinstance(v, int) and not isinstance(v, bool)
               and abs(v) >= _FLOAT_EXACT for v in present):
            return None
    try:
        return np.asarray(present, dtype=dtype)
    except (OverflowError, ValueError):
        return None


def _compile_in_list(expr: InList) -> ColumnFn:
    operand_fn = compile_expr(expr.operand)
    values = expr.values
    negated = expr.negated
    has_null = any(v is None for v in values)
    try:
        lookup = frozenset(values)
    except TypeError:  # unhashable literal: fall back to the tuple scan
        lookup = values

    def kernel(vec: ColumnVector, n: int) -> Optional[ColumnVector]:
        probe = _probe_array(vec, [v for v in values if v is not None])
        if probe is None:
            return None
        found = (np.isin(vec.values, probe) if len(probe)
                 else np.zeros(n, dtype=np.bool_))
        mask = vec.mask
        if has_null:
            # a NULL in the list makes every miss UNKNOWN
            mask = found if mask is None else (found & mask)
        return ColumnVector(~found if negated else found, mask)

    def run(batch: Batch):
        operand = operand_fn(batch)
        if np is not None and isinstance(operand, ColumnVector):
            result = kernel(operand, batch.n)
            if result is not None:
                return result
            operand = operand.tolist()
        out = []
        append = out.append
        for v in operand:
            if v is None:
                append(None)
                continue
            found = v in lookup
            if not found and has_null:
                append(None)  # NULL in the list makes a miss unknown
            else:
                append((not found) if negated else found)
        return out

    return run


def _compile_membership(expr: RuntimeMembership) -> ColumnFn:
    arg_fns = [compile_expr(arg) for arg in expr.args]

    def kernel(vec: ColumnVector, membership) -> Optional[ColumnVector]:
        probe = _probe_array(vec, membership)
        if probe is None:
            return None
        found = (np.isin(vec.values, probe) if len(probe)
                 else np.zeros(len(vec.values), dtype=np.bool_))
        if vec.mask is not None:
            # a NULL key behaves like ``None in membership``
            found = np.where(vec.mask, found, None in membership)
        return ColumnVector(found, None)

    def run(batch: Batch):
        membership = expr.membership  # bound by bind_memberships()
        if membership is None:
            raise ExecutionError(
                "membership %r was not bound before execution"
                % expr.param_id
            )
        if len(arg_fns) == 1:
            keys = arg_fns[0](batch)
            if np is not None and isinstance(keys, ColumnVector) \
                    and isinstance(membership, (set, frozenset)):
                result = kernel(keys, membership)
                if result is not None:
                    return result
            return [key in membership for key in _as_list(keys)]
        columns = [_as_list(fn(batch)) for fn in arg_fns]
        return [key in membership for key in zip(*columns)]

    return run


def compile_optional(expr: Optional[Expr],
                     stats: Optional[KernelStats] = None
                     ) -> Optional[ColumnFn]:
    return compile_expr(expr, stats=stats) if expr is not None else None


def compile_optional_filter(expr: Optional[Expr],
                            stats: Optional[KernelStats] = None
                            ) -> Optional[Callable[[Batch], Sequence]]:
    return compile_filter(expr, stats=stats) if expr is not None else None
