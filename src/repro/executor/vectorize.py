"""Columnar batches and the batch-at-a-time expression compiler.

The vector engine moves data between operators as :class:`Batch` objects
— column-oriented slices of ~:data:`BATCH_ROWS` rows, each column a
plain Python sequence — instead of one tuple at a time. Scalar
expression trees are *compiled once per operator execution* into
column-level closures (:func:`compile_expr`), so evaluating a predicate
over a batch costs one Python call plus a C-speed comprehension rather
than a recursive ``Expr.eval`` tree walk per row.

Two invariants tie the vector engine to the iterator engine:

- **Value fidelity.** Columns hold the exact Python objects the storage
  layer holds (no numpy dtype coercion), and compiled closures implement
  the same SQL three-valued logic as ``Expr.eval``, so reassembled rows
  are byte-identical to the iterator engine's output.
- **Chunked cost parity.** Batch operators charge the same ledger unit
  counts as their tuple-at-a-time twins, just in bulk (one
  ``charge_cpu(n)`` per batch instead of ``n`` calls of 1); every count
  is an exact integer, so the totals — and therefore estimated-vs-
  measured comparisons — are identical between engines.
"""

from __future__ import annotations

import operator as _operator
from itertools import compress
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from ..errors import ExecutionError
from ..expr.nodes import (
    Arithmetic,
    BooleanExpr,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Parameter,
    RuntimeMembership,
)

#: target rows per batch; chosen so a batch of typical rows stays within
#: L2-cache-ish sizes while amortizing per-batch interpreter overhead
BATCH_ROWS = 1024


class Batch:
    """A slice of rows with lazy dual representation.

    A batch is backed by *either* row tuples (:meth:`from_rows` — e.g.
    straight off a table page or a join's output) *or* columns (the
    constructor — e.g. a projection's computed outputs), and converts on
    demand: :attr:`columns` transposes once and caches, :meth:`column`
    extracts a single column without paying for a full transpose, and
    :meth:`rows` is free on row-backed batches. Operators that only
    touch one key column of a row-backed batch (hash probes, filters)
    therefore never transpose the rest.

    ``columns[j]`` is a sequence (list or tuple) holding column ``j``'s
    value for each of the ``n`` rows. Columns and row lists are treated
    as immutable by every operator — transformations build new sequences
    — so both may be shared freely between batches.
    """

    __slots__ = ("_columns", "_rows", "n", "width")

    def __init__(self, columns: Sequence[Sequence], n: int):
        self._columns = list(columns)
        self._rows = None
        self.n = n
        self.width = len(self._columns)

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], width: int) -> "Batch":
        """Wrap a list of row tuples (``width`` disambiguates the
        zero-row case). The list is adopted, not copied — callers must
        not mutate it afterwards."""
        batch = cls.__new__(cls)
        batch._columns = None
        batch._rows = rows if isinstance(rows, list) else list(rows)
        batch.n = len(batch._rows)
        batch.width = width
        return batch

    @property
    def columns(self) -> List[Sequence]:
        """All columns (transposing from rows on first access)."""
        columns = self._columns
        if columns is None:
            if self._rows:
                columns = list(zip(*self._rows))
            else:
                columns = [() for _ in range(self.width)]
            self._columns = columns
        return columns

    def column(self, j: int) -> Sequence:
        """Column ``j`` alone — a single-column gather on row-backed
        batches, an index on column-backed ones."""
        if self._columns is not None:
            return self._columns[j]
        return [row[j] for row in self._rows]

    def rows(self) -> List[tuple]:
        """The rows as plain tuples (the iterator engine's row
        representation, byte for byte). Cached; treat as immutable."""
        rows = self._rows
        if rows is None:
            if not self._columns:
                rows = [()] * self.n
            else:
                rows = list(zip(*self._columns))
            self._rows = rows
        return rows

    def select(self, flags: Sequence[bool]) -> "Batch":
        """Keep the rows whose flag is truthy."""
        if self._columns is None:
            return Batch.from_rows(
                list(compress(self._rows, flags)), self.width)
        kept = flags.count(True) if isinstance(flags, list) else None
        columns = [list(compress(col, flags)) for col in self._columns]
        n = kept if kept is not None else (
            len(columns[0]) if columns else 0)
        if not columns:
            n = sum(1 for flag in flags if flag)
        return Batch(columns, n)

    def take(self, indices: Sequence[int]) -> "Batch":
        """Gather the rows at ``indices``, in order."""
        if self._columns is None:
            rows = self._rows
            return Batch.from_rows([rows[i] for i in indices], self.width)
        columns = [[col[i] for i in indices] for col in self._columns]
        return Batch(columns, len(indices))

    def head(self, count: int) -> "Batch":
        if self._columns is None:
            return Batch.from_rows(self._rows[:count], self.width)
        columns = [col[:count] for col in self._columns]
        return Batch(columns, min(count, self.n))

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return "Batch(%d cols x %d rows)" % (self.width, self.n)


def batches_from_rows(rows: Iterable[tuple], width: int,
                      batch_rows: int = BATCH_ROWS) -> Iterator[Batch]:
    """Chunk a row stream into batches (the iterator-engine bridge).

    Pulling through this helper executes the producing subtree in
    iterator mode, so its ledger charges are trivially identical; it is
    the fallback for operators without a native batch implementation.
    """
    chunk: List[tuple] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= batch_rows:
            yield Batch.from_rows(chunk, width)
            chunk = []
    if chunk:
        yield Batch.from_rows(chunk, width)


def batches_from_list(rows: Sequence[tuple], width: int,
                      batch_rows: int = BATCH_ROWS) -> Iterator[Batch]:
    """Batches over an already-materialized row list (no bridge pull)."""
    for start in range(0, len(rows), batch_rows):
        yield Batch.from_rows(rows[start:start + batch_rows], width)


# ------------------------------------------------------------- compiler

ColumnFn = Callable[[Batch], Sequence]

_CMP_PYOP = {"=": "==", "!=": "!=", "<>": "!=",
             "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ARITH_PYOP = {"+": "+", "-": "-", "*": "*", "/": "/"}
_ARITH_PROBES = {"+": _operator.add, "-": _operator.sub,
                 "*": _operator.mul, "/": _operator.truediv}

# Codegen cache: one compiled comprehension per operator symbol. The
# generated lambda runs a single C-level list comprehension over the
# zipped operand columns — this is the "compiled once per batch column"
# replacement for a per-row Expr.eval tree walk.
_BINOP_CACHE = {}


def _binop_fn(pyop: str):
    fn = _BINOP_CACHE.get(pyop)
    if fn is None:
        fn = eval(  # noqa: S307 - fixed template over a vetted op table
            "lambda lv, rv: "
            "[None if a is None or b is None else (a %s b) "
            "for a, b in zip(lv, rv)]" % pyop
        )
        _BINOP_CACHE[pyop] = fn
    return fn


def compile_expr(expr: Expr) -> ColumnFn:
    """Compile a resolved expression tree into a column-level closure.

    The closure takes a :class:`Batch` and returns a sequence of ``n``
    values — the expression evaluated for every row — with semantics
    identical to calling ``expr.eval(row)`` per row (SQL three-valued
    logic, the iterator engine's error messages, late-bound parameters
    and filter-set memberships).
    """
    if isinstance(expr, ColumnRef):
        if expr.position is None:
            raise ExecutionError(
                "unresolved column reference %r" % expr.name)
        position = expr.position
        return lambda batch: batch.column(position)

    if isinstance(expr, Literal):
        value = expr.value
        return lambda batch: [value] * batch.n

    if isinstance(expr, Parameter):
        # read through the node per batch so execute-time (re)binding of
        # the shared parameter cell is observed, like Parameter.eval
        return lambda batch: [expr.value] * batch.n

    if isinstance(expr, Comparison):
        return _compile_comparison(expr)

    if isinstance(expr, Arithmetic):
        return _compile_arithmetic(expr)

    if isinstance(expr, BooleanExpr):
        return _compile_boolean(expr)

    if isinstance(expr, InList):
        return _compile_in_list(expr)

    if isinstance(expr, RuntimeMembership):
        return _compile_membership(expr)

    raise ExecutionError(
        "cannot compile expression %r for batch evaluation"
        % type(expr).__name__
    )


def compile_filter(expr: Expr) -> Callable[[Batch], List[bool]]:
    """Compile a predicate into a selection-flag closure.

    Rows are kept only when the predicate is exactly ``True`` (never for
    NULL), matching the iterator engine's ``eval(row) is True`` checks.
    """
    value_fn = compile_expr(expr)
    return lambda batch: [v is True for v in value_fn(batch)]


def _compile_comparison(expr: Comparison) -> ColumnFn:
    left_fn = compile_expr(expr.left)
    right_fn = compile_expr(expr.right)
    op = expr.op
    fn = _binop_fn(_CMP_PYOP[op])

    def run(batch: Batch) -> list:
        lv = left_fn(batch)
        rv = right_fn(batch)
        try:
            return fn(lv, rv)
        except TypeError:
            for a, b in zip(lv, rv):
                if a is None or b is None:
                    continue
                try:
                    a < b if op not in ("=", "!=", "<>") else a == b
                except TypeError:
                    raise ExecutionError(
                        "cannot compare %r with %r" % (a, b))
            raise

    return run


def _compile_arithmetic(expr: Arithmetic) -> ColumnFn:
    left_fn = compile_expr(expr.left)
    right_fn = compile_expr(expr.right)
    op = expr.op
    fn = _binop_fn(_ARITH_PYOP[op])

    def run(batch: Batch) -> list:
        lv = left_fn(batch)
        rv = right_fn(batch)
        if op == "/":
            for a, b in zip(lv, rv):
                if a is not None and b == 0:
                    raise ExecutionError("division by zero")
        try:
            return fn(lv, rv)
        except TypeError:
            probe = _ARITH_PROBES[op]
            for a, b in zip(lv, rv):
                if a is None or b is None:
                    continue
                try:
                    probe(a, b)
                except TypeError:
                    raise ExecutionError(
                        "cannot apply %r to %r and %r" % (op, a, b))
            raise

    return run


def _compile_boolean(expr: BooleanExpr) -> ColumnFn:
    arg_fns = [compile_expr(arg) for arg in expr.args]
    op = expr.op

    if op == "NOT":
        inner = arg_fns[0]
        return lambda batch: [
            None if v is None else (not v) for v in inner(batch)
        ]

    # AND / OR short-circuit *per row across arguments* in the iterator
    # engine (a row decided by an earlier argument never evaluates later
    # ones — guards like ``b != 0 AND a / b > 1`` rely on this). The
    # batch version keeps that contract by narrowing to the still-
    # undecided rows before evaluating the next argument's column.
    decided_value = False if op == "AND" else True  # value that decides

    def run(batch: Batch) -> list:
        result: list = [not decided_value] * batch.n
        saw_null = [False] * batch.n
        alive = list(range(batch.n))
        current = batch
        for fn in arg_fns:
            if not alive:
                break
            values = fn(current)
            survivors = []
            for local, v in enumerate(values):
                row = alive[local]
                if v is decided_value:
                    result[row] = decided_value
                else:
                    if v is None:
                        saw_null[row] = True
                    survivors.append(row)
            if len(survivors) != len(alive):
                alive = survivors
                current = batch.take(alive)
        for row in alive:
            if saw_null[row]:
                result[row] = None
        return result

    return run


def _compile_in_list(expr: InList) -> ColumnFn:
    operand_fn = compile_expr(expr.operand)
    values = expr.values
    negated = expr.negated
    has_null = any(v is None for v in values)
    try:
        lookup = frozenset(values)
    except TypeError:  # unhashable literal: fall back to the tuple scan
        lookup = values

    def run(batch: Batch) -> list:
        out = []
        append = out.append
        for v in operand_fn(batch):
            if v is None:
                append(None)
                continue
            found = v in lookup
            if not found and has_null:
                append(None)  # NULL in the list makes a miss unknown
            else:
                append((not found) if negated else found)
        return out

    return run


def _compile_membership(expr: RuntimeMembership) -> ColumnFn:
    arg_fns = [compile_expr(arg) for arg in expr.args]

    def run(batch: Batch) -> list:
        membership = expr.membership  # bound by bind_memberships()
        if membership is None:
            raise ExecutionError(
                "membership %r was not bound before execution"
                % expr.param_id
            )
        if len(arg_fns) == 1:
            return [key in membership for key in arg_fns[0](batch)]
        columns = [fn(batch) for fn in arg_fns]
        return [key in membership for key in zip(*columns)]

    return run


def compile_optional(expr: Optional[Expr]) -> Optional[ColumnFn]:
    return compile_expr(expr) if expr is not None else None


def compile_optional_filter(expr: Optional[Expr]
                            ) -> Optional[Callable[[Batch], List[bool]]]:
    return compile_filter(expr) if expr is not None else None
