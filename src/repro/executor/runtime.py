"""Execution runtime: cost accounting, deadlines, and resource limits.

The :class:`RuntimeContext` is threaded through every operator. It holds
the measured :class:`CostLedger`, the memory budget that decides when
temps/sorts/hash tables "spill" (spills are charged, not performed — the
page model substitutes for a disk, see DESIGN.md), the run-time bindings
of filter sets produced by Filter Join / nested-iteration operators, and
the resilience state added for distributed execution:

- an optional :class:`~repro.distributed.network.SimulatedNetwork` that
  every shipment routes through (fault injection, retry/backoff);
- an optional per-query deadline, checked inside every operator's row
  loop (piggybacked on ``charge_cpu``) and after simulated network
  delay, raising :class:`~repro.errors.QueryTimeout`;
- an optional per-query memory budget in bytes: operators account the
  bytes they hold (hash tables, sorts, materialized temps, filter sets)
  and the query fails with :class:`~repro.errors.ResourceExhausted`
  instead of growing unboundedly.

Deadlines combine wall-clock time with a *simulated clock*: latency
spikes and retry backoff advance ``simulated_seconds`` without
sleeping, so fault schedules abort deterministically.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ExecutionError, QueryTimeout, ResourceExhausted
from ..ledger import CostLedger, CostParams
from ..storage.schema import Schema
from ..storage.table import pages_for

#: how many charge_cpu calls between deadline checks (power of two - 1)
_DEADLINE_CHECK_MASK = 255


@dataclass
class TempTable:
    """A materialized intermediate: rows plus spill bookkeeping."""

    rows: List[tuple]
    schema: Schema
    spilled: bool = False

    @property
    def num_pages(self) -> float:
        return pages_for(len(self.rows), self.schema.row_width())


class RuntimeContext:
    """Shared state for one plan execution."""

    def __init__(self, ledger: Optional[CostLedger] = None,
                 params: Optional[CostParams] = None,
                 memory_pages: int = 128,
                 message_payload_bytes: int = 8192,
                 network=None,
                 deadline_seconds: Optional[float] = None,
                 memory_budget_bytes: Optional[float] = None,
                 max_fixpoint_iterations: int = 1000):
        self.ledger = ledger if ledger is not None else CostLedger()
        self.params = params or CostParams()
        # when set (a TraceBuilder), lowering wraps every operator in a
        # SpanOperator and the ledger is teed into the active span
        self.trace = None
        self.memory_pages = memory_pages
        self.message_payload_bytes = message_payload_bytes
        # param_id -> TempTable holding the exact filter set
        self.filter_sets: Dict[str, TempTable] = {}
        # param_id -> membership structure (set of keys, or a BloomFilter)
        self.memberships: Dict[str, object] = {}
        # --- resilience state ---
        self.network = network
        self.deadline_seconds = deadline_seconds
        self.simulated_seconds = 0.0
        self._started = time.monotonic()
        self._tick = 0
        self.memory_budget_bytes = memory_budget_bytes
        self.mem_held_bytes = 0.0
        self.mem_peak_bytes = 0.0
        # cap on semi-naive fixpoint passes (FixpointLimitExceeded)
        self.max_fixpoint_iterations = max_fixpoint_iterations
        if deadline_seconds is not None:
            # shadow the class method so the per-row hot path pays for
            # deadline checks only when a deadline exists
            self.charge_cpu = self._charge_cpu_with_deadline

    # -------------------------------------------------------------- deadline

    def advance_clock(self, seconds: float) -> None:
        """Advance the simulated clock (latency spikes, retry backoff)."""
        self.simulated_seconds += seconds

    def elapsed_seconds(self) -> float:
        return (time.monotonic() - self._started) + self.simulated_seconds

    def check_deadline(self) -> None:
        """Raise :class:`QueryTimeout` if the deadline has passed."""
        if self.deadline_seconds is None:
            return
        elapsed = self.elapsed_seconds()
        if elapsed > self.deadline_seconds:
            raise QueryTimeout(
                "query exceeded its %.3fs deadline (%.3fs elapsed, of "
                "which %.3fs simulated network delay)"
                % (self.deadline_seconds, elapsed, self.simulated_seconds),
                elapsed=elapsed, timeout=self.deadline_seconds,
            )

    # -------------------------------------------------------------- charging

    def fits(self, pages: float) -> bool:
        return pages <= self.memory_pages

    def charge_scan(self, num_pages: float) -> None:
        self.ledger.charge_reads(max(1.0, num_pages))

    def charge_cpu(self, steps: float = 1.0) -> None:
        self.ledger.charge_cpu(steps)

    def _charge_cpu_with_deadline(self, steps: float = 1.0) -> None:
        self.ledger.charge_cpu(steps)
        # count *steps*, not calls: the vector engine charges a whole
        # batch in one call, and must hit deadline checks as often per
        # row as the iterator engine does
        self._tick += int(steps) if steps > 1 else 1
        if self._tick > _DEADLINE_CHECK_MASK:
            self._tick = 0
            self.check_deadline()

    def charge_materialize(self, rows: int, width: int) -> float:
        """Charge building a temp; returns its page count."""
        self.ledger.charge_cpu(rows)
        temp_pages = pages_for(rows, width)
        if not self.fits(temp_pages):
            self.ledger.charge_writes(temp_pages)
        return temp_pages

    def charge_rescan(self, temp: TempTable) -> None:
        self.ledger.charge_cpu(len(temp.rows))
        if temp.spilled:
            self.ledger.charge_reads(temp.num_pages)

    # ------------------------------------------------------------ networking

    def charge_ship(self, rows: float, width: int,
                    from_site: Optional[str] = None,
                    to_site: Optional[str] = None) -> None:
        """Ship ``rows`` of ``width`` bytes between sites.

        Routed through the simulated network when one is installed (so
        fault injection, retries, and deadline-advancing backoff apply);
        otherwise charged inline exactly as before.
        """
        nbytes = max(0.0, rows) * width
        if self.network is not None:
            self.network.transfer(self, from_site, to_site, nbytes)
        else:
            messages = max(1, math.ceil(nbytes / self.message_payload_bytes))
            self.ledger.charge_network(messages, nbytes)
        self.charge_cpu(rows)

    def charge_message(self, nbytes: float,
                       from_site: Optional[str] = None,
                       to_site: Optional[str] = None) -> None:
        """One message of ``nbytes`` (e.g. a shipped Bloom filter)."""
        if self.network is not None:
            self.network.transfer(self, from_site, to_site, nbytes)
        else:
            self.ledger.charge_message(nbytes)

    def charge_probe_roundtrip(self, local_site: Optional[str],
                               remote_site: Optional[str],
                               request_bytes: float,
                               response_bytes: float) -> None:
        """A fetch-matches probe: request out, matching rows back."""
        if self.network is not None:
            self.network.transfer(self, local_site, remote_site,
                                  request_bytes)
            self.network.transfer(self, remote_site, local_site,
                                  response_bytes)
        else:
            self.ledger.charge_network(2, request_bytes + response_bytes)

    # --------------------------------------------------------------- memory

    def mem_acquire(self, nbytes: float) -> None:
        """Account ``nbytes`` of operator working memory against the
        per-query budget; raises :class:`ResourceExhausted` when the
        budget would be exceeded."""
        if nbytes <= 0:
            return
        held = self.mem_held_bytes + nbytes
        budget = self.memory_budget_bytes
        if budget is not None and held > budget:
            raise ResourceExhausted(
                "operator memory request of %d bytes would exceed the "
                "per-query budget (%d of %d bytes already held)"
                % (nbytes, self.mem_held_bytes, budget),
                requested_bytes=nbytes, budget_bytes=budget,
            )
        self.mem_held_bytes = held
        if held > self.mem_peak_bytes:
            self.mem_peak_bytes = held

    def mem_release(self, nbytes: float) -> None:
        self.mem_held_bytes = max(0.0, self.mem_held_bytes - nbytes)

    # --------------------------------------------------------- filter sets

    def bind_filter_set(self, param_id: str, temp: TempTable) -> None:
        self.filter_sets[param_id] = temp
        # Exact sets double as membership structures for RuntimeMembership.
        if len(temp.schema) == 1:
            keys = {row[0] for row in temp.rows}
        else:
            keys = set(temp.rows)
        self.memberships[param_id] = keys

    def bind_membership(self, param_id: str, structure) -> None:
        self.memberships[param_id] = structure

    def filter_set(self, param_id: str) -> TempTable:
        try:
            return self.filter_sets[param_id]
        except KeyError:
            raise ExecutionError(
                "filter set %r was not bound before execution" % param_id
            )

    def membership(self, param_id: str):
        try:
            return self.memberships[param_id]
        except KeyError:
            raise ExecutionError(
                "membership %r was not bound before execution" % param_id
            )
