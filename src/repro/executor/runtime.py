"""Execution runtime: cost accounting and filter-set bindings.

The :class:`RuntimeContext` is threaded through every operator. It holds
the measured :class:`CostLedger`, the memory budget that decides when
temps/sorts/hash tables "spill" (spills are charged, not performed — the
page model substitutes for a disk, see DESIGN.md), and the run-time
bindings of filter sets produced by Filter Join / nested-iteration
operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ExecutionError
from ..ledger import CostLedger, CostParams
from ..storage.schema import Schema
from ..storage.table import pages_for


@dataclass
class TempTable:
    """A materialized intermediate: rows plus spill bookkeeping."""

    rows: List[tuple]
    schema: Schema
    spilled: bool = False

    @property
    def num_pages(self) -> float:
        return pages_for(len(self.rows), self.schema.row_width())


class RuntimeContext:
    """Shared state for one plan execution."""

    def __init__(self, ledger: Optional[CostLedger] = None,
                 params: Optional[CostParams] = None,
                 memory_pages: int = 128,
                 message_payload_bytes: int = 8192):
        self.ledger = ledger if ledger is not None else CostLedger()
        self.params = params or CostParams()
        self.memory_pages = memory_pages
        self.message_payload_bytes = message_payload_bytes
        # param_id -> TempTable holding the exact filter set
        self.filter_sets: Dict[str, TempTable] = {}
        # param_id -> membership structure (set of keys, or a BloomFilter)
        self.memberships: Dict[str, object] = {}

    # -------------------------------------------------------------- charging

    def fits(self, pages: float) -> bool:
        return pages <= self.memory_pages

    def charge_scan(self, num_pages: float) -> None:
        self.ledger.charge_reads(max(1.0, num_pages))

    def charge_cpu(self, steps: float = 1.0) -> None:
        self.ledger.charge_cpu(steps)

    def charge_materialize(self, rows: int, width: int) -> float:
        """Charge building a temp; returns its page count."""
        self.ledger.charge_cpu(rows)
        temp_pages = pages_for(rows, width)
        if not self.fits(temp_pages):
            self.ledger.charge_writes(temp_pages)
        return temp_pages

    def charge_rescan(self, temp: TempTable) -> None:
        self.ledger.charge_cpu(len(temp.rows))
        if temp.spilled:
            self.ledger.charge_reads(temp.num_pages)

    def charge_ship(self, rows: float, width: int) -> None:
        nbytes = max(0.0, rows) * width
        messages = max(1, math.ceil(nbytes / self.message_payload_bytes))
        self.ledger.net_msgs += messages
        self.ledger.net_bytes += nbytes
        self.ledger.charge_cpu(rows)

    # --------------------------------------------------------- filter sets

    def bind_filter_set(self, param_id: str, temp: TempTable) -> None:
        self.filter_sets[param_id] = temp
        # Exact sets double as membership structures for RuntimeMembership.
        if len(temp.schema) == 1:
            keys = {row[0] for row in temp.rows}
        else:
            keys = set(temp.rows)
        self.memberships[param_id] = keys

    def bind_membership(self, param_id: str, structure) -> None:
        self.memberships[param_id] = structure

    def filter_set(self, param_id: str) -> TempTable:
        try:
            return self.filter_sets[param_id]
        except KeyError:
            raise ExecutionError(
                "filter set %r was not bound before execution" % param_id
            )

    def membership(self, param_id: str):
        try:
            return self.memberships[param_id]
        except KeyError:
            raise ExecutionError(
                "membership %r was not bound before execution" % param_id
            )
