"""Typed numpy column storage: the vector engine's native table layout.

A :class:`ColumnStore` holds one :class:`ColumnVector` per schema column:
a dtype-homogeneous numpy array (``int64`` for INT, ``float64`` for
FLOAT, ``bool_`` for BOOL, ``int32`` dictionary codes for STR) plus a
*validity bitmap* — a boolean array with ``True`` for present values —
implementing SQL's three-valued NULL semantics without ``object`` boxing.
String columns are dictionary-encoded: the distinct strings live once in
a :class:`StringDictionary` and rows store 32-bit codes, so equality
probes and GROUP BY over strings run as integer kernels.

The store is a *derived acceleration structure*: the row-form list on
:class:`~repro.storage.table.Table` remains the authoritative version
store (MVCC stamps, WAL serialization, and the iterator oracle all read
rows), and the columnar base covers exactly the quiesced prefix of the
physical row list. Rows appended after the last compaction form a
row-shaped delta tail that :meth:`ColumnStore.extend` folds in; any
in-place change below the base (deletes, vacuum, clustering) simply
invalidates the store, which is rebuilt lazily at the next scan. See
docs/execution.md ("Columnar storage").

Value fidelity is absolute: a value must round-trip ``Python ->
array -> Python`` bit-exactly or the column refuses encoding and falls
back to a plain Python list (``None`` slot in the store), keeping the
engine-differential guarantee intact. In particular ints beyond 64 bits
are never narrowed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

try:  # numpy is an optional accelerator; everything degrades to rows
    import numpy as np
except ImportError:  # pragma: no cover - the CI image ships numpy
    np = None

from .schema import DataType, Schema

#: whether the columnar fast path is available in this interpreter
AVAILABLE = np is not None

#: |value| bound under which int64 arithmetic kernels cannot overflow
#: (two operands summed or multiplied stay inside the int64 range)
INT64_SAFE = 2 ** 62


class StringDictionary:
    """Distinct strings of one column, in first-appearance order.

    Codes are indexes into :attr:`entries`; once assigned, a code is
    never reused or remapped, so views taken before an append stay
    valid. Ordered comparisons use :meth:`sort_ranks`, a cached
    rank-permutation recomputed only when entries were added.
    """

    __slots__ = ("entries", "code_of", "_ranks", "_ranks_size", "_sorted")

    def __init__(self):
        self.entries: List[str] = []
        self.code_of: Dict[str, int] = {}
        self._ranks = None
        self._ranks_size = -1
        self._sorted = None

    def __len__(self) -> int:
        return len(self.entries)

    def encode(self, value: str) -> int:
        code = self.code_of.get(value)
        if code is None:
            code = len(self.entries)
            self.entries.append(value)
            self.code_of[value] = code
        return code

    def lookup(self, value) -> int:
        """Code for ``value``, or -1 when absent (never inserts)."""
        return self.code_of.get(value, -1)

    def sort_ranks(self):
        """``ranks[code]`` = position of that entry in sorted order.

        Lets MIN/MAX and ordered comparisons over codes use integer
        kernels: ``ranks[a] < ranks[b]`` iff ``entries[a] < entries[b]``.
        """
        if self._ranks_size != len(self.entries):
            order = sorted(range(len(self.entries)),
                           key=self.entries.__getitem__)
            ranks = np.empty(len(self.entries), dtype=np.int64)
            for rank, code in enumerate(order):
                ranks[code] = rank
            self._ranks = ranks
            self._sorted = [self.entries[code] for code in order]
            self._ranks_size = len(self.entries)
        return self._ranks

    def sorted_entries(self) -> List[str]:
        """Entries in sorted order (``sorted_entries()[rank]`` inverts
        :meth:`sort_ranks`); cached together with the ranks."""
        self.sort_ranks()
        return self._sorted


class ColumnVector:
    """One column over ``n`` rows: values array + validity bitmap.

    ``mask`` is ``None`` when every value is present (the overwhelmingly
    common case), else a boolean array with ``True`` marking valid rows.
    ``dictionary`` is set for string columns, whose ``values`` are int32
    codes (the code at an invalid row is 0 and meaningless).

    Vectors are immutable once handed out; :meth:`slice`, :meth:`take`
    and :meth:`select` build views/copies, never mutate.
    """

    __slots__ = ("values", "mask", "dictionary")

    def __init__(self, values, mask=None, dictionary=None):
        self.values = values
        self.mask = mask
        self.dictionary = dictionary

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, i):
        """Exact Python value at ``i`` (or a sliced vector), so legacy
        per-element operator paths can index a vector like a list."""
        if isinstance(i, slice):
            start, stop, step = i.indices(len(self.values))
            if step == 1:
                return self.slice(start, stop)
            return self.tolist()[i]
        return self.item(i)

    def __iter__(self):
        return iter(self.tolist())

    # ------------------------------------------------------- construction

    @staticmethod
    def from_values(dtype: DataType, column: Sequence) -> \
            Optional["ColumnVector"]:
        """Encode one column of Python values, or ``None`` when the
        values cannot round-trip exactly (the caller keeps rows)."""
        if np is None:
            return None
        n = len(column)
        mask = None
        if any(v is None for v in column):
            mask = np.fromiter((v is not None for v in column),
                               dtype=np.bool_, count=n)
        try:
            if dtype is DataType.INT:
                values = np.fromiter(
                    (v if v is not None else 0 for v in column),
                    dtype=np.int64, count=n)
            elif dtype is DataType.FLOAT:
                values = np.fromiter(
                    (v if v is not None else 0.0 for v in column),
                    dtype=np.float64, count=n)
                if np.isnan(values).any():
                    # NaN breaks hash/identity-vs-equality parity with
                    # the row engines (dict buckets, set membership);
                    # such columns stay on the Python path
                    return None
            elif dtype is DataType.BOOL:
                values = np.fromiter(
                    (bool(v) for v in column),
                    dtype=np.bool_, count=n)
            elif dtype is DataType.STR:
                dictionary = StringDictionary()
                encode = dictionary.encode
                values = np.fromiter(
                    (encode(v) if v is not None else 0 for v in column),
                    dtype=np.int32, count=n)
                return ColumnVector(values, mask, dictionary)
            else:
                return None
        except (OverflowError, TypeError, ValueError):
            return None  # e.g. an int beyond 64 bits: keep Python rows
        return ColumnVector(values, mask)

    def extended(self, dtype: DataType, column: Sequence) -> \
            Optional["ColumnVector"]:
        """A new vector = self ++ encoded ``column`` (delta folding).

        String columns re-use (and grow) this vector's dictionary, so
        existing codes stay stable. Returns ``None`` if the tail cannot
        encode; the caller invalidates and keeps rows."""
        tail = None
        if dtype is DataType.STR and self.dictionary is not None:
            n = len(column)
            mask = None
            if any(v is None for v in column):
                mask = np.fromiter((v is not None for v in column),
                                   dtype=np.bool_, count=n)
            try:
                encode = self.dictionary.encode
                values = np.fromiter(
                    (encode(v) if v is not None else 0 for v in column),
                    dtype=np.int32, count=n)
            except (TypeError, ValueError):
                return None
            tail = ColumnVector(values, mask, self.dictionary)
        else:
            tail = ColumnVector.from_values(dtype, column)
            if tail is None:
                return None
            if (self.dictionary is not None) != \
                    (tail.dictionary is not None):
                return None
        if tail.dictionary is not None and \
                tail.dictionary is not self.dictionary:
            # re-encode the tail's codes into this vector's dictionary
            translate = np.fromiter(
                (self.dictionary.encode(entry)
                 for entry in tail.dictionary.entries),
                dtype=np.int32, count=len(tail.dictionary.entries))
            tail = ColumnVector(
                translate[tail.values] if len(tail.values) else
                tail.values,
                tail.mask, self.dictionary)
        values = np.concatenate([self.values, tail.values])
        if self.mask is None and tail.mask is None:
            mask = None
        else:
            left = (self.mask if self.mask is not None
                    else np.ones(len(self.values), dtype=np.bool_))
            right = (tail.mask if tail.mask is not None
                     else np.ones(len(tail.values), dtype=np.bool_))
            mask = np.concatenate([left, right])
        return ColumnVector(values, mask, self.dictionary)

    # ------------------------------------------------------------- views

    def slice(self, start: int, stop: int) -> "ColumnVector":
        return ColumnVector(
            self.values[start:stop],
            None if self.mask is None else self.mask[start:stop],
            self.dictionary,
        )

    def take(self, indices) -> "ColumnVector":
        return ColumnVector(
            self.values[indices],
            None if self.mask is None else self.mask[indices],
            self.dictionary,
        )

    def select(self, flags) -> "ColumnVector":
        return ColumnVector(
            self.values[flags],
            None if self.mask is None else self.mask[flags],
            self.dictionary,
        )

    # ------------------------------------------------- materialization

    def item(self, i: int):
        """The exact Python value at row ``i`` (late materialization of
        a single cell)."""
        if self.mask is not None and not self.mask[i]:
            return None
        if self.dictionary is not None:
            return self.dictionary.entries[int(self.values[i])]
        return self.values[i].item()

    def tolist(self) -> list:
        """The whole column as exact Python objects (the pipeline
        breaker: rows are gathered only here)."""
        if self.dictionary is not None:
            entries = self.dictionary.entries
            out = [entries[c] for c in self.values.tolist()]
        else:
            out = self.values.tolist()
        if self.mask is not None:
            for i in np.nonzero(~self.mask)[0].tolist():
                out[i] = None
        return out

    # ---------------------------------------------------------- kernels

    def valid_mask(self):
        """Validity as a full boolean array (allocates when all-valid)."""
        if self.mask is not None:
            return self.mask
        return np.ones(len(self.values), dtype=np.bool_)

    def true_flags(self):
        """Selection flags under ``value IS TRUE`` semantics (NULL and
        everything non-boolean select nothing)."""
        if self.values.dtype == np.bool_ and self.dictionary is None:
            if self.mask is None:
                return self.values
            return self.values & self.mask
        return np.zeros(len(self.values), dtype=np.bool_)

    def __repr__(self) -> str:
        kind = ("str[dict %d]" % len(self.dictionary)
                if self.dictionary is not None else str(self.values.dtype))
        return "ColumnVector(%s, %d rows%s)" % (
            kind, len(self.values),
            "" if self.mask is None else ", nullable")


class ColumnStore:
    """All columns of one table prefix, ready for vectorized scans.

    ``columns[j]`` is a :class:`ColumnVector`, or a plain Python list
    for the rare column that refuses exact encoding (then that column
    simply runs on the interpreter path; the others stay vectorized).
    """

    __slots__ = ("schema", "columns", "num_rows")

    def __init__(self, schema: Schema, columns: list, num_rows: int):
        self.schema = schema
        self.columns = columns
        self.num_rows = num_rows

    @staticmethod
    def build(schema: Schema, rows: Sequence[tuple]) -> "ColumnStore":
        if rows:
            raw = list(zip(*rows))
        else:
            raw = [() for _ in schema]
        columns = []
        for col, values in zip(schema, raw):
            vector = ColumnVector.from_values(col.dtype, list(values))
            columns.append(vector if vector is not None else list(values))
        return ColumnStore(schema, columns, len(rows))

    def extend(self, rows: Sequence[tuple]) -> "ColumnStore":
        """Fold a row-form delta tail into the columnar base, returning
        the (new) store. Dictionary codes of existing strings are
        preserved across compactions."""
        if not rows:
            return self
        raw = list(zip(*rows))
        columns = []
        for col, current, values in zip(self.schema, self.columns, raw):
            values = list(values)
            if isinstance(current, ColumnVector):
                merged = current.extended(col.dtype, values)
                if merged is None:
                    merged = (current.tolist() + values)
            else:
                merged = current + values
            columns.append(merged)
        return ColumnStore(self.schema, columns,
                           self.num_rows + len(rows))

    def column_slices(self, start: int, stop: int) -> list:
        return [
            (col.slice(start, stop) if isinstance(col, ColumnVector)
             else col[start:stop])
            for col in self.columns
        ]


def concat_columns(parts: list):
    """Concatenate per-batch column pieces (ColumnVectors and/or lists)
    into one column; used by joins to assemble the build side. Falls
    back to one Python list unless every piece is a ColumnVector over
    the same dictionary (or dictionary-free)."""
    if not parts:
        return []
    if len(parts) == 1:
        return parts[0]
    first = parts[0]
    if isinstance(first, ColumnVector) and all(
            isinstance(p, ColumnVector)
            and p.dictionary is first.dictionary
            and p.values.dtype == first.values.dtype
            for p in parts[1:]):
        values = np.concatenate([p.values for p in parts])
        if all(p.mask is None for p in parts):
            mask = None
        else:
            mask = np.concatenate([p.valid_mask() for p in parts])
        return ColumnVector(values, mask, first.dictionary)
    out: list = []
    for p in parts:
        out.extend(p.tolist() if isinstance(p, ColumnVector) else p)
    return out


def materialize(column) -> list:
    """A column piece as a plain Python list (exact objects)."""
    if isinstance(column, ColumnVector):
        return column.tolist()
    return column if isinstance(column, list) else list(column)
