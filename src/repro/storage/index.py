"""Secondary indexes over stored tables.

Two index kinds are provided, matching what the cost model distinguishes:

- :class:`HashIndex` — O(1) equality probes, no ordered access.
- :class:`SortedIndex` — bisect-based equality and range probes; a scan in
  key order yields the "interesting order" the optimizer tracks.

Indexes map key values to *row positions* in the owning table, so they stay
valid as long as the table is append-only (the engine's tables are).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, List, Sequence, Tuple

from ..errors import CatalogError


class Index:
    """Base class: an index on one column of a table."""

    kind = "abstract"

    def __init__(self, column_name: str):
        self.column_name = column_name

    def insert(self, key: Any, position: int) -> None:
        raise NotImplementedError

    def probe(self, key: Any) -> Sequence[int]:
        """Row positions whose key equals ``key``."""
        raise NotImplementedError

    def remove_from(self, position: int) -> None:
        """Drop every entry whose row position is >= ``position``.

        Tables are append-only, so undoing an insert batch truncates
        the row list back to its old length; this is the matching index
        operation (the removed positions are exactly the tail).
        """
        raise NotImplementedError

    def bulk_load(self, keys_positions: Iterable[Tuple[Any, int]]) -> None:
        for key, pos in keys_positions:
            self.insert(key, pos)

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.column_name)


class HashIndex(Index):
    """Equality-only index backed by a dict of key -> positions."""

    kind = "hash"

    def __init__(self, column_name: str):
        super().__init__(column_name)
        self._buckets = {}

    def insert(self, key: Any, position: int) -> None:
        self._buckets.setdefault(key, []).append(position)

    def bulk_load(self, keys_positions: Iterable[Tuple[Any, int]]) -> None:
        self._buckets = {}
        for key, position in keys_positions:
            self.insert(key, position)

    def probe(self, key: Any) -> Sequence[int]:
        return self._buckets.get(key, ())

    def remove_from(self, position: int) -> None:
        empty = []
        for key, positions in self._buckets.items():
            positions[:] = [p for p in positions if p < position]
            if not positions:
                empty.append(key)
        for key in empty:
            del self._buckets[key]

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())


class SortedIndex(Index):
    """Ordered index backed by parallel sorted key/position lists.

    Supports equality probes, range probes, and full in-order iteration.
    Inserts keep the lists sorted (bisect.insort semantics); bulk loading
    appends then sorts once.
    """

    kind = "sorted"

    def __init__(self, column_name: str):
        super().__init__(column_name)
        self._keys: List[Any] = []
        self._positions: List[int] = []

    def insert(self, key: Any, position: int) -> None:
        if key is None:
            raise CatalogError("cannot index NULL key on %r" % self.column_name)
        at = bisect.bisect_right(self._keys, key)
        self._keys.insert(at, key)
        self._positions.insert(at, position)

    def bulk_load(self, keys_positions: Iterable[Tuple[Any, int]]) -> None:
        pairs = sorted(keys_positions, key=lambda kp: kp[0])
        self._keys = [k for k, _ in pairs]
        self._positions = [p for _, p in pairs]

    def probe(self, key: Any) -> Sequence[int]:
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._positions[lo:hi]

    def probe_range(self, low: Any, high: Any, *, low_inclusive: bool = True,
                    high_inclusive: bool = True) -> Sequence[int]:
        """Row positions with key in the given range; None bounds are open."""
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._keys, low)
        else:
            lo = bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        elif high_inclusive:
            hi = bisect.bisect_right(self._keys, high)
        else:
            hi = bisect.bisect_left(self._keys, high)
        return self._positions[lo:hi]

    def remove_from(self, position: int) -> None:
        keep = [i for i, p in enumerate(self._positions) if p < position]
        self._keys = [self._keys[i] for i in keep]
        self._positions = [self._positions[i] for i in keep]

    def in_order(self) -> Iterator[int]:
        """All row positions in ascending key order."""
        return iter(self._positions)

    def __len__(self) -> int:
        return len(self._keys)
