"""In-memory tables with a simulated page layout.

Rows live in a Python list, but every table exposes a *page model*: given
its schema's row width and a fixed page size, ``num_pages`` says how many
page I/Os a full scan costs. Executor operators charge those I/Os to the
cost ledger; the optimizer's formulas predict the same quantities from
catalog statistics. This is the substitution documented in DESIGN.md for
the paper's disk-based engine.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from ..errors import CatalogError
from .index import HashIndex, Index, SortedIndex
from .schema import Schema

PAGE_SIZE_BYTES = 4096


def pages_for(num_rows: float, row_width: int) -> float:
    """Pages needed to hold ``num_rows`` rows of ``row_width`` bytes.

    Returns a float so cost estimates stay smooth; callers that need a
    whole-page count use ``math.ceil``. Zero rows still cost one page
    (the header/read-to-discover-empty page).
    """
    if num_rows <= 0:
        return 1.0
    per_page = max(1, PAGE_SIZE_BYTES // max(1, row_width))
    return max(1.0, num_rows / per_page)


class Table:
    """An append-only stored relation.

    Tables own their secondary indexes; ``create_index`` builds over
    existing rows and ``insert`` maintains all indexes incrementally.
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self.rows: List[tuple] = []
        self.indexes: dict = {}
        # Column the rows are physically ordered by (clustered), if any;
        # equality probes on it touch contiguous pages.
        self.clustered_on: Optional[str] = None

    # ------------------------------------------------------------------ data

    def insert(self, row: Sequence) -> None:
        """Validate, coerce, and append one row, maintaining indexes."""
        coerced = self.schema.validate_row(row)
        position = len(self.rows)
        self.rows.append(coerced)
        for index in self.indexes.values():
            key = coerced[self.schema.index_of(index.column_name)]
            index.insert(key, position)

    def insert_many(self, rows: Iterable[Sequence]) -> int:
        """Insert many rows; returns the number inserted.

        A bad row mid-batch raises with earlier rows already appended;
        statement-level all-or-nothing behavior is the transaction
        manager's job (it truncates back to the pre-statement length —
        see :meth:`truncate_to` and ``repro.txn``).
        """
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate_to(self, num_rows: int) -> None:
        """Discard every row at position >= ``num_rows``, maintaining
        indexes. The undo of an append, since tables are append-only."""
        if num_rows >= len(self.rows):
            return
        del self.rows[num_rows:]
        for index in self.indexes.values():
            index.remove_from(num_rows)

    def row_at(self, position: int) -> tuple:
        return self.rows[position]

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def tuples_per_page(self) -> int:
        return max(1, PAGE_SIZE_BYTES // self.schema.row_width())

    @property
    def num_pages(self) -> int:
        """Whole pages occupied (at least 1, even when empty)."""
        return int(math.ceil(pages_for(self.num_rows, self.schema.row_width())))

    def cluster_by(self, column_name: str) -> None:
        """Physically sort the rows by one column and rebuild indexes.

        Models a clustered table: equality/range probes on the cluster
        column read contiguous pages instead of Yao-scattered ones.
        """
        position = self.schema.index_of(column_name)
        self.rows.sort(key=lambda row: (row[position] is None,
                                        row[position]))
        self.clustered_on = column_name
        for index in self.indexes.values():
            col_pos = self.schema.index_of(index.column_name)
            index.bulk_load(
                (row[col_pos], at) for at, row in enumerate(self.rows)
            )

    # --------------------------------------------------------------- indexes

    def create_index(self, column_name: str, kind: str = "hash") -> Index:
        """Build a secondary index on one column over the existing rows."""
        if column_name in self.indexes:
            raise CatalogError(
                "table %r already has an index on %r" % (self.name, column_name)
            )
        col_pos = self.schema.index_of(column_name)
        if kind == "hash":
            index: Index = HashIndex(column_name)
        elif kind == "sorted":
            index = SortedIndex(column_name)
        else:
            raise CatalogError("unknown index kind %r" % kind)
        index.bulk_load(
            (row[col_pos], position) for position, row in enumerate(self.rows)
        )
        self.indexes[column_name] = index
        return index

    def drop_index(self, column_name: str) -> None:
        """Remove the index on one column (the undo of create_index)."""
        if column_name not in self.indexes:
            raise CatalogError(
                "table %r has no index on %r" % (self.name, column_name)
            )
        del self.indexes[column_name]

    def index_on(self, column_name: str) -> Optional[Index]:
        return self.indexes.get(column_name)

    def __repr__(self) -> str:
        return "Table(%s, %d rows, %d pages)" % (
            self.name,
            self.num_rows,
            self.num_pages,
        )
