"""In-memory tables with a simulated page layout and MVCC versioning.

Rows live in a Python list, but every table exposes a *page model*: given
its schema's row width and a fixed page size, ``num_pages`` says how many
page I/Os a full scan costs. Executor operators charge those I/Os to the
cost ledger; the optimizer's formulas predict the same quantities from
catalog statistics. This is the substitution documented in DESIGN.md for
the paper's disk-based engine.

Concurrency (PR 8) adds snapshot-isolated versioning on top of the
same storage: ``_rows`` holds every version ever created, a parallel
``_xmins`` list stamps each version with its creating transaction, and
a sparse ``_xmaxs`` dict stamps deleted/superseded versions with the
transaction that removed them. ``Table.rows`` is now a *property*: on
a quiesced table (no unfrozen stamps) it returns the raw physical list
— bit-identical to the pre-MVCC engine, zero per-row overhead — and
otherwise a cached list of the versions visible to the current
snapshot (see :mod:`repro.storage.mvcc` for the visibility rules and
the freezing protocol that keeps tables quiesced). Updates never
modify a row in place: they stamp the old version's ``xmax`` and
append the new version, so concurrent readers keep seeing the world
their snapshot pinned. :meth:`vacuum` physically reclaims frozen-dead
versions once no transaction can need them.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CatalogError
from . import columnar
from .index import HashIndex, Index, SortedIndex
from .mvcc import FROZEN, MVCCState, Snapshot
from .schema import Schema

PAGE_SIZE_BYTES = 4096


def pages_for(num_rows: float, row_width: int) -> float:
    """Pages needed to hold ``num_rows`` rows of ``row_width`` bytes.

    Returns a float so cost estimates stay smooth; callers that need a
    whole-page count use ``math.ceil``. Zero rows still cost one page
    (the header/read-to-discover-empty page).
    """
    if num_rows <= 0:
        return 1.0
    per_page = max(1, PAGE_SIZE_BYTES // max(1, row_width))
    return max(1.0, num_rows / per_page)


class Table:
    """An append-only, multi-versioned stored relation.

    Tables own their secondary indexes; ``create_index`` builds over
    existing rows and ``insert`` maintains all indexes incrementally.
    Indexes map keys to *physical* positions and may reference dead
    versions; readers re-check visibility via
    :meth:`visible_positions`.
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self._rows: List[tuple] = []
        self.indexes: dict = {}
        # Column the rows are physically ordered by (clustered), if any;
        # equality probes on it touch contiguous pages.
        self.clustered_on: Optional[str] = None
        # ------------------------------------------- version metadata
        #: the catalog's MVCCState once installed; a standalone Table
        #: never sees stamped versions and behaves exactly as before
        self._mvcc: Optional[MVCCState] = None
        #: creating txn per physical row; FROZEN = visible to all
        self._xmins: List[int] = []
        #: physical position -> deleting txn; FROZEN = dead to all
        self._xmaxs: Dict[int, int] = {}
        #: unfrozen txn id -> positions it created (for freeze/undo)
        self._writers: Dict[int, List[int]] = {}
        #: unfrozen txn id -> positions it deleted (for freeze)
        self._deleters: Dict[int, List[int]] = {}
        #: count of frozen-dead versions (xmax == FROZEN), vacuumable
        self._dead = 0
        #: bumped on any row/version change; keys the visibility cache
        self._mutations = 0
        self._vis_key: Optional[tuple] = None
        self._vis_rows: List[tuple] = []
        # ------------------------------------------- columnar base
        #: typed numpy column arrays covering the quiesced prefix
        #: ``_rows[:_col_base]`` (see repro.storage.columnar); rows past
        #: the base are the row-form delta tail, folded in by
        #: :meth:`compact`. Never consulted on a non-quiesced table.
        self._colstore: Optional["columnar.ColumnStore"] = None
        self._col_base = 0

    # ------------------------------------------------------------------ data

    @property
    def rows(self) -> List[tuple]:
        """The rows visible to the current snapshot.

        Fast path: with no unfrozen stamps anywhere (the common,
        quiesced state) every physical row is visible and the raw list
        is returned directly.
        """
        if not self._xmaxs and not self._writers:
            return self._rows
        if self._mvcc is None:
            return self._rows
        return self._visible_rows(self._mvcc.read_view())

    # -------------------------------------------------- columnar base

    def _col_invalidate(self) -> None:
        self._colstore = None
        self._col_base = 0

    def compact(self) -> Optional["columnar.ColumnStore"]:
        """(Re)build or extend the columnar base to cover every
        physical row. Only meaningful on a quiesced table — with
        unfrozen version stamps the caller must stay on the row path —
        and a no-op when numpy is unavailable.

        Called lazily by :meth:`columnar_view` at scan time, and
        eagerly by :meth:`vacuum` right after physical compaction, so
        freshly frozen/vacuumed versions land in the columnar base.
        """
        if not columnar.AVAILABLE or self._xmaxs or self._writers:
            return None
        n = len(self._rows)
        if self._colstore is None:
            if n == 0:
                return None
            self._colstore = columnar.ColumnStore.build(
                self.schema, self._rows)
            self._col_base = n
        elif self._col_base < n:
            # fold the row-form delta tail into the columnar base
            self._colstore = self._colstore.extend(
                self._rows[self._col_base:])
            self._col_base = n
        return self._colstore

    def columnar_view(self) -> Optional["columnar.ColumnStore"]:
        """The columnar base covering *all* currently visible rows, or
        ``None`` when the table is not quiesced (vector scans then fall
        back to the row-form visibility path)."""
        if self._xmaxs or self._writers:
            return None
        return self.compact()

    @property
    def physical_rows(self) -> List[tuple]:
        """Raw storage, every version including dead ones. Owned by
        the transaction manager and vacuum; everyone else wants
        :attr:`rows`."""
        return self._rows

    @property
    def physical_count(self) -> int:
        return len(self._rows)

    def _visible_rows(self, snap: Snapshot) -> List[tuple]:
        key = (snap.txn_id, snap.seq, self._mutations)
        if key == self._vis_key:
            return self._vis_rows
        xmins, xmaxs = self._xmins, self._xmaxs
        out = []
        for pos, row in enumerate(self._rows):
            xmin = xmins[pos]
            if xmin and not snap.sees(xmin):
                continue
            xmax = xmaxs.get(pos)
            if xmax is not None and (xmax == FROZEN or snap.sees(xmax)):
                continue
            out.append(row)
        self._vis_key = key
        self._vis_rows = out
        return out

    def visible_items(self) -> List[Tuple[int, tuple]]:
        """(physical position, row) pairs visible to the current
        snapshot — what UPDATE/DELETE iterate to find their targets."""
        if (not self._xmaxs and not self._writers) or self._mvcc is None:
            return list(enumerate(self._rows))
        snap = self._mvcc.read_view()
        xmins, xmaxs = self._xmins, self._xmaxs
        out = []
        for pos, row in enumerate(self._rows):
            xmin = xmins[pos]
            if xmin and not snap.sees(xmin):
                continue
            xmax = xmaxs.get(pos)
            if xmax is not None and (xmax == FROZEN or snap.sees(xmax)):
                continue
            out.append((pos, row))
        return out

    def visible_positions(self, positions: Sequence[int]) -> List[int]:
        """Filter index-probe results down to the current snapshot.
        Identity on a quiesced table, so index paths charge exactly
        what they did pre-MVCC."""
        if (not self._xmaxs and not self._writers) or self._mvcc is None:
            return list(positions)
        snap = self._mvcc.read_view()
        xmins, xmaxs = self._xmins, self._xmaxs
        out = []
        for pos in positions:
            xmin = xmins[pos]
            if xmin and not snap.sees(xmin):
                continue
            xmax = xmaxs.get(pos)
            if xmax is not None and (xmax == FROZEN or snap.sees(xmax)):
                continue
            out.append(pos)
        return out

    def conflicting_positions(self, positions: Sequence[int]) -> List[int]:
        """Positions that already carry *any* deletion stamp. A version
        that is visible to the caller yet stamped was written by a
        concurrent transaction — the write-write conflict that
        first-committer-wins turns into a SerializationError."""
        xmaxs = self._xmaxs
        if not xmaxs:
            return []
        return [p for p in positions if p in xmaxs]

    def insert(self, row: Sequence, xmin: int = FROZEN) -> None:
        """Validate, coerce, and append one row, maintaining indexes.

        ``xmin`` stamps the new version with its creating transaction;
        the default FROZEN makes it immediately visible to everyone
        (correct whenever no concurrent snapshot is live)."""
        coerced = self.schema.validate_row(row)
        position = len(self._rows)
        self._rows.append(coerced)
        self._xmins.append(xmin)
        if xmin:
            self._writers.setdefault(xmin, []).append(position)
        self._mutations += 1
        for index in self.indexes.values():
            key = coerced[self.schema.index_of(index.column_name)]
            index.insert(key, position)

    def insert_many(self, rows: Iterable[Sequence],
                    xmin: int = FROZEN) -> int:
        """Insert many rows; returns the number inserted.

        A bad row mid-batch raises with earlier rows already appended;
        statement-level all-or-nothing behavior is the transaction
        manager's job (it truncates back to the pre-statement length —
        see :meth:`truncate_to` and ``repro.txn``).
        """
        count = 0
        for row in rows:
            self.insert(row, xmin=xmin)
            count += 1
        return count

    def mark_deleted(self, position: int, xmax: int = FROZEN) -> None:
        """Stamp one version as deleted by transaction ``xmax``
        (FROZEN = dead to every snapshot immediately)."""
        if position < self._col_base:
            self._col_invalidate()
        self._xmaxs[position] = xmax
        if xmax:
            self._deleters.setdefault(xmax, []).append(position)
        else:
            self._dead += 1
        self._mutations += 1

    def unmark_deleted(self, position: int) -> None:
        """Remove a deletion stamp (the undo of :meth:`mark_deleted`).
        Stale entries in the deleter tracking lists are tolerated by
        :meth:`freeze_txn`'s ownership check."""
        xmax = self._xmaxs.pop(position, None)
        if xmax == FROZEN:
            self._dead -= 1
        self._mutations += 1

    def truncate_to(self, num_rows: int) -> None:
        """Discard every version at position >= ``num_rows``,
        maintaining indexes and version metadata. The undo of an
        append when the tail is known to belong to the caller."""
        if num_rows >= len(self._rows):
            return
        if num_rows < self._col_base:
            self._col_invalidate()
        del self._rows[num_rows:]
        del self._xmins[num_rows:]
        if self._xmaxs:
            kept = {p: x for p, x in self._xmaxs.items() if p < num_rows}
            self._xmaxs = kept
            self._dead = sum(1 for x in kept.values() if x == FROZEN)
        for tracker in (self._writers, self._deleters):
            for txn_id in list(tracker):
                mine = [p for p in tracker[txn_id] if p < num_rows]
                if mine:
                    tracker[txn_id] = mine
                else:
                    del tracker[txn_id]
        self._mutations += 1
        for index in self.indexes.values():
            index.remove_from(num_rows)

    def retract_inserts(self, before: int, txn_id: int) -> None:
        """Undo an insert batch that started at physical position
        ``before``. When the tail above ``before`` is entirely ours
        (always true for statement-level undo, which runs before the
        statement lock is released) it is physically truncated;
        otherwise — transaction rollback after other transactions
        appended — our versions are stamped frozen-dead for vacuum."""
        mine = [p for p in self._writers.get(txn_id, ()) if p >= before]
        if txn_id == FROZEN or len(self._rows) - before == len(mine):
            self.truncate_to(before)
            return
        for position in mine:
            if self._xmaxs.get(position) != FROZEN:
                if position < self._col_base:
                    self._col_invalidate()
                self._xmaxs[position] = FROZEN
                self._dead += 1
        kept = [p for p in self._writers[txn_id] if p < before]
        if kept:
            self._writers[txn_id] = kept
        else:
            del self._writers[txn_id]
        self._mutations += 1

    def freeze_txn(self, txn_id: int) -> None:
        """Rewrite a committed transaction's stamps to FROZEN: its
        insertions become visible to all, its deletions dead to all.
        Called by MVCCState once every live snapshot sees the commit."""
        for position in self._writers.pop(txn_id, ()):
            self._xmins[position] = FROZEN
        for position in self._deleters.pop(txn_id, ()):
            if self._xmaxs.get(position) == txn_id:
                self._xmaxs[position] = FROZEN
                self._dead += 1
        self._mutations += 1

    def forget_txn(self, txn_id: int) -> None:
        """Drop a rolled-back transaction's tracking entries (its
        stamps were already retracted by the undo closures)."""
        self._writers.pop(txn_id, None)
        self._deleters.pop(txn_id, None)
        self._mutations += 1

    def vacuum(self) -> int:
        """Physically reclaim frozen-dead versions, compacting storage
        and rebuilding indexes; returns the number reclaimed.

        Only safe when no transaction holds undo closures referencing
        physical positions — the manager guarantees that by vacuuming
        only while no transaction is live.
        """
        if not self._dead:
            return 0
        xmaxs = self._xmaxs
        keep = [p for p in range(len(self._rows))
                if xmaxs.get(p) != FROZEN]
        reclaimed = len(self._rows) - len(keep)
        if not reclaimed:
            return 0
        remap = {}
        rows: List[tuple] = []
        xmins: List[int] = []
        for new_pos, old_pos in enumerate(keep):
            remap[old_pos] = new_pos
            rows.append(self._rows[old_pos])
            xmins.append(self._xmins[old_pos])
        self._rows = rows
        self._xmins = xmins
        self._xmaxs = {remap[p]: x for p, x in xmaxs.items()
                       if x != FROZEN and p in remap}
        for tracker in (self._writers, self._deleters):
            for txn_id in list(tracker):
                mine = [remap[p] for p in tracker[txn_id] if p in remap]
                if mine:
                    tracker[txn_id] = mine
                else:
                    del tracker[txn_id]
        self._dead = 0
        self._mutations += 1
        for index in self.indexes.values():
            col_pos = self.schema.index_of(index.column_name)
            index.bulk_load(
                (row[col_pos], at) for at, row in enumerate(rows)
            )
        # positions moved: rebuild the columnar base over the compacted
        # heap right away (vacuum is the explicit maintenance point)
        self._col_invalidate()
        self.compact()
        return reclaimed

    @property
    def dead_versions(self) -> int:
        return self._dead

    def row_at(self, position: int) -> tuple:
        return self._rows[position]

    @property
    def num_rows(self) -> int:
        """Rows visible to the current snapshot (physical count on a
        quiesced table)."""
        if not self._xmaxs and not self._writers:
            return len(self._rows)
        return len(self.rows)

    @property
    def tuples_per_page(self) -> int:
        return max(1, PAGE_SIZE_BYTES // self.schema.row_width())

    @property
    def num_pages(self) -> int:
        """Whole pages occupied (at least 1, even when empty). Page
        occupancy is physical: dead versions take space until
        vacuumed, exactly like a real heap."""
        return int(math.ceil(pages_for(len(self._rows),
                                       self.schema.row_width())))

    def cluster_by(self, column_name: str) -> None:
        """Physically sort the rows by one column and rebuild indexes.

        Models a clustered table: equality/range probes on the cluster
        column read contiguous pages instead of Yao-scattered ones.
        Requires a quiesced table (clustering rewrites every physical
        position); frozen-dead versions are vacuumed first.
        """
        if self._writers or any(x != FROZEN
                                for x in self._xmaxs.values()):
            raise CatalogError(
                "cannot cluster %r: transactions hold unfrozen row "
                "versions" % self.name
            )
        if self._xmaxs:
            self.vacuum()
        position = self.schema.index_of(column_name)
        self._rows.sort(key=lambda row: (row[position] is None,
                                         row[position]))
        self.clustered_on = column_name
        self._col_invalidate()
        self._mutations += 1
        for index in self.indexes.values():
            col_pos = self.schema.index_of(index.column_name)
            index.bulk_load(
                (row[col_pos], at) for at, row in enumerate(self._rows)
            )

    # --------------------------------------------------------------- indexes

    def create_index(self, column_name: str, kind: str = "hash") -> Index:
        """Build a secondary index on one column over the existing rows."""
        if column_name in self.indexes:
            raise CatalogError(
                "table %r already has an index on %r" % (self.name, column_name)
            )
        col_pos = self.schema.index_of(column_name)
        if kind == "hash":
            index: Index = HashIndex(column_name)
        elif kind == "sorted":
            index = SortedIndex(column_name)
        else:
            raise CatalogError("unknown index kind %r" % kind)
        index.bulk_load(
            (row[col_pos], position)
            for position, row in enumerate(self._rows)
        )
        self.indexes[column_name] = index
        return index

    def drop_index(self, column_name: str) -> None:
        """Remove the index on one column (the undo of create_index)."""
        if column_name not in self.indexes:
            raise CatalogError(
                "table %r has no index on %r" % (self.name, column_name)
            )
        del self.indexes[column_name]

    def index_on(self, column_name: str) -> Optional[Index]:
        return self.indexes.get(column_name)

    def __repr__(self) -> str:
        return "Table(%s, %d rows, %d pages)" % (
            self.name,
            self.num_rows,
            self.num_pages,
        )
