"""Snapshot bookkeeping for multi-version concurrency control.

Tables keep every row version physically (``Table._rows``) and stamp
versions with the transaction that created them (``xmin``) and, once
deleted or superseded, the transaction that removed them (``xmax``).
This module owns the *temporal* side of that scheme: which transaction
ids a given reader is allowed to see.

The design rides the engine's statement-granularity execution model —
a global lock serializes statements, so MVCC only has to answer
visibility questions *between* statements of concurrent transactions,
never mid-statement. That buys three big simplifications:

- A :class:`Snapshot` is just ``(reader txn id, commit sequence
  number)``. A version stamped by transaction ``t`` is visible when
  ``t`` is the reader itself or ``t`` committed at or before the
  snapshot's sequence number.
- Commit sequence numbers live in one dict (``commit_seq``); rolled
  back transactions simply never appear in it, so their stamps are
  invisible to everyone forever.
- **Freezing**: once a committed transaction is visible to every live
  snapshot (its commit seq is at or below the oldest live snapshot's),
  its version stamps carry no information any more. Its created rows
  are rewritten to ``xmin = 0`` ("frozen", visible to all) and its
  deleted rows to ``xmax = 0`` ("frozen-dead", visible to none, ready
  for vacuum), and its bookkeeping is dropped. A quiesced table —
  no unfrozen stamps at all — serves raw physical rows with zero
  per-row overhead, which is what keeps the single-caller fast path
  within the transaction benchmark's 5% budget.

Vacuum (physical reclamation of frozen-dead versions) lives on
:class:`~repro.storage.table.Table`; the manager triggers it when no
transaction is live, because undo closures capture row positions and
compaction would invalidate them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Sentinel transaction id. As an ``xmin`` it means "frozen": the
#: version predates every live snapshot and is visible to all. As an
#: ``xmax`` it means "frozen-dead": the deletion predates every live
#: snapshot, so the version is visible to none and vacuum may reclaim
#: the slot.
FROZEN = 0


class Snapshot:
    """An immutable read view: everything committed at or before
    ``seq``, plus the reader's own uncommitted work."""

    __slots__ = ("mvcc", "txn_id", "seq")

    def __init__(self, mvcc: "MVCCState", txn_id: Optional[int],
                 seq: int):
        self.mvcc = mvcc
        self.txn_id = txn_id
        self.seq = seq

    def sees(self, txn_id: int) -> bool:
        """Is a version stamped by ``txn_id`` inside this snapshot?"""
        if txn_id == self.txn_id:
            return True  # your own writes are always visible to you
        seq = self.mvcc.commit_seq.get(txn_id)
        return seq is not None and seq <= self.seq

    def __repr__(self) -> str:
        return "Snapshot(txn=%s, seq=%d)" % (self.txn_id, self.seq)


class MVCCState:
    """Commit ordering + live-snapshot registry for one catalog."""

    def __init__(self):
        #: txn id -> commit sequence number, for every committed
        #: transaction whose stamps have not been frozen yet
        self.commit_seq: Dict[int, int] = {}
        self.last_seq = 0
        #: txn id -> Snapshot, for every open *explicit* transaction.
        #: Implicit (single-statement) transactions never register:
        #: they begin and commit under the statement lock, so no other
        #: snapshot can observe their in-flight state.
        self.live: Dict[int, Snapshot] = {}
        #: the snapshot the currently-executing statement reads under
        #: (set and cleared by the statement scope in database.py)
        self.active: Optional[Snapshot] = None
        #: committed-but-unfrozen transactions, in commit order:
        #: (commit seq, txn id, tables it stamped)
        self._recent: List[Tuple[int, int, tuple]] = []
        #: set by the TransactionManager so read_view() can attribute
        #: reads to the current transaction even when no statement
        #: snapshot is active (direct API calls inside BEGIN)
        self.manager = None

    # ------------------------------------------------------- snapshots

    def snapshot(self, txn_id: Optional[int]) -> Snapshot:
        return Snapshot(self, txn_id, self.last_seq)

    def register(self, txn_id: int) -> Snapshot:
        """Pin a begin-snapshot for an explicit transaction."""
        snap = self.snapshot(txn_id)
        self.live[txn_id] = snap
        return snap

    def refresh(self, txn_id: int) -> Snapshot:
        """Re-pin to the latest commit seq (read-committed mode takes
        a fresh snapshot per statement instead of per transaction)."""
        return self.register(txn_id)

    def deregister(self, txn_id: int) -> None:
        self.live.pop(txn_id, None)

    def read_view(self) -> Snapshot:
        """The snapshot reads should use right now: the active
        statement snapshot, else an on-the-spot view attributed to the
        bound session's open transaction (if any)."""
        if self.active is not None:
            return self.active
        txn_id = None
        if self.manager is not None:
            txn = self.manager.current
            if txn is not None:
                txn_id = txn.id
        return self.snapshot(txn_id)

    def oldest_live_seq(self) -> Optional[int]:
        if not self.live:
            return None
        return min(snap.seq for snap in self.live.values())

    # --------------------------------------------------------- commits

    def record_commit(self, txn_id: int, tables) -> None:
        """Assign the next commit sequence number and freeze whatever
        the new horizon allows."""
        self.last_seq += 1
        self.commit_seq[txn_id] = self.last_seq
        self._recent.append((self.last_seq, txn_id, tuple(tables)))
        self.freeze()

    def freeze(self) -> None:
        """Rewrite stamps of commits now visible to every live
        snapshot to the FROZEN sentinel and drop their bookkeeping."""
        if not self._recent:
            return
        horizon = self.oldest_live_seq()
        while self._recent and (horizon is None
                                or self._recent[0][0] <= horizon):
            _seq, txn_id, tables = self._recent.pop(0)
            for table in tables:
                table.freeze_txn(txn_id)
            self.commit_seq.pop(txn_id, None)

    def status(self) -> dict:
        return {
            "last_seq": self.last_seq,
            "live": sorted(self.live),
            "unfrozen_commits": len(self._recent),
        }
