"""Storage engine: schemas, tables, indexes, catalog, statistics."""

from .catalog import (
    Catalog,
    ColumnStats,
    TableStats,
    ViewDefinition,
    compute_table_stats,
)
from .index import HashIndex, Index, SortedIndex
from .schema import Column, DataType, Schema
from .table import PAGE_SIZE_BYTES, Table, pages_for

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "DataType",
    "HashIndex",
    "Index",
    "PAGE_SIZE_BYTES",
    "Schema",
    "SortedIndex",
    "Table",
    "TableStats",
    "ViewDefinition",
    "compute_table_stats",
    "pages_for",
]
