"""The catalog: tables, views, and their statistics.

The catalog is the optimizer's window onto the database. Statistics are
computed by :meth:`Catalog.analyze` (per table) and held in
:class:`TableStats` / :class:`ColumnStats`; view definitions are stored as
SQL text and bound on demand by the SQL front end, because the paper
treats views as *virtual relations* whose plans are chosen per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import CatalogError
from ..stats.histogram import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    FrequencyHistogram,
)
from .mvcc import MVCCState
from .schema import DataType, Schema
from .table import Table


@dataclass
class ColumnStats:
    """Statistics for one column of one table."""

    num_distinct: float
    min_value: object = None
    max_value: object = None
    null_fraction: float = 0.0
    histogram: Optional[EquiWidthHistogram] = None
    frequencies: Optional[FrequencyHistogram] = None

    def selectivity_eq(self, value) -> float:
        """Estimated fraction of rows equal to ``value``."""
        if self.frequencies is not None:
            return self.frequencies.selectivity_eq(value)
        if self.histogram is not None:
            return self.histogram.selectivity_eq(value)
        return 1.0 / max(1.0, self.num_distinct)

    def selectivity_cmp(self, op: str, value) -> float:
        """Estimated selectivity of ``column <op> value``."""
        if op == "=":
            return self.selectivity_eq(value)
        if op in ("!=", "<>"):
            return max(0.0, 1.0 - self.selectivity_eq(value))
        if self.frequencies is not None and value is not None:
            # exact range selectivity from the tracked value counts
            total = self.frequencies.total
            if total > 0:
                import operator as _op
                compare = {"<": _op.lt, "<=": _op.le,
                           ">": _op.gt, ">=": _op.ge}[op]
                hits = sum(
                    count
                    for tracked, count in self.frequencies.counts.items()
                    if compare(tracked, value)
                )
                return hits / total
        if self.histogram is not None:
            if op == "<":
                return self.histogram.selectivity_lt(value)
            if op == "<=":
                return self.histogram.selectivity_lt(value, inclusive=True)
            if op == ">":
                return self.histogram.selectivity_gt(value)
            if op == ">=":
                return self.histogram.selectivity_gt(value, inclusive=True)
        # No histogram: fall back to System R's magic 1/3.
        return 1.0 / 3.0


@dataclass
class TableStats:
    """Statistics for one stored table."""

    num_rows: int
    num_pages: int
    row_width: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


@dataclass
class ViewDefinition:
    """A named view: SQL text plus optional output column aliases.

    ``recursive`` marks a ``CREATE RECURSIVE VIEW``: its body may
    reference the view's own name and is bound to a fixpoint relation
    instead of an ordinary virtual relation.
    """

    name: str
    sql_text: str
    column_aliases: Optional[List[str]] = None
    recursive: bool = False


def compute_table_stats(table: Table, num_buckets: int = 20,
                        histogram_kind: str = "equi_depth") -> TableStats:
    """Scan a table once and build full statistics for every column.

    ``histogram_kind`` is "equi_depth" (default; robust to skew) or
    "equi_width" (the classic System-R form).
    """
    if histogram_kind not in ("equi_depth", "equi_width"):
        raise CatalogError("unknown histogram kind %r" % histogram_kind)
    histogram_cls = (EquiDepthHistogram if histogram_kind == "equi_depth"
                     else EquiWidthHistogram)
    stats = TableStats(
        num_rows=table.num_rows,
        num_pages=table.num_pages,
        row_width=table.schema.row_width(),
    )
    for position, column in enumerate(table.schema):
        values = [row[position] for row in table.rows]
        non_null = [v for v in values if v is not None]
        null_fraction = (
            (len(values) - len(non_null)) / len(values) if values else 0.0
        )
        distinct = len(set(non_null))
        col_stats = ColumnStats(
            num_distinct=float(max(distinct, 1)),
            min_value=min(non_null) if non_null else None,
            max_value=max(non_null) if non_null else None,
            null_fraction=null_fraction,
        )
        if non_null and column.dtype in (DataType.INT, DataType.FLOAT):
            col_stats.histogram = histogram_cls.build(
                non_null, num_buckets=num_buckets
            )
        col_stats.frequencies = FrequencyHistogram.build(non_null)
        stats.columns[column.name] = col_stats
    return stats


class Catalog:
    """Registry of tables, views, and statistics."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._views: Dict[str, ViewDefinition] = {}
        self._stats: Dict[str, TableStats] = {}
        self._sites: Dict[str, str] = {}
        self._replicas: Dict[str, List[str]] = {}
        self._down_sites: set = set()
        self._version = 0
        #: snapshot/commit bookkeeping shared by every table installed
        #: in this catalog (see repro.storage.mvcc)
        self.mvcc = MVCCState()
        # called as listener(table_name_or_None, prior_stats_snapshot)
        # at the start of every analyze(); the transaction manager
        # hooks this so stats rebuilds — including the planner's lazy
        # ones — are undoable inside a transaction
        self.analyze_listener = None

    # --------------------------------------------------------------- version

    @property
    def version(self) -> int:
        """Monotonic catalog version.

        Bumped by every DDL, data modification routed through the
        database façade, statistics (re)build, and site placement
        change. The plan cache tags every cached plan with the version
        it was built under and refuses to serve a plan from an older
        version, so stale plans can never run.
        """
        return self._version

    def bump_version(self) -> int:
        self._version += 1
        return self._version

    # ---------------------------------------------------------------- tables

    def create_table(self, name: str, schema: Schema) -> Table:
        key = name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError("relation %r already exists" % name)
        table = Table(name, schema)
        table._mvcc = self.mvcc
        self._tables[key] = table
        self.bump_version()
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError("no table named %r" % name)
        del self._tables[key]
        self._stats.pop(key, None)
        self._sites.pop(key, None)
        self.bump_version()

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError("no table named %r" % name)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    # ----------------------------------------------------------------- views

    def create_view(self, name: str, sql_text: str,
                    column_aliases: Optional[Sequence[str]] = None,
                    recursive: bool = False) -> ViewDefinition:
        key = name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError("relation %r already exists" % name)
        view = ViewDefinition(
            name, sql_text,
            list(column_aliases) if column_aliases else None,
            recursive=recursive,
        )
        self._views[key] = view
        self.bump_version()
        return view

    def drop_view(self, name: str) -> None:
        key = name.lower()
        if key not in self._views:
            raise CatalogError("no view named %r" % name)
        del self._views[key]
        self.bump_version()

    def view(self, name: str) -> ViewDefinition:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError("no view named %r" % name)

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def views(self) -> List[ViewDefinition]:
        return list(self._views.values())

    def has_relation(self, name: str) -> bool:
        return self.has_table(name) or self.has_view(name)

    # --------------------------------------------------------------- sites

    def set_table_site(self, name: str, site: Optional[str]) -> None:
        """Place a table at a named site (None = local) for the
        distributed cost model (Section 5.1)."""
        self.table(name)  # raises if unknown
        if site is None:
            self._sites.pop(name.lower(), None)
        else:
            self._sites[name.lower()] = site
        self.bump_version()

    def add_replica(self, name: str, site: str) -> None:
        """Register an additional placement for a table. Replicas are
        used (in registration order) when the primary site is down."""
        self.table(name)  # raises if unknown
        replicas = self._replicas.setdefault(name.lower(), [])
        if site not in replicas:
            replicas.append(site)
            self.bump_version()

    def replicas_for_table(self, name: str) -> List[str]:
        return list(self._replicas.get(name.lower(), ()))

    def site_for_table(self, name: str) -> Optional[str]:
        """The *effective* placement of a table.

        Returns the primary site while it is up; otherwise the first
        registered replica at a live site; otherwise None — the
        coordinator-local fallback copy (in this simulation every table
        has one, so a query can always degrade to a local plan).
        """
        primary = self._sites.get(name.lower())
        if primary is None or primary not in self._down_sites:
            return primary
        for replica in self._replicas.get(name.lower(), ()):
            if replica not in self._down_sites:
                return replica
        return None

    # ---------------------------------------------------------- site status

    def set_site_available(self, site: str, available: bool) -> bool:
        """Mark a site up or down; placement decisions (and therefore
        cached plans, via the version bump) react immediately. Returns
        True when the status actually changed."""
        changed = (
            site in self._down_sites if available
            else site not in self._down_sites
        )
        if not changed:
            return False
        if available:
            self._down_sites.discard(site)
        else:
            self._down_sites.add(site)
        self.bump_version()
        return True

    def site_is_down(self, site: str) -> bool:
        return site in self._down_sites

    def down_sites(self) -> List[str]:
        return sorted(self._down_sites)

    # ------------------------------------------------------------ statistics

    def analyze(self, name: Optional[str] = None, num_buckets: int = 20,
                histogram_kind: str = "equi_depth") -> None:
        """(Re)build statistics for one table, or all tables if ``name``
        is omitted."""
        if self.analyze_listener is not None:
            self.analyze_listener(name, self.stats_snapshot(name))
        if name is not None:
            table = self.table(name)
            self._stats[name.lower()] = compute_table_stats(
                table, num_buckets, histogram_kind)
            self.bump_version()
            return
        for key, table in self._tables.items():
            self._stats[key] = compute_table_stats(table, num_buckets,
                                                   histogram_kind)
        self.bump_version()

    def stats(self, name: str) -> TableStats:
        """Statistics for a table, computing them on first request."""
        key = name.lower()
        if key not in self._stats:
            self.analyze(name)
        return self._stats[key]

    def has_stats(self, name: str) -> bool:
        return name.lower() in self._stats

    def stats_snapshot(self, name: Optional[str] = None) -> Dict:
        """The current stats entries for one table (or all tables).

        ``TableStats`` objects are replaced wholesale by analyze and
        never mutated in place, so a shallow copy of the mapping is a
        faithful restore point for :meth:`restore_stats`.
        """
        if name is None:
            return dict(self._stats)
        key = name.lower()
        return {key: self._stats[key]} if key in self._stats else {}

    def restore_stats(self, snapshot: Dict,
                      name: Optional[str] = None) -> None:
        """Reinstate a :meth:`stats_snapshot`. With ``name``, only that
        table's entry is replaced (or removed, if the snapshot lacks
        it); otherwise the whole mapping is restored."""
        if name is None:
            self._stats = dict(snapshot)
            return
        key = name.lower()
        if key in snapshot:
            self._stats[key] = snapshot[key]
        else:
            self._stats.pop(key, None)

    # ------------------------------------------- transaction/recovery hooks
    #
    # Structural re-installs used by transaction undo and WAL recovery.
    # Unlike create_table/drop_table these do NOT bump the catalog
    # version: undo restores *content* while the version counter stays
    # monotonic (the caller bumps once, so rolled-back version numbers
    # are never reused and the plan cache can never serve a plan built
    # inside an aborted transaction).

    def install_table(self, table: Table,
                      stats: Optional[TableStats] = None,
                      site: Optional[str] = None) -> None:
        key = table.name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError("relation %r already exists" % table.name)
        table._mvcc = self.mvcc
        self._tables[key] = table
        if stats is not None:
            self._stats[key] = stats
        if site is not None:
            self._sites[key] = site

    def uninstall_table(self, name: str) -> None:
        key = name.lower()
        self._tables.pop(key, None)
        self._stats.pop(key, None)
        self._sites.pop(key, None)

    def install_view(self, view: ViewDefinition) -> None:
        key = view.name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError("relation %r already exists" % view.name)
        self._views[key] = view

    def uninstall_view(self, name: str) -> None:
        self._views.pop(name.lower(), None)

    def stats_entry(self, name: str) -> Optional[TableStats]:
        return self._stats.get(name.lower())

    def site_entry(self, name: str) -> Optional[str]:
        """The *registered* primary site (ignoring up/down status)."""
        return self._sites.get(name.lower())

    def set_version(self, version: int) -> None:
        """Force the version counter (recovery only — everything else
        must go through bump_version to preserve monotonicity)."""
        self._version = version
