"""Typed schemas for relations.

A :class:`Schema` is an ordered list of :class:`Column` objects. Rows are
plain Python tuples laid out positionally according to the schema; all
row-level code (executor operators, expression evaluation) addresses
columns by position, with names resolved once at bind time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import CatalogError, SchemaError


class DataType(enum.Enum):
    """Scalar column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"

    @property
    def default_width(self) -> int:
        """Bytes used for the page-size model of a value of this type."""
        return _DEFAULT_WIDTHS[self]

    def coerce(self, value):
        """Coerce a Python value to this type, raising on mismatch."""
        if value is None:
            return None
        try:
            if self is DataType.INT:
                if isinstance(value, bool):
                    raise TypeError
                return int(value)
            if self is DataType.FLOAT:
                if isinstance(value, bool):
                    raise TypeError
                return float(value)
            if self is DataType.STR:
                if not isinstance(value, str):
                    raise TypeError
                return value
            if self is DataType.BOOL:
                if not isinstance(value, bool):
                    raise TypeError
                return value
        except (TypeError, ValueError):
            raise SchemaError(
                "value %r is not valid for type %s" % (value, self.value),
                dtype=self.value,
            )
        raise CatalogError("unknown data type %r" % self)


_DEFAULT_WIDTHS = {
    DataType.INT: 4,
    DataType.FLOAT: 8,
    DataType.STR: 24,
    DataType.BOOL: 1,
}


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and a byte width for the page model."""

    name: str
    dtype: DataType
    width: Optional[int] = None

    def __post_init__(self):
        if not isinstance(self.dtype, DataType):
            raise TypeError("column %r: dtype must be a DataType, got %r"
                            % (self.name, self.dtype))
        if self.width is None:
            object.__setattr__(self, "width", self.dtype.default_width)

    def renamed(self, name: str) -> "Column":
        return Column(name, self.dtype, self.width)


class Schema:
    """An ordered, name-addressable list of columns.

    Column names within one schema must be unique. Lookup by name is O(1).
    """

    def __init__(self, columns: Iterable[Column]):
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index = {}
        for i, col in enumerate(self.columns):
            if col.name in self._index:
                raise CatalogError("duplicate column name %r in schema" % col.name)
            self._index[col.name] = i

    @classmethod
    def of(cls, *specs: Tuple[str, DataType]) -> "Schema":
        """Convenience constructor: ``Schema.of(("did", DataType.INT), ...)``."""
        return cls(Column(name, dtype) for name, dtype in specs)

    @classmethod
    def inferred(cls, names: Sequence[str], rows: Iterable[Sequence]
                 ) -> "Schema":
        """A typed schema inferred from sample rows — the dtype
        backfill for untyped legacy data (plain column names plus a
        list of value tuples).

        Per column: bool before int (Python bools *are* ints), INT and
        FLOAT widen to FLOAT, any other mix raises
        :class:`SchemaError`, and a column with no non-NULL sample
        defaults to STR.
        """
        dtypes: List[Optional[DataType]] = [None] * len(names)
        for row in rows:
            if len(row) != len(names):
                raise CatalogError(
                    "row arity %d does not match %d column name(s)"
                    % (len(row), len(names))
                )
            for j, value in enumerate(row):
                if value is None:
                    continue
                if isinstance(value, bool):
                    dtype = DataType.BOOL
                elif isinstance(value, int):
                    dtype = DataType.INT
                elif isinstance(value, float):
                    dtype = DataType.FLOAT
                elif isinstance(value, str):
                    dtype = DataType.STR
                else:
                    raise SchemaError(
                        "cannot infer a dtype for value %r" % (value,),
                        column=names[j],
                    )
                seen = dtypes[j]
                if seen is None or seen is dtype:
                    dtypes[j] = dtype
                elif {seen, dtype} == {DataType.INT, DataType.FLOAT}:
                    dtypes[j] = DataType.FLOAT
                else:
                    raise SchemaError(
                        "column %r mixes %s and %s values"
                        % (names[j], seen.value, dtype.value),
                        column=names[j],
                    )
        return cls(Column(name, dtype or DataType.STR)
                   for name, dtype in zip(names, dtypes))

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def names(self) -> List[str]:
        return [col.name for col in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of the named column, raising CatalogError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(
                "no column %r in schema (%s)" % (name, ", ".join(self.names()))
            )

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def row_width(self) -> int:
        """Total byte width of one row under the page-size model."""
        return sum(col.width for col in self.columns) or 1

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema of a projection onto the named columns, in that order."""
        return Schema(self.column(name) for name in names)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation (e.g. a join output).

        Name collisions raise; callers qualify names before concatenating.
        """
        return Schema(tuple(self.columns) + tuple(other.columns))

    def qualified(self, alias: str) -> "Schema":
        """A copy with every column renamed to ``alias.column``."""
        return Schema(
            col.renamed("%s.%s" % (alias, col.name)) for col in self.columns
        )

    def validate_row(self, row: Sequence) -> tuple:
        """Coerce a row to this schema, raising on arity/type mismatch.

        Type mismatches raise :class:`SchemaError` (a
        :class:`CatalogError` subtype) tagged with the offending
        column's name and declared dtype.
        """
        if len(row) != len(self.columns):
            raise CatalogError(
                "row arity %d does not match schema arity %d"
                % (len(row), len(self.columns))
            )
        out = []
        for col, value in zip(self.columns, row):
            try:
                out.append(col.dtype.coerce(value))
            except SchemaError as err:
                if err.column is None:
                    err.column = col.name
                raise
        return tuple(out)

    def __repr__(self) -> str:
        cols = ", ".join("%s %s" % (c.name, c.dtype.value) for c in self.columns)
        return "Schema(%s)" % cols
