"""Parse-tree (AST) node types for the SQL subset.

The parser produces these; the binder turns them into bound
:class:`~repro.algebra.block.QueryBlock` objects. Scalar expressions in
the AST use a parallel, *unbound* node set (``AstExpr`` and friends)
because at parse time we cannot distinguish aggregates from scalars or
resolve qualified names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ------------------------------------------------------------- expressions

class AstExpr:
    """Base class for unbound scalar/aggregate expressions."""


@dataclass(frozen=True)
class AstColumn(AstExpr):
    """A possibly-qualified column name."""

    qualifier: Optional[str]
    name: str

    def display(self) -> str:
        if self.qualifier:
            return "%s.%s" % (self.qualifier, self.name)
        return self.name


@dataclass(frozen=True)
class AstLiteral(AstExpr):
    value: object


@dataclass(frozen=True)
class AstParameter(AstExpr):
    """A ``?`` placeholder; ``index`` is its 0-based position in textual
    order, assigned by the parser. Values are supplied at execute time
    through the prepared-statement API."""

    index: int


@dataclass(frozen=True)
class AstComparison(AstExpr):
    op: str
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class AstBoolean(AstExpr):
    op: str  # AND | OR | NOT
    args: Tuple[AstExpr, ...]


@dataclass(frozen=True)
class AstArithmetic(AstExpr):
    op: str
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class AstInList(AstExpr):
    """``expr [NOT] IN (literal, ...)``."""

    operand: AstExpr
    values: Tuple[object, ...]
    negated: bool = False


@dataclass(frozen=True)
class AstInSubquery(AstExpr):
    """``expr IN (SELECT ...)`` — rewritten by the binder into a join
    with a DISTINCT virtual relation (a semi-join the optimizer may then
    evaluate as a Filter Join)."""

    operand: AstExpr
    select: "SelectStmt"
    negated: bool = False


@dataclass(frozen=True)
class AstFuncCall(AstExpr):
    """A function call; ``star`` marks COUNT(*), ``distinct`` marks
    ``fn(DISTINCT arg)``."""

    name: str
    argument: Optional[AstExpr]
    star: bool = False
    distinct: bool = False


# -------------------------------------------------------------- statements

@dataclass
class AstSelectItem:
    """One select-list entry; expr None + star True means ``*``."""

    expr: Optional[AstExpr]
    alias: Optional[str] = None
    star: bool = False


@dataclass
class AstTableRef:
    """FROM-list entry naming a table, view, or function relation."""

    name: str
    alias: Optional[str] = None


@dataclass
class AstSubqueryRef:
    """FROM-list entry wrapping a parenthesized subquery."""

    select: "SelectStmt"
    alias: str


FromItem = Union[AstTableRef, AstSubqueryRef]


@dataclass
class SelectStmt:
    """A full SELECT statement."""

    select_items: List[AstSelectItem]
    from_items: List[FromItem]
    where: Optional[AstExpr] = None
    group_by: List[AstColumn] = field(default_factory=list)
    having: Optional[AstExpr] = None
    order_by: List[Tuple[AstColumn, bool]] = field(default_factory=list)
    distinct: bool = False
    limit: Optional[int] = None


@dataclass
class UnionStmt:
    """A UNION [ALL] chain with an optional trailing ORDER BY / LIMIT.

    ``all_flags[i]`` is True when the link between ``parts[i]`` and
    ``parts[i+1]`` is UNION ALL (duplicates kept).
    """

    parts: List[SelectStmt]
    all_flags: List[bool]
    order_by: List[Tuple[AstColumn, bool]] = field(default_factory=list)
    limit: Optional[int] = None


@dataclass
class ColumnDef:
    name: str
    type_name: str


@dataclass
class CreateTableStmt:
    name: str
    columns: List[ColumnDef]


@dataclass
class CreateTableAsStmt:
    """CREATE TABLE name AS SELECT ... — materialize a query's result."""

    name: str
    query: "Statement"  # SelectStmt or UnionStmt


@dataclass
class CteDef:
    """One ``name [(cols)] AS ( query )`` entry of a WITH clause."""

    name: str
    column_aliases: Optional[List[str]]
    query: "Statement"  # SelectStmt or UnionStmt


@dataclass
class WithStmt:
    """``WITH [RECURSIVE] cte [, cte ...] body`` — the body is a SELECT
    or UNION that may reference the named CTEs in its FROM lists."""

    recursive: bool
    ctes: List[CteDef]
    body: "Statement"  # SelectStmt or UnionStmt


@dataclass
class CreateViewStmt:
    name: str
    column_aliases: Optional[List[str]]
    select: SelectStmt
    select_text: str  # original SQL text of the view body, for the catalog
    recursive: bool = False


@dataclass
class CreateIndexStmt:
    table: str
    column: str
    kind: str  # "hash" | "sorted"


@dataclass
class InsertStmt:
    table: str
    rows: List[List[object]]


@dataclass
class UpdateStmt:
    """``UPDATE table SET col = expr [, ...] [WHERE expr]``.

    Assignments and the predicate are plain scalar expressions over
    the target table's columns (no subqueries, no parameters in v1);
    they are compiled against the table schema by
    :mod:`repro.sql.dml`.
    """

    table: str
    assignments: List[Tuple[str, AstExpr]]
    where: Optional[AstExpr]


@dataclass
class DeleteStmt:
    """``DELETE FROM table [WHERE expr]``."""

    table: str
    where: Optional[AstExpr]


@dataclass
class DropStmt:
    kind: str  # "table" | "view"
    name: str


@dataclass
class ExplainStmt:
    select: SelectStmt


# ------------------------------------------------------ transaction control

@dataclass
class BeginStmt:
    """``BEGIN [TRANSACTION]`` — open an explicit transaction."""


@dataclass
class CommitStmt:
    """``COMMIT [TRANSACTION]`` — make the open transaction durable.
    On an aborted transaction this performs a rollback instead
    (PostgreSQL semantics); the result's statement kind says which."""


@dataclass
class RollbackStmt:
    """``ROLLBACK [TRANSACTION] [TO [SAVEPOINT] name]`` — undo the open
    transaction, or rewind to a savepoint when ``savepoint`` is set."""

    savepoint: Optional[str] = None


@dataclass
class SavepointStmt:
    """``SAVEPOINT name`` — mark a rollback point inside the open
    transaction."""

    name: str


@dataclass
class ReleaseStmt:
    """``RELEASE [SAVEPOINT] name`` — forget a savepoint (its changes
    stay part of the transaction)."""

    name: str


#: transaction-control statements never reach the binder or planner
TXN_STATEMENTS = (BeginStmt, CommitStmt, RollbackStmt, SavepointStmt,
                  ReleaseStmt)


Statement = Union[
    SelectStmt, UnionStmt, WithStmt, CreateTableStmt, CreateTableAsStmt,
    CreateViewStmt, CreateIndexStmt, InsertStmt, UpdateStmt, DeleteStmt,
    DropStmt, ExplainStmt,
    BeginStmt, CommitStmt, RollbackStmt, SavepointStmt, ReleaseStmt,
]
