"""SQL front end: lexer, parser, binder."""

from .binder import Binder
from .lexer import Token, tokenize
from .parser import Parser, parse, parse_script, parse_select

__all__ = [
    "Binder",
    "Parser",
    "Token",
    "parse",
    "parse_script",
    "parse_select",
    "tokenize",
]
