"""Hand-written SQL tokenizer.

Produces a flat list of :class:`Token` objects. Keywords are recognized
case-insensitively and tagged with their uppercase form; identifiers keep
the case they were written with (catalog lookups lowercase them later).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "AND", "OR", "NOT", "IN", "BETWEEN",
    "UNION", "ALL", "AS", "CREATE", "TABLE",
    "VIEW", "INSERT", "INTO", "VALUES", "INT", "INTEGER", "FLOAT", "REAL",
    "VARCHAR", "TEXT", "BOOLEAN", "BOOL", "TRUE", "FALSE", "NULL", "ON",
    "INDEX", "DROP", "EXPLAIN", "LIMIT", "WITH", "RECURSIVE",
    "BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT", "RELEASE",
    "TRANSACTION", "TO", "UPDATE", "SET", "DELETE",
}

SYMBOLS = (
    "<=", ">=", "!=", "<>", "(", ")", ",", ".", "=", "<", ">",
    "+", "-", "*", "/", ";", "?",
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # "keyword" | "ident" | "number" | "string" | "symbol" | "eof"
    text: str
    position: int
    line: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.text in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "symbol" and self.text in symbols

    def __str__(self) -> str:
        return "<%s %r @%d>" % (self.kind, self.text, self.position)


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises SqlSyntaxError on an illegal character."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start, line))
            else:
                tokens.append(Token("ident", word, start, line))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            saw_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not saw_dot)):
                if text[i] == ".":
                    # a dot not followed by a digit is a qualifier, not a decimal
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    saw_dot = True
                i += 1
            tokens.append(Token("number", text[start:i], start, line))
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: List[str] = []
            while True:
                if i >= n:
                    raise SqlSyntaxError(
                        "unterminated string literal", start, line
                    )
                if text[i] == "'":
                    if text[i:i + 2] == "''":  # escaped quote
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(text[i])
                i += 1
            tokens.append(Token("string", "".join(chunks), start, line))
            continue
        matched: Optional[str] = None
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                matched = symbol
                break
        if matched is None:
            raise SqlSyntaxError("unexpected character %r" % ch, i, line)
        tokens.append(Token("symbol", matched, i, line))
        i += len(matched)
    tokens.append(Token("eof", "", n, line))
    return tokens
