"""Compile UPDATE/DELETE scalar expressions against one table schema.

UPDATE and DELETE never reach the planner: they resolve their target
rows by a direct visible-row scan inside the transaction manager, so
all they need is the expression subset — columns of the target table,
literals, comparisons, boolean logic, arithmetic, and IN lists —
compiled to the executor's :mod:`repro.expr.nodes` tree and resolved
against the table schema. Subqueries, function calls, and prepared
parameters are rejected with typed errors.
"""

from __future__ import annotations

from ..errors import BindError, ParameterError
from ..expr.nodes import (
    Arithmetic,
    BooleanExpr,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
)
from ..storage.schema import Schema
from . import ast


def compile_expr(node, schema: Schema, table_name: str) -> Expr:
    """AST scalar expression -> resolved executor expression."""
    return _convert(node, schema, table_name).resolve(schema)


def _convert(node, schema: Schema, table_name: str) -> Expr:
    if isinstance(node, ast.AstLiteral):
        return Literal(node.value)
    if isinstance(node, ast.AstColumn):
        if node.qualifier and \
                node.qualifier.lower() != table_name.lower():
            raise BindError(
                "unknown qualifier %r in UPDATE/DELETE on %r"
                % (node.qualifier, table_name)
            )
        if not schema.has_column(node.name):
            raise BindError(
                "no column %r in table %r" % (node.name, table_name)
            )
        return ColumnRef(node.name)
    if isinstance(node, ast.AstComparison):
        return Comparison(
            node.op,
            _convert(node.left, schema, table_name),
            _convert(node.right, schema, table_name),
        )
    if isinstance(node, ast.AstBoolean):
        return BooleanExpr(
            node.op,
            [_convert(arg, schema, table_name) for arg in node.args],
        )
    if isinstance(node, ast.AstArithmetic):
        return Arithmetic(
            node.op,
            _convert(node.left, schema, table_name),
            _convert(node.right, schema, table_name),
        )
    if isinstance(node, ast.AstInList):
        return InList(
            _convert(node.operand, schema, table_name),
            node.values,
            negated=node.negated,
        )
    if isinstance(node, ast.AstParameter):
        raise ParameterError(
            "parameters (?) are not supported in UPDATE/DELETE"
        )
    raise BindError(
        "%s is not supported in UPDATE/DELETE expressions"
        % type(node).__name__
    )
