"""Name resolution and semantic analysis: AST -> bound QueryBlock.

The binder resolves FROM-list names against the catalog (tables, views,
registered function relations), qualifies every column reference with its
relation alias, separates aggregates from scalar expressions, and emits a
:class:`~repro.algebra.block.QueryBlock` in canonical form.

Views are bound *lazily but eagerly-nested*: a view name in a FROM list is
parsed and bound into its own QueryBlock, wrapped in a
:class:`VirtualRelation`. The optimizer — not the binder — decides whether
that virtual relation is fully computed, iterated, or filter-joined.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..algebra.block import QueryBlock, SelectItem, UnionQuery
from ..algebra.relations import (
    FilterSetRelation,
    RecursiveRelation,
    RelationRef,
    StoredRelation,
    VirtualRelation,
)
from ..errors import BindError, RecursiveViewError
from ..expr.aggregates import AGGREGATE_FUNCTIONS, AggregateSpec
from ..expr.nodes import (
    Arithmetic,
    BooleanExpr,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Parameter,
)
from ..storage.catalog import Catalog
from ..storage.schema import Schema
from . import ast
from .parser import parse, parse_select


class Binder:
    """Binds parsed SELECT statements against a catalog.

    ``functions`` maps lowercase names to factories
    ``factory(alias) -> RelationRef`` for user-defined relations.
    """

    MAX_VIEW_DEPTH = 16

    def __init__(self, catalog: Catalog, functions: Optional[Dict] = None):
        self.catalog = catalog
        self.functions = functions or {}
        # `?` placeholders bound so far, by 0-based index; the prepared-
        # statement machinery binds values onto these exact nodes
        self.parameters: Dict[int, Parameter] = {}
        # WITH-clause state, scoped to one statement (a Binder instance
        # is created per statement, so delta parameter ids are
        # deterministic for a given SQL text)
        self._cte_defs: Dict[str, ast.CteDef] = {}
        self._cte_recursive: Dict[str, bool] = {}
        self._cte_expanding: set = set()
        # name (lowercase) -> (delta schema, param id) while binding the
        # recursive branch of that relation: a self-reference binds to a
        # FilterSetRelation carrying the previous iteration's delta
        self._active_delta: Dict[str, Tuple[Schema, str]] = {}
        self._view_expanding: set = set()
        self._delta_counter = 0

    @staticmethod
    def check_bindable(statement) -> None:
        """Reject statements that have no bound form.

        Transaction control (BEGIN/COMMIT/ROLLBACK/SAVEPOINT/RELEASE)
        is executed directly by the transaction manager and never
        reaches name resolution; asking for its query plan is a caller
        error with a precise message rather than a generic one.
        """
        if isinstance(statement, ast.TXN_STATEMENTS):
            raise BindError(
                "%s is a transaction-control statement; it has no query "
                "plan (execute it with db.sql/execute_script)"
                % type(statement).__name__
            )

    def parameter_list(self) -> List[Parameter]:
        """All Parameter nodes created while binding, in index order."""
        return [self.parameters[i] for i in sorted(self.parameters)]

    def _parameter(self, node: ast.AstParameter) -> Parameter:
        if node.index not in self.parameters:
            self.parameters[node.index] = Parameter(node.index)
        return self.parameters[node.index]

    # ------------------------------------------------------------ FROM list

    def bind(self, select: ast.SelectStmt, depth: int = 0) -> QueryBlock:
        """Bind a SELECT statement into a canonical QueryBlock."""
        if depth > self.MAX_VIEW_DEPTH:
            raise BindError("view nesting deeper than %d (cycle?)"
                            % self.MAX_VIEW_DEPTH)
        relations = [self._bind_from_item(item, depth) for item in select.from_items]
        block_relations: List[RelationRef] = []
        seen_aliases = set()
        for rel in relations:
            if rel.alias in seen_aliases:
                raise BindError("duplicate alias %r in FROM list" % rel.alias)
            seen_aliases.add(rel.alias)
            block_relations.append(rel)

        # Decorrelate top-level `expr IN (SELECT ...)` conjuncts into
        # joins with DISTINCT virtual relations (Figure 6's "full
        # decorrelation" — which the optimizer may then Filter-Join).
        # Operands are bound against the original FROM scope so the
        # added relation cannot shadow their column names.
        original_scope = _Scope(block_relations)
        where_ast, subquery_predicates = self._rewrite_in_subqueries(
            select.where, original_scope, block_relations, seen_aliases,
            depth,
        )

        scope = _Scope(block_relations)

        predicates: List[Expr] = list(subquery_predicates)
        if where_ast is not None:
            where = self._bind_scalar(where_ast, scope,
                                      allow_aggregates=False)
            predicates.extend(_flatten_conjuncts(where))

        group_by = [scope.qualify(col) for col in select.group_by]

        collector = _AggregateCollector()
        select_items, star_expansion = self._bind_select_list(
            select, scope, group_by, collector
        )
        having = None
        if select.having is not None:
            if not group_by and not collector.specs:
                # HAVING without GROUP BY groups the whole input
                pass
            having = self._bind_group_scalar(
                select.having, scope, group_by, collector
            )

        aggregates = collector.specs
        block = QueryBlock(
            relations=block_relations,
            predicates=predicates,
            select_items=select_items,
            group_by=group_by,
            aggregates=aggregates,
            having=having,
            distinct=select.distinct,
            order_by=[],
            limit=select.limit,
        )
        # ORDER BY references the output schema
        output = block.output_schema()
        order_by: List[Tuple[ColumnRef, bool]] = []
        for col, ascending in select.order_by:
            name = col.display()
            if not output.has_column(name):
                # allow unqualified match against output names
                name = col.name
            if not output.has_column(name):
                raise BindError("ORDER BY column %r is not in the output"
                                % col.display())
            order_by.append((ColumnRef(name), ascending))
        block.order_by = order_by
        block.validate()
        return block

    def bind_sql(self, text: str, depth: int = 0) -> QueryBlock:
        """Parse then bind a SELECT statement."""
        return self.bind(parse_select(text), depth)

    def bind_union(self, stmt: ast.UnionStmt, depth: int = 0) -> UnionQuery:
        """Bind a UNION chain; branches bind independently, the trailing
        ORDER BY / LIMIT binds against the union's output schema."""
        parts = [self.bind(part, depth) for part in stmt.parts]
        union = UnionQuery(parts, list(stmt.all_flags), [], stmt.limit)
        output = union.output_schema()
        for col, ascending in stmt.order_by:
            name = col.display()
            if not output.has_column(name):
                name = col.name
            if not output.has_column(name):
                raise BindError(
                    "ORDER BY column %r is not in the UNION output"
                    % col.display()
                )
            union.order_by.append((ColumnRef(name), ascending))
        union.validate()
        return union

    def bind_with(self, stmt: ast.WithStmt, depth: int = 0):
        """Bind a ``WITH [RECURSIVE]`` statement.

        The CTE definitions are registered (statement-scoped, shadowing
        catalog relations of the same name) and the body is bound
        normally; references to a CTE name expand it in
        :meth:`_bind_from_item`. Returns a QueryBlock or UnionQuery.
        """
        registered = []
        for cte in stmt.ctes:
            key = cte.name.lower()
            if key in self._cte_defs:
                raise BindError("duplicate CTE name %r" % cte.name)
            self._cte_defs[key] = cte
            self._cte_recursive[key] = stmt.recursive
            registered.append(key)
        try:
            if isinstance(stmt.body, ast.UnionStmt):
                return self.bind_union(stmt.body, depth)
            return self.bind(stmt.body, depth)
        finally:
            for key in registered:
                self._cte_defs.pop(key, None)
                self._cte_recursive.pop(key, None)

    def _rewrite_in_subqueries(self, where: Optional[ast.AstExpr],
                               original_scope: "_Scope",
                               relations: List[RelationRef],
                               seen_aliases: set, depth: int):
        """Replace top-level IN-subquery conjuncts with join conditions.

        Returns (remaining WHERE ast, extra bound join predicates). Only
        top-level AND conjuncts are rewritable (under OR/NOT the join
        rewrite would change semantics). NOT IN needs an anti-join,
        which this engine does not implement.
        """
        if where is None:
            return None, []

        def conjuncts_of(node):
            if isinstance(node, ast.AstBoolean) and node.op == "AND":
                out = []
                for arg in node.args:
                    out.extend(conjuncts_of(arg))
                return out
            return [node]

        def contains_subquery(node) -> bool:
            if isinstance(node, ast.AstInSubquery):
                return True
            if isinstance(node, ast.AstBoolean):
                return any(contains_subquery(a) for a in node.args)
            if isinstance(node, (ast.AstComparison, ast.AstArithmetic)):
                return (contains_subquery(node.left)
                        or contains_subquery(node.right))
            return False

        rewritten = []
        bound_predicates: List[Expr] = []
        for conjunct in conjuncts_of(where):
            if isinstance(conjunct, ast.AstInSubquery):
                if conjunct.negated:
                    raise BindError(
                        "NOT IN (SELECT ...) requires an anti-join, "
                        "which is not supported"
                    )
                operand = self._bind_scalar(conjunct.operand,
                                            original_scope,
                                            allow_aggregates=False)
                sub_block = self.bind(conjunct.select, depth + 1)
                output = sub_block.output_schema()
                if len(output) != 1:
                    raise BindError(
                        "IN subquery must produce exactly one column"
                    )
                sub_block.distinct = True
                alias = "_isub%d" % (len(seen_aliases) + 1)
                while alias in seen_aliases:
                    alias += "x"
                seen_aliases.add(alias)
                relations.append(VirtualRelation(
                    alias, "<in-subquery>", sub_block,
                ))
                bound_predicates.append(Comparison(
                    "=", operand,
                    ColumnRef("%s.%s" % (alias, output.names()[0])),
                ))
                continue
            if contains_subquery(conjunct):
                raise BindError(
                    "IN (SELECT ...) is only supported as a top-level "
                    "AND conjunct of WHERE"
                )
            rewritten.append(conjunct)
        if not rewritten:
            return None, bound_predicates
        if len(rewritten) == 1:
            return rewritten[0], bound_predicates
        return ast.AstBoolean("AND", tuple(rewritten)), bound_predicates

    def _bind_from_item(self, item: ast.FromItem, depth: int) -> RelationRef:
        if isinstance(item, ast.AstSubqueryRef):
            block = self.bind(item.select, depth + 1)
            return VirtualRelation(item.alias, "<subquery>", block)
        assert isinstance(item, ast.AstTableRef)
        alias = item.alias or item.name
        key = item.name.lower()
        if key in self._active_delta:
            # self-reference inside a recursive branch: bind to the
            # delta relation of the enclosing fixpoint
            schema, param_id = self._active_delta[key]
            return FilterSetRelation(alias, schema, param_id)
        if key in self._cte_defs:
            return self._bind_cte(key, alias, depth)
        if self.catalog.has_table(item.name):
            table = self.catalog.table(item.name)
            site = _table_site(self.catalog, item.name)
            return StoredRelation(alias, table, site=site)
        if self.catalog.has_view(item.name):
            view = self.catalog.view(item.name)
            if key in self._view_expanding:
                raise RecursiveViewError(
                    "view %r references itself; declare it with "
                    "CREATE RECURSIVE VIEW" % view.name,
                    view_name=view.name,
                )
            parsed = parse(view.sql_text)
            if view.recursive:
                return self._bind_recursive(
                    view.name, view.column_aliases, parsed, alias, depth)
            self._view_expanding.add(key)
            try:
                if isinstance(parsed, ast.UnionStmt):
                    block = self.bind_union(parsed, depth + 1)
                elif isinstance(parsed, ast.SelectStmt):
                    block = self.bind(parsed, depth + 1)
                else:
                    raise BindError(
                        "view %s must be defined by a query" % view.name
                    )
            finally:
                self._view_expanding.discard(key)
            return VirtualRelation(alias, view.name, block,
                                   column_aliases=view.column_aliases)
        if key in self.functions:
            return self.functions[key](alias)
        raise BindError("unknown relation %r" % item.name)

    # ----------------------------------------------- CTEs and recursion

    def _bind_cte(self, key: str, alias: str, depth: int) -> RelationRef:
        cte = self._cte_defs[key]
        if key in self._cte_expanding:
            raise RecursiveViewError(
                "CTE %r references itself through another relation; "
                "mutual recursion is not supported" % cte.name,
                view_name=cte.name,
            )
        if _query_self_refs(cte.query, key):
            if not self._cte_recursive[key]:
                raise RecursiveViewError(
                    "CTE %r references itself; use WITH RECURSIVE"
                    % cte.name,
                    view_name=cte.name,
                )
            return self._bind_recursive(
                cte.name, cte.column_aliases, cte.query, alias, depth)
        self._cte_expanding.add(key)
        try:
            if isinstance(cte.query, ast.UnionStmt):
                block = self.bind_union(cte.query, depth + 1)
            else:
                block = self.bind(cte.query, depth + 1)
        finally:
            self._cte_expanding.discard(key)
        return VirtualRelation(alias, cte.name, block,
                               column_aliases=cte.column_aliases)

    def _bind_recursive(self, name: str, column_aliases, stmt, alias: str,
                        depth: int) -> RelationRef:
        """Bind a recursive definition (CTE under WITH RECURSIVE, or a
        CREATE RECURSIVE VIEW body) into a :class:`RecursiveRelation`.

        The supported shape is *linear* recursion: one or more base
        branches UNION [ALL] exactly one recursive branch containing
        exactly one direct self-reference. The self-reference is bound
        as a delta FilterSetRelation, making the recursive branch the
        semi-naive template.
        """
        key = name.lower()
        if isinstance(stmt, ast.SelectStmt):
            direct, nested = _select_self_refs(stmt, key)
            if direct or nested:
                raise RecursiveViewError(
                    "recursive relation %r must be a UNION of base "
                    "branches and one recursive branch" % name,
                    view_name=name,
                )
            block = self.bind(stmt, depth + 1)
            return VirtualRelation(alias, name, block,
                                   column_aliases=column_aliases)
        if not isinstance(stmt, ast.UnionStmt):
            raise RecursiveViewError(
                "recursive relation %r must be defined by a query" % name,
                view_name=name,
            )
        base_parts: List[ast.SelectStmt] = []
        rec_parts: List[ast.SelectStmt] = []
        for part in stmt.parts:
            direct, nested = _select_self_refs(part, key)
            if nested:
                raise RecursiveViewError(
                    "recursive relation %r references itself inside a "
                    "subquery, which is not supported" % name,
                    view_name=name,
                )
            if direct == 0:
                base_parts.append(part)
            elif direct == 1:
                rec_parts.append(part)
            else:
                raise RecursiveViewError(
                    "non-linear recursion in %r: a branch references it "
                    "%d times (exactly one self-reference is supported)"
                    % (name, direct),
                    view_name=name,
                )
        if not rec_parts:
            # declared RECURSIVE but never self-references: plain view
            union = self.bind_union(stmt, depth + 1)
            return VirtualRelation(alias, name, union,
                                   column_aliases=column_aliases)
        if len(rec_parts) > 1:
            raise RecursiveViewError(
                "non-linear recursion in %r: %d branches reference it "
                "(exactly one recursive branch is supported)"
                % (name, len(rec_parts)),
                view_name=name,
            )
        if not base_parts:
            raise RecursiveViewError(
                "recursive relation %r has no non-recursive base branch"
                % name,
                view_name=name,
            )
        if stmt.order_by or stmt.limit is not None:
            raise RecursiveViewError(
                "ORDER BY / LIMIT are not supported on the recursive "
                "definition of %r; apply them in the consuming query"
                % name,
                view_name=name,
            )
        rec_part = rec_parts[0]
        if rec_part.group_by or _mentions_aggregate(rec_part):
            raise RecursiveViewError(
                "aggregates are not allowed in the recursive branch of %r"
                % name,
                view_name=name,
            )
        distinct = not all(stmt.all_flags)
        self._cte_expanding.add(key)
        try:
            base_blocks = [self.bind(part, depth + 1)
                           for part in base_parts]
            delta_schema = self._apply_column_aliases(
                self._union_schema(base_blocks, name), column_aliases, name)
            param_id = "delta%d" % self._delta_counter
            self._delta_counter += 1
            self._active_delta[key] = (delta_schema, param_id)
            try:
                recursive_block = self.bind(rec_part, depth + 1)
            finally:
                del self._active_delta[key]
        finally:
            self._cte_expanding.discard(key)
        rec_schema = recursive_block.output_schema()
        if len(rec_schema) != len(delta_schema):
            raise RecursiveViewError(
                "recursive branch of %r produces %d columns but its "
                "base produces %d" % (name, len(rec_schema),
                                      len(delta_schema)),
                view_name=name,
            )
        schema = self._apply_column_aliases(
            self._union_schema(base_blocks + [recursive_block], name),
            column_aliases, name)
        return RecursiveRelation(alias, name, base_blocks, recursive_block,
                                 param_id, schema, distinct=distinct)

    def _union_schema(self, blocks, name: str) -> Schema:
        """Union-compatible output schema of ``blocks`` (INT/FLOAT
        promotion), raising a typed error naming the recursive view."""
        if len(blocks) == 1:
            return blocks[0].output_schema()
        probe = UnionQuery(list(blocks), [True] * (len(blocks) - 1), [], None)
        try:
            return probe.output_schema()
        except BindError as exc:
            raise RecursiveViewError(
                "branches of recursive relation %r are not "
                "union-compatible: %s" % (name, exc),
                view_name=name,
            )

    @staticmethod
    def _apply_column_aliases(schema: Schema, aliases, name: str) -> Schema:
        if aliases is None:
            return schema
        if len(aliases) != len(schema):
            raise RecursiveViewError(
                "%s declares %d columns but its query produces %d"
                % (name, len(aliases), len(schema)),
                view_name=name,
            )
        return Schema(
            col.renamed(a) for col, a in zip(schema.columns, aliases)
        )

    # -------------------------------------------------------- SELECT list

    def _bind_select_list(self, select: ast.SelectStmt, scope: "_Scope",
                          group_by: List[ColumnRef],
                          collector: "_AggregateCollector"):
        grouped = bool(group_by) or _mentions_aggregate(select)
        items: List[SelectItem] = []
        star = False
        for raw in select.select_items:
            if raw.star:
                star = True
                if grouped:
                    raise BindError("SELECT * cannot be combined with GROUP BY")
                for column in scope.combined.columns:
                    plain = column.name.split(".")[-1]
                    items.append(SelectItem(
                        ColumnRef(column.name),
                        alias=_dedup_name(plain, items),
                    ))
                continue
            if grouped:
                expr = self._bind_group_scalar(raw.expr, scope, group_by,
                                               collector, alias=raw.alias)
            else:
                expr = self._bind_scalar(raw.expr, scope,
                                         allow_aggregates=False)
            alias = raw.alias or _implicit_alias(expr)
            items.append(SelectItem(expr, alias=_dedup_name(alias, items)))
        return items, star

    # -------------------------------------------------- scalar expressions

    def _bind_scalar(self, node: ast.AstExpr, scope: "_Scope",
                     allow_aggregates: bool) -> Expr:
        """Convert an AST expression over the combined (join-row) schema."""
        if isinstance(node, ast.AstColumn):
            return scope.qualify(node)
        if isinstance(node, ast.AstLiteral):
            return Literal(node.value)
        if isinstance(node, ast.AstComparison):
            return Comparison(
                node.op,
                self._bind_scalar(node.left, scope, allow_aggregates),
                self._bind_scalar(node.right, scope, allow_aggregates),
            )
        if isinstance(node, ast.AstBoolean):
            return BooleanExpr(node.op, [
                self._bind_scalar(arg, scope, allow_aggregates)
                for arg in node.args
            ])
        if isinstance(node, ast.AstArithmetic):
            return Arithmetic(
                node.op,
                self._bind_scalar(node.left, scope, allow_aggregates),
                self._bind_scalar(node.right, scope, allow_aggregates),
            )
        if isinstance(node, ast.AstInList):
            operand = self._bind_scalar(node.operand, scope,
                                        allow_aggregates)
            return self._bind_in_list(operand, node)
        if isinstance(node, ast.AstParameter):
            return self._parameter(node)
        if isinstance(node, ast.AstFuncCall):
            raise BindError(
                "aggregate %s() is not allowed here" % node.name.upper()
            )
        raise BindError("unsupported expression %r" % (node,))

    def _bind_in_list(self, operand: Expr, node: ast.AstInList) -> Expr:
        """Bind ``expr [NOT] IN (v, ...)``. A list of plain literals
        becomes an InList; a list containing `?` placeholders is
        rewritten into (NOT) (expr = v1 OR expr = v2 ...), which has the
        same three-valued semantics and evaluates parameters properly."""
        if not any(isinstance(v, ast.AstParameter) for v in node.values):
            return InList(operand, node.values, node.negated)
        disjuncts: List[Expr] = []
        for value in node.values:
            right = (self._parameter(value)
                     if isinstance(value, ast.AstParameter)
                     else Literal(value))
            disjuncts.append(Comparison("=", operand, right))
        membership = (disjuncts[0] if len(disjuncts) == 1
                      else BooleanExpr("OR", disjuncts))
        if node.negated:
            return BooleanExpr("NOT", [membership])
        return membership

    def _bind_group_scalar(self, node: ast.AstExpr, scope: "_Scope",
                           group_by: List[ColumnRef],
                           collector: "_AggregateCollector",
                           alias: Optional[str] = None) -> Expr:
        """Convert an expression in a grouped context (SELECT / HAVING).

        Aggregate calls become references to aggregate output columns;
        plain columns must be GROUP BY columns and become references to
        their group-output names.
        """
        if isinstance(node, ast.AstFuncCall):
            if node.name not in AGGREGATE_FUNCTIONS:
                raise BindError("unknown function %r" % node.name)
            argument = None
            if not node.star:
                argument = self._bind_scalar(node.argument, scope,
                                             allow_aggregates=False)
            spec_alias = collector.add(node.name, argument,
                                       preferred=alias,
                                       distinct=node.distinct)
            return ColumnRef(spec_alias)
        if isinstance(node, ast.AstColumn):
            qualified = scope.qualify(node)
            for ref in group_by:
                if ref.name == qualified.name:
                    return ColumnRef(qualified.name.split(".")[-1])
            raise BindError(
                "column %s must appear in GROUP BY or inside an aggregate"
                % qualified.name
            )
        if isinstance(node, ast.AstLiteral):
            return Literal(node.value)
        if isinstance(node, ast.AstComparison):
            return Comparison(
                node.op,
                self._bind_group_scalar(node.left, scope, group_by, collector),
                self._bind_group_scalar(node.right, scope, group_by, collector),
            )
        if isinstance(node, ast.AstBoolean):
            return BooleanExpr(node.op, [
                self._bind_group_scalar(arg, scope, group_by, collector)
                for arg in node.args
            ])
        if isinstance(node, ast.AstArithmetic):
            return Arithmetic(
                node.op,
                self._bind_group_scalar(node.left, scope, group_by, collector),
                self._bind_group_scalar(node.right, scope, group_by, collector),
            )
        if isinstance(node, ast.AstInList):
            operand = self._bind_group_scalar(node.operand, scope,
                                              group_by, collector)
            return self._bind_in_list(operand, node)
        if isinstance(node, ast.AstParameter):
            return self._parameter(node)
        raise BindError("unsupported expression %r" % (node,))


# --------------------------------------------------------------- helpers

class _Scope:
    """Column-name resolution over a block's FROM list."""

    def __init__(self, relations: List[RelationRef]):
        self.relations = relations
        self.combined = relations[0].output_schema if relations else None
        for rel in relations[1:]:
            self.combined = self.combined.concat(rel.output_schema)
        # unqualified name -> list of qualified candidates
        self.unqualified: Dict[str, List[str]] = {}
        for rel in relations:
            for col in rel.base_schema:
                qualified = "%s.%s" % (rel.alias, col.name)
                self.unqualified.setdefault(col.name, []).append(qualified)

    def qualify(self, node: ast.AstColumn) -> ColumnRef:
        if node.qualifier is not None:
            qualified = "%s.%s" % (node.qualifier, node.name)
            if not self.combined.has_column(qualified):
                raise BindError("unknown column %s" % node.display())
            return ColumnRef(qualified)
        candidates = self.unqualified.get(node.name, [])
        if not candidates:
            raise BindError("unknown column %r" % node.name)
        if len(candidates) > 1:
            raise BindError(
                "ambiguous column %r (could be %s)"
                % (node.name, " or ".join(candidates))
            )
        return ColumnRef(candidates[0])


class _AggregateCollector:
    """Deduplicating collector of AggregateSpec objects."""

    def __init__(self):
        self.specs: List[AggregateSpec] = []
        self._by_key: Dict[str, str] = {}

    def add(self, function: str, argument: Optional[Expr],
            preferred: Optional[str] = None, distinct: bool = False) -> str:
        key = "%s(%s%s)" % (
            function, "DISTINCT " if distinct else "",
            argument.display() if argument else "*",
        )
        if key in self._by_key:
            return self._by_key[key]
        alias = preferred or self._default_alias(function, argument)
        existing = {s.alias for s in self.specs}
        base, n = alias, 2
        while alias in existing:
            alias = "%s_%d" % (base, n)
            n += 1
        self.specs.append(AggregateSpec(function, argument, alias,
                                        distinct=distinct))
        self._by_key[key] = alias
        return alias

    @staticmethod
    def _default_alias(function: str, argument: Optional[Expr]) -> str:
        if argument is None:
            return "count_all"
        if isinstance(argument, ColumnRef):
            return "%s_%s" % (function, argument.name.split(".")[-1])
        return "%s_expr" % function


def _select_self_refs(select: ast.SelectStmt, key: str) -> Tuple[int, int]:
    """Count references to relation ``key`` in one SELECT: ``(direct,
    nested)`` where direct refs sit in this statement's FROM list and
    nested refs hide inside subqueries (FROM or IN)."""
    direct = 0
    nested = 0
    for item in select.from_items:
        if isinstance(item, ast.AstTableRef):
            if item.name.lower() == key:
                direct += 1
        else:
            d, n = _select_self_refs(item.select, key)
            nested += d + n
    nested += _expr_self_refs(select.where, key)
    nested += _expr_self_refs(select.having, key)
    return direct, nested


def _expr_self_refs(node, key: str) -> int:
    if node is None:
        return 0
    if isinstance(node, ast.AstInSubquery):
        d, n = _select_self_refs(node.select, key)
        return d + n + _expr_self_refs(node.operand, key)
    if isinstance(node, ast.AstBoolean):
        return sum(_expr_self_refs(a, key) for a in node.args)
    if isinstance(node, (ast.AstComparison, ast.AstArithmetic)):
        return (_expr_self_refs(node.left, key)
                + _expr_self_refs(node.right, key))
    return 0


def _query_self_refs(query, key: str) -> int:
    """Total self-references (direct + nested) in a SELECT or UNION."""
    parts = query.parts if isinstance(query, ast.UnionStmt) else [query]
    total = 0
    for part in parts:
        direct, nested = _select_self_refs(part, key)
        total += direct + nested
    return total


def _flatten_conjuncts(expr: Expr) -> List[Expr]:
    if isinstance(expr, BooleanExpr) and expr.op == "AND":
        out: List[Expr] = []
        for arg in expr.args:
            out.extend(_flatten_conjuncts(arg))
        return out
    return [expr]


def _mentions_aggregate(select: ast.SelectStmt) -> bool:
    def walk(node) -> bool:
        if isinstance(node, ast.AstFuncCall):
            return True
        if isinstance(node, ast.AstBoolean):
            return any(walk(a) for a in node.args)
        if isinstance(node, (ast.AstComparison, ast.AstArithmetic)):
            return walk(node.left) or walk(node.right)
        return False

    for item in select.select_items:
        if item.expr is not None and walk(item.expr):
            return True
    return select.having is not None and walk(select.having)


def _implicit_alias(expr: Expr) -> Optional[str]:
    if isinstance(expr, ColumnRef):
        return expr.name.split(".")[-1]
    return None


def _dedup_name(name: Optional[str], items: List[SelectItem]) -> Optional[str]:
    if name is None:
        return None
    used = {item.output_name for item in items}
    if name not in used:
        return name
    n = 2
    while "%s_%d" % (name, n) in used:
        n += 1
    return "%s_%d" % (name, n)


def _table_site(catalog: Catalog, name: str) -> Optional[str]:
    """Site of a table, if the catalog tracks placement (distributed)."""
    site_for = getattr(catalog, "site_for_table", None)
    if site_for is None:
        return None
    return site_for(name)
